#!/usr/bin/env python
"""Documentation checks: internal links resolve, markdown doctests pass.

Covers ``README.md``, every ``docs/*.md`` and ``examples/README.md``:

* every relative markdown link ``[text](target)`` must point at an
  existing file or directory (external ``http(s)``/``mailto`` links and
  in-page ``#anchors`` are skipped; a ``path#anchor`` target is checked
  for the path part only);
* every ``>>>`` example in the markdown is executed with ``doctest``
  (files without examples pass trivially).

Run from anywhere::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 when everything passes; 1 with a line per problem
otherwise.  ``tests/test_docs.py`` runs the same checks in the tier-1
suite, and CI runs this script as the docs job.
"""

from __future__ import annotations

import doctest
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for our docs; code spans excluded below.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```")


def doc_files() -> list[pathlib.Path]:
    return [
        ROOT / "README.md",
        *sorted((ROOT / "docs").glob("*.md")),
        ROOT / "examples" / "README.md",
    ]


def _linkable_text(text: str) -> str:
    """Markdown with fenced code blocks blanked (links there aren't links)."""
    out_lines = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            out_lines.append("")
        else:
            out_lines.append("" if in_fence else line)
    return "\n".join(out_lines)


def check_links(path: pathlib.Path) -> list[str]:
    """Broken relative links in ``path``, one message each."""
    problems = []
    for target in _LINK.findall(_linkable_text(path.read_text(encoding="utf-8"))):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(ROOT)}: broken link -> {target}"
            )
    return problems


def run_doctests(path: pathlib.Path) -> tuple[int, int, list[str]]:
    """Run the ``>>>`` examples of ``path``; returns (attempted, failed, logs)."""
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        path.read_text(encoding="utf-8"), {}, path.name, str(path), 0
    )
    if not test.examples:
        return 0, 0, []
    logs: list[str] = []
    runner = doctest.DocTestRunner(verbose=False)
    runner.run(test, out=logs.append)
    results = runner.summarize(verbose=False)
    return results.attempted, results.failed, logs


def main() -> int:
    problems: list[str] = []
    attempted_total = 0
    for path in doc_files():
        if not path.exists():
            problems.append(f"missing documentation file: {path.relative_to(ROOT)}")
            continue
        problems.extend(check_links(path))
        attempted, failed, logs = run_doctests(path)
        attempted_total += attempted
        if failed:
            problems.append(
                f"{path.relative_to(ROOT)}: {failed} doctest failure(s)"
            )
            problems.extend(log.rstrip() for log in logs)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    print(
        f"docs ok: {len(doc_files())} files, links resolve, "
        f"{attempted_total} doctest example(s) pass"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
