"""Aggregate every ``BENCH_*.json`` into one trajectory report.

Each PR's benchmark script writes its own ``BENCH_PRn.json`` at the
repository root; their shapes differ (each prices a different layer),
but they share two conventions this report keys on:

* **speedup numbers** — any ``speedup`` / ``worst_speedup`` field,
  wherever it nests, is a headline "how much faster is the new path"
  measurement;
* **correctness flags** — any ``identical`` / ``ok`` boolean asserts
  the fast path answered exactly like its oracle.

The report is one markdown table (``BENCH_REPORT.md``) plus a
machine-readable twin (``BENCH_REPORT.json``), regenerated from
whatever result files are present — a missing PR's file simply has no
row.  Exits non-zero if any correctness flag in any result is false,
so CI publishing the artifact also enforces it.

Usage::

    python tools/bench_report.py [--dir REPO_ROOT]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

HEADLINE_KEYS = ("speedup", "worst_speedup")
OK_KEYS = ("identical", "ok")


def _walk(obj, path=""):
    if isinstance(obj, dict):
        for key, value in obj.items():
            sub = f"{path}.{key}" if path else key
            yield sub, key, value
            yield from _walk(value, sub)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from _walk(value, f"{path}[{i}]")


def speedups(data) -> list[tuple[str, float]]:
    return [
        (path, float(value))
        for path, key, value in _walk(data)
        if key in HEADLINE_KEYS and isinstance(value, (int, float))
    ]


def ok_flags(data) -> list[tuple[str, bool]]:
    return [
        (path, bool(value))
        for path, key, value in _walk(data)
        if key in OK_KEYS and isinstance(value, bool)
    ]


def _sort_key(path: pathlib.Path):
    match = re.search(r"PR(\d+)", path.name)
    return (int(match.group(1)) if match else 10**9, path.name)


def build_report(root: pathlib.Path) -> dict:
    rows = []
    for path in sorted(root.glob("BENCH_*.json"), key=_sort_key):
        if path.name.startswith("BENCH_REPORT"):
            continue
        data = json.loads(path.read_text())
        flags = ok_flags(data)
        rows.append(
            {
                "file": path.name,
                "bench": data.get("bench") or data.get("benchmark")
                or path.stem,
                "mode": data.get("mode")
                or ("smoke" if data.get("smoke") else "full"),
                "speedups": dict(speedups(data)),
                "checks": dict(flags),
                "ok": all(value for _, value in flags) if flags else None,
            }
        )
    return {"report": "bench_trajectory", "rows": rows}


def to_markdown(report: dict) -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "One row per PR benchmark result file; speedups are the fast",
        "path against that PR's oracle, checks assert answer identity.",
        "",
        "| File | Bench | Mode | Speedups | Checks |",
        "|---|---|---|---|---|",
    ]
    for row in report["rows"]:
        speed = (
            "<br>".join(
                f"{path}: {value:.1f}x"
                for path, value in sorted(row["speedups"].items())
            )
            or "—"
        )
        if row["ok"] is None:
            checks = "—"
        elif row["ok"]:
            checks = f"all pass ({len(row['checks'])})"
        else:
            failed = [p for p, v in row["checks"].items() if not v]
            checks = "FAILED: " + ", ".join(failed)
        lines.append(
            f"| {row['file']} | {row['bench']} | {row['mode']} "
            f"| {speed} | {checks} |"
        )
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="directory holding the BENCH_*.json files (default: repo root)",
    )
    args = parser.parse_args(argv)
    root = pathlib.Path(args.dir)

    report = build_report(root)
    (root / "BENCH_REPORT.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    (root / "BENCH_REPORT.md").write_text(to_markdown(report))
    print(f"{len(report['rows'])} result files aggregated -> "
          f"{root / 'BENCH_REPORT.md'}")

    bad = [row["file"] for row in report["rows"] if row["ok"] is False]
    if bad:
        print(f"correctness flags failed in: {', '.join(bad)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
