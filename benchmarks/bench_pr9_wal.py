"""PR 9 durability benchmark: what does the write-ahead log cost?

PR 9 makes ingestion durable: every accepted append is written to a
crc32-framed WAL and fsynced before it is acknowledged.  This prices
that discipline:

* **no-wal** — appends into the in-memory streaming service only, the
  PR 3 baseline with zero durability;
* **wal-always** — one fsync per append (the daemon's acknowledgement
  discipline, ``sync="always"``);
* **wal-batch** — group commit (``sync="batch"`` + one final flush),
  the throughput ceiling when callers can batch their durability;

and measures the flip side, recovery: how long replaying a WAL of
N events takes when a store reopens.

There are **no hard performance gates** — fsync cost is hardware
truth, not a regression to fail on.  The report exists so drift is
visible across machines and revisions; only correctness (replay
completeness) fails the run.

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr9_wal.py --smoke

writes ``BENCH_PR9.json`` next to the repository root.  ``--smoke``
appends 2k edges per mode (CI budget); the default 10k.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.maintenance import StreamingCoreService  # noqa: E402
from repro.store.wal import WriteAheadLog  # noqa: E402

SEED = 11
NODES = 600


def workload(count: int) -> list[tuple[str, str, int]]:
    rng = random.Random(SEED)
    edges, t = [], 1
    while len(edges) < count:
        if rng.random() < 0.5:
            t += 1
        u = rng.randrange(NODES)
        v = rng.randrange(NODES)
        if u == v:
            v = (v + 1) % NODES
        edges.append((f"n{u}", f"n{v}", t))
    return edges


def time_mode(edges, make_wal) -> tuple[float, dict]:
    """Seconds to append every edge through a fresh service; WAL stats."""
    with tempfile.TemporaryDirectory() as tmp:
        wal = make_wal(pathlib.Path(tmp) / "wal")
        service = StreamingCoreService((2,), wal=wal)
        start = time.perf_counter()
        for u, v, t in edges:
            service.append(u, v, t)
        if wal is not None:
            wal.flush()
        elapsed = time.perf_counter() - start
        stats = wal.stats() if wal is not None else {}
        if wal is not None:
            wal.close()
        return elapsed, stats


def time_replay(count: int) -> tuple[float, int]:
    """Seconds to open + replay a WAL holding ``count`` events."""
    edges = workload(count)
    with tempfile.TemporaryDirectory() as tmp:
        directory = pathlib.Path(tmp) / "wal"
        with WriteAheadLog(directory, sync="batch") as wal:
            for u, v, t in edges:
                wal.append(u, v, t)
            wal.flush()
        start = time.perf_counter()
        with WriteAheadLog(directory) as wal:
            events = wal.replay()
        elapsed = time.perf_counter() - start
        return elapsed, len(events)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller workload (CI budget)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=REPO / "BENCH_PR9.json",
        help="output JSON path (default: <repo>/BENCH_PR9.json)",
    )
    args = parser.parse_args(argv)
    count = 2000 if args.smoke else 10000
    replay_lengths = [500, 2000] if args.smoke else [1000, 5000, 20000]

    edges = workload(count)
    failures: list[str] = []
    report: dict = {
        "bench": "pr9_wal",
        "smoke": bool(args.smoke),
        "appends": count,
        "modes": {},
        "replay": [],
    }

    modes = {
        "no-wal": lambda directory: None,
        "wal-always": lambda directory: WriteAheadLog(directory, sync="always"),
        "wal-batch": lambda directory: WriteAheadLog(directory, sync="batch"),
    }
    for name, make_wal in modes.items():
        elapsed, stats = time_mode(edges, make_wal)
        entry = {
            "seconds": round(elapsed, 4),
            "appends_per_sec": round(count / elapsed, 1),
        }
        if stats:
            entry["fsyncs"] = stats["fsyncs"]
            entry["rotations"] = stats["rotations"]
            if stats["last_lsn"] != count:
                failures.append(
                    f"{name}: WAL holds {stats['last_lsn']} events, "
                    f"appended {count}"
                )
        report["modes"][name] = entry
        print(f"{name:11s}: {elapsed:7.3f}s  "
              f"{count / elapsed:9.1f} appends/s"
              + (f"  ({entry['fsyncs']} fsyncs)" if stats else ""))

    for length in replay_lengths:
        elapsed, replayed = time_replay(length)
        report["replay"].append({
            "events": length,
            "seconds": round(elapsed, 4),
            "events_per_sec": round(length / elapsed, 1),
        })
        if replayed != length:
            failures.append(
                f"replay of {length} events returned {replayed}"
            )
        print(f"replay {length:6d}: {elapsed:7.3f}s  "
              f"{length / elapsed:9.1f} events/s")

    report["ok"] = not failures
    if failures:
        report["failures"] = failures
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report: {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
