"""PR 4 serving benchmark: columnar vectorised serving vs the seed path.

Measures what a warm deployment pays *per query* once the index build is
amortised away, on the 50k-edge bursty workload of ``bench_pr1_kernel``:

* **old** — the seed (pre-PR 4) serving path, reproduced verbatim from
  the list-of-tuples representation: ``restricted_to`` as a per-edge
  Python scan over every edge's windows, activation times via a
  per-edge loop, a counting sort into buckets, and a per-vertex bisect
  loop for historical-core membership;
* **new** — the columnar path: two ``searchsorted`` cuts over the
  index's cached start-sorted skyline permutation, vectorised
  activation, and one ``searchsorted`` sweep for historical membership
  (``CoreIndex.query`` / ``query_batch`` / ``historical_core``).

Both sides answer from the same prebuilt :class:`CoreIndex`; the
benchmark asserts identical answers per range (and spot-checks the
``enum`` engine, which recomputes from scratch) and reports per-query
latency for small/medium/full-range windows plus batch throughput.
Targets: >= 2x single-query latency on sub-range windows and >= 3x
batch throughput.

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr4_serving.py --smoke

writes ``BENCH_PR4.json`` next to the repository root.  ``--smoke``
runs fewer queries and one repetition (CI budget); the default runs
three repetitions and keeps the best of each.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.enumerate_ref import _as_output  # noqa: E402
from repro.core.index import CoreIndex  # noqa: E402
from repro.core.linkedlist import WindowList  # noqa: E402
from repro.core.query import TimeRangeCoreQuery  # noqa: E402
from repro.core.results import EnumerationResult  # noqa: E402
from repro.core.windows import ActiveWindow  # noqa: E402
from repro.graph.generators import BurstyConfig, generate_bursty  # noqa: E402
from repro.utils.order import counting_sort_by  # noqa: E402

#: Same shape as the PR 1/PR 3 workload: >= 50k temporal edges, bursty.
WORKLOAD = BurstyConfig(
    num_vertices=3000,
    background_edges=42000,
    tmax=2000,
    repeat_rate=0.25,
    num_bursts=40,
    burst_size=12,
    burst_width=25,
    edges_per_burst=220,
    seed=1,
    name="bench_pr4",
)

K = 3
SINGLE_TARGET = 2.0
BATCH_TARGET = 3.0


# ----------------------------------------------------------------------
# The seed (pre-columnar) serving path, reproduced verbatim
# ----------------------------------------------------------------------

def old_restricted(windows_by_edge, ts, te):
    """Seed ``EdgeCoreSkyline.restricted_to``: O(|ECS|) Python scan."""
    return [
        tuple(w for w in windows if ts <= w[0] and w[1] <= te)
        for windows in windows_by_edge
    ]


def old_build_active_windows(restricted, ts_lo):
    """Seed ``build_active_windows``: per-edge activation chaining."""
    windows = []
    for eid, edge_windows in enumerate(restricted):
        previous_start = None
        for t1, t2 in edge_windows:
            active = ts_lo if previous_start is None else previous_start + 1
            windows.append(ActiveWindow(t1, t2, eid, active))
            previous_start = t1
    return windows


def old_query(windows_by_edge, k, ts_lo, ts_hi, collect=False):
    """Seed ``CoreIndex.query``: list-based prep + Algorithm 5."""
    result = EnumerationResult("enum", k, (ts_lo, ts_hi))
    if collect:
        result.cores = []
    windows = old_build_active_windows(
        old_restricted(windows_by_edge, ts_lo, ts_hi), ts_lo
    )
    if not windows:
        return result
    ordered = counting_sort_by(windows, key=lambda w: w.end, lo=ts_lo, hi=ts_hi)
    span = ts_hi - ts_lo + 1
    activation = [[] for _ in range(span)]
    start = [[] for _ in range(span)]
    for window in ordered:
        activation[window.active - ts_lo].append(window)
        start[window.start - ts_lo].append(window)
    window_list = WindowList()
    for current_ts in range(ts_lo, ts_hi + 1):
        offset = current_ts - ts_lo
        if current_ts > ts_lo:
            for window in start[offset - 1]:
                window_list.delete(window)
        window_list.insert_sorted_batch(activation[offset])
        if start[offset]:
            _as_output(window_list, current_ts, result, collect, None)
    return result


def old_historical(vct, num_vertices, ts, te):
    """Seed ``historical_core``: per-vertex membership loop."""
    return {u for u in range(num_vertices) if vct.in_core(u, ts, te)}


# ----------------------------------------------------------------------


def sample_ranges(rng, tmax, length, count):
    """``count`` ranges of the given window length, uniform starts."""
    ranges = []
    for _ in range(count):
        ts = rng.randint(1, max(1, tmax - length))
        ranges.append((ts, min(tmax, ts + length - 1)))
    return ranges


def best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer queries and a single repetition (CI budget)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per side, best kept (default: 1 smoke, 3 full)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR4.json",
        help="output JSON path (default: <repo>/BENCH_PR4.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    per_class = 10 if args.smoke else 25
    batch_size = 80 if args.smoke else 200

    graph = generate_bursty(WORKLOAD)
    tmax = graph.tmax
    print(f"graph: n={graph.num_vertices} m={graph.num_edges} tmax={tmax} k={K}")

    index = CoreIndex(graph, K)  # build once; serving cost is what we measure
    index.ecs.window_eids()  # touch the lazy per-index caches up front
    index.ecs.start_cuts([1], [tmax])
    windows_by_edge = [
        index.ecs.windows_of(eid) for eid in range(index.ecs.num_edges)
    ]  # the old in-memory representation (conversion not timed)
    print(f"index: |VCT|={index.vct.size()} |ECS|={index.ecs.size()}")

    rng = random.Random(42)
    # small/medium are the serving-bound sub-range classes the targets
    # gate on; large/full are reported ungated — there the enumeration
    # itself (output-optimal Algorithm 5, identical code on both sides)
    # dominates, and no serving-layer change can shrink O(|R|).
    classes = {
        "small": sample_ranges(rng, tmax, max(2, tmax // 50), per_class),
        "medium": sample_ranges(rng, tmax, tmax // 16, per_class),
        "large": sample_ranges(rng, tmax, tmax // 8, max(2, per_class // 3)),
        "full": [(1, tmax)] * 2,
    }

    report = {
        "benchmark": "bench_pr4_serving",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "graph": {
            "name": WORKLOAD.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "tmax": tmax,
        },
        "k": K,
        "index_sizes": {"vct": index.vct.size(), "ecs": index.ecs.size()},
        "single_query": {},
        "historical": {},
        "batch": {},
        "identical": True,
    }
    failures = []

    # ---- answer identity: every timed range, old vs new; plus the enum
    # engine (fresh Algorithm 2 + 5 per range) on a spot-check subset ----
    for name, ranges in classes.items():
        for ts, te in ranges:
            new = index.query(ts, te, collect=False)
            old = old_query(windows_by_edge, K, ts, te, collect=False)
            if (new.num_results, new.total_edges) != (
                old.num_results, old.total_edges
            ):
                report["identical"] = False
                failures.append(f"old/new diverge on {name} range ({ts}, {te})")
    for ts, te in [classes["small"][0], classes["medium"][0], (1, tmax)]:
        new = index.query(ts, te, collect=False)
        fresh = TimeRangeCoreQuery(
            graph, K, time_range=(ts, te), engine="enum", collect=False
        ).run()
        if (new.num_results, new.total_edges) != (
            fresh.num_results, fresh.total_edges
        ):
            report["identical"] = False
            failures.append(f"index/enum diverge on range ({ts}, {te})")

    # ---- single-query latency per window class ----
    for name, ranges in classes.items():
        old_s = best_of(
            repeats,
            lambda r=ranges: [
                old_query(windows_by_edge, K, ts, te) for ts, te in r
            ],
        )
        new_s = best_of(
            repeats, lambda r=ranges: [index.query(ts, te, collect=False) for ts, te in r]
        )
        speedup = old_s / new_s if new_s else float("inf")
        report["single_query"][name] = {
            "queries": len(ranges),
            "old_seconds": round(old_s, 4),
            "new_seconds": round(new_s, 4),
            "old_ms_per_query": round(1000 * old_s / len(ranges), 3),
            "new_ms_per_query": round(1000 * new_s / len(ranges), 3),
            "speedup": round(speedup, 2),
        }
        print(
            f"single[{name:6s}]: old {1000 * old_s / len(ranges):8.3f} ms/q  "
            f"new {1000 * new_s / len(ranges):8.3f} ms/q  {speedup:6.2f}x"
        )
        if name in ("small", "medium") and speedup < SINGLE_TARGET:
            failures.append(
                f"single-query speedup on {name} windows {speedup:.2f}x "
                f"below the {SINGLE_TARGET:.0f}x target"
            )

    # ---- historical-core membership ----
    historical_ranges = classes["small"] + classes["medium"]
    for ts, te in historical_ranges:
        if old_historical(index.vct, graph.num_vertices, ts, te) != (
            index.historical_core(ts, te)
        ):
            report["identical"] = False
            failures.append(f"historical answers diverge on ({ts}, {te})")
    old_s = best_of(
        repeats,
        lambda: [
            old_historical(index.vct, graph.num_vertices, ts, te)
            for ts, te in historical_ranges
        ],
    )
    new_s = best_of(
        repeats, lambda: [index.historical_core(ts, te) for ts, te in historical_ranges]
    )
    report["historical"] = {
        "queries": len(historical_ranges),
        "old_seconds": round(old_s, 4),
        "new_seconds": round(new_s, 4),
        "speedup": round(old_s / new_s if new_s else float("inf"), 2),
    }
    print(
        f"historical    : old {1000 * old_s / len(historical_ranges):8.3f} ms/q  "
        f"new {1000 * new_s / len(historical_ranges):8.3f} ms/q  "
        f"{report['historical']['speedup']:6.2f}x"
    )

    # ---- batch throughput (sub-range mix, one shared index) ----
    batch_ranges = sample_ranges(rng, tmax, max(2, tmax // 50), batch_size // 2)
    batch_ranges += sample_ranges(
        rng, tmax, tmax // 16, batch_size - len(batch_ranges)
    )
    old_s = best_of(
        repeats,
        lambda: [old_query(windows_by_edge, K, ts, te) for ts, te in batch_ranges],
    )
    new_s = best_of(repeats, lambda: index.query_batch(batch_ranges))
    batch_speedup = old_s / new_s if new_s else float("inf")
    report["batch"] = {
        "queries": len(batch_ranges),
        "old_seconds": round(old_s, 4),
        "new_seconds": round(new_s, 4),
        "old_qps": round(len(batch_ranges) / old_s, 1) if old_s else float("inf"),
        "new_qps": round(len(batch_ranges) / new_s, 1) if new_s else float("inf"),
        "speedup": round(batch_speedup, 2),
    }
    print(
        f"batch ({len(batch_ranges):4d} q): old {report['batch']['old_qps']:8.1f} q/s  "
        f"new {report['batch']['new_qps']:8.1f} q/s  {batch_speedup:6.2f}x"
    )
    if batch_speedup < BATCH_TARGET:
        failures.append(
            f"batch throughput speedup {batch_speedup:.2f}x below the "
            f"{BATCH_TARGET:.0f}x target"
        )

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[report written to {args.out}]")

    if not report["identical"]:
        failures.insert(0, "answers diverge between serving paths")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
