"""Figure 7 — running time as k varies over 10-40% of kmax."""

from __future__ import annotations

import pytest

from repro.bench.experiments import experiment_fig7
from repro.bench.workloads import build_workload
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset


@pytest.mark.parametrize("k_fraction", [0.1, 0.2, 0.3, 0.4])
def test_enum_vary_k_cm(benchmark, k_fraction):
    """Enum (incl. CoreTime) on CM at each k fraction — runtime should
    fall as k grows because the result set shrinks."""
    graph = load_dataset("CM")
    workload = build_workload(
        graph, "CM", k_fraction=k_fraction, num_queries=1, seed=11
    )
    ts, te = workload.ranges[0]
    result = benchmark(
        enumerate_temporal_kcores, graph, workload.k, ts, te, collect=False
    )
    assert result.completed


def test_regenerate_fig7(benchmark, save_report, profile):
    report = benchmark.pedantic(
        experiment_fig7, args=(profile,), rounds=1, iterations=1
    )
    save_report("fig7", report)
