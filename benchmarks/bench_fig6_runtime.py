"""Figure 6 — the headline comparison: OTCD vs CoreTime vs EnumBase vs Enum.

Micro-benchmarks time each engine on a fixed mid-size workload (same
dataset, k and range for all, so the pytest-benchmark table is directly
comparable), and the full per-dataset sweep is regenerated as a report.
"""

from __future__ import annotations

import pytest

from repro.baselines.otcd import enumerate_otcd
from repro.bench.experiments import experiment_fig6
from repro.bench.workloads import build_workload
from repro.core.coretime import compute_core_times
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def cm_workload():
    graph = load_dataset("CM")
    workload = build_workload(graph, "CM", num_queries=1, seed=7)
    ts, te = workload.ranges[0]
    return graph, workload.k, ts, te


def test_engine_coretime(benchmark, cm_workload):
    graph, k, ts, te = cm_workload
    result = benchmark(compute_core_times, graph, k, ts, te)
    assert result.ecs is not None


def test_engine_enum(benchmark, cm_workload):
    graph, k, ts, te = cm_workload
    skyline = compute_core_times(graph, k, ts, te).ecs
    result = benchmark(
        enumerate_temporal_kcores, graph, k, ts, te, skyline=skyline, collect=False
    )
    assert result.num_results > 0


def test_engine_enumbase(benchmark, cm_workload):
    graph, k, ts, te = cm_workload
    skyline = compute_core_times(graph, k, ts, te).ecs
    result = benchmark(
        enumerate_temporal_kcores_base,
        graph, k, ts, te, skyline=skyline, collect=False,
    )
    assert result.num_results > 0


def test_engine_otcd(benchmark, cm_workload):
    graph, k, ts, te = cm_workload
    result = benchmark(enumerate_otcd, graph, k, ts, te, collect=False)
    assert result.num_results > 0


def test_regenerate_fig6(benchmark, save_report, profile):
    report = benchmark.pedantic(
        experiment_fig6, args=(profile,), rounds=1, iterations=1
    )
    save_report("fig6", report)
