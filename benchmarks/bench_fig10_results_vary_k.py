"""Figure 10 — number of temporal k-cores as k varies."""

from __future__ import annotations

from repro.bench.experiments import experiment_fig10


def test_regenerate_fig10(benchmark, save_report, profile):
    report = benchmark.pedantic(
        experiment_fig10, args=(profile,), rounds=1, iterations=1
    )
    save_report("fig10", report)
