"""Ablation B — OTCD with vs without the PoR/PoU/PoL pruning rules."""

from __future__ import annotations

from repro.baselines.otcd import enumerate_otcd
from repro.bench.workloads import build_workload
from repro.datasets.registry import load_dataset


def _cm_setup():
    graph = load_dataset("CM")
    workload = build_workload(graph, "CM", num_queries=1, seed=29)
    ts, te = workload.ranges[0]
    return graph, workload.k, ts, te


def test_otcd_with_pruning(benchmark):
    graph, k, ts, te = _cm_setup()
    result = benchmark(enumerate_otcd, graph, k, ts, te, collect=False)
    assert result.num_results > 0


def test_otcd_without_pruning(benchmark):
    graph, k, ts, te = _cm_setup()
    result = benchmark(
        enumerate_otcd, graph, k, ts, te, use_pruning=False, collect=False
    )
    assert result.num_results > 0


def test_pruning_outputs_identical():
    graph, k, ts, te = _cm_setup()
    pruned = enumerate_otcd(graph, k, ts, te)
    unpruned = enumerate_otcd(graph, k, ts, te, use_pruning=False)
    assert pruned.edge_sets() == unpruned.edge_sets()
