"""Figure 4 — |VCT|, |VCT|*deg_avg and |R| on representative datasets.

The paper's Remark: the result size dominates the index-size term by
orders of magnitude, so total runtime is result-bound.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig4
from repro.core.coretime import compute_core_times
from repro.datasets.registry import load_dataset
from repro.datasets.stats import compute_stats, default_k


def test_vct_size_cm(benchmark):
    """Building the VCT+ECS on the CM analogue at the default k."""
    graph = load_dataset("CM")
    k = default_k(compute_stats(graph))
    result = benchmark(compute_core_times, graph, k)
    assert result.vct.size() > 0


def test_regenerate_fig4(benchmark, save_report, profile):
    report = benchmark.pedantic(
        experiment_fig4, args=(profile,), rounds=1, iterations=1
    )
    save_report("fig4", report)
