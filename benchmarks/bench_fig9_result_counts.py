"""Figure 9 — the average number of temporal k-cores per dataset."""

from __future__ import annotations

from repro.bench.experiments import experiment_fig9
from repro.bench.workloads import build_workload
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset


def test_count_results_su(benchmark):
    """Streaming enumeration (count-only) on the SU analogue."""
    graph = load_dataset("SU")
    workload = build_workload(graph, "SU", num_queries=1, seed=17)
    ts, te = workload.ranges[0]
    result = benchmark(
        enumerate_temporal_kcores, graph, workload.k, ts, te, collect=False
    )
    assert result.num_results >= 1


def test_regenerate_fig9(benchmark, save_report, profile):
    report = benchmark.pedantic(
        experiment_fig9, args=(profile,), rounds=1, iterations=1
    )
    save_report("fig9", report)
