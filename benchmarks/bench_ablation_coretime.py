"""Ablation C — incremental core-time maintenance vs per-start recompute.

The paper inherits the O(|VCT| * deg_avg) incremental scheme from [13];
the ablated variant re-runs the decremental end-time scan for every
start time (O(tmax * m)).  A smaller dataset keeps the slow variant
tractable.
"""

from __future__ import annotations

from repro.bench.ablations import vct_by_recompute
from repro.bench.workloads import build_workload
from repro.core.coretime import compute_vertex_core_times
from repro.datasets.registry import load_dataset


def _fb_setup():
    graph = load_dataset("FB")
    workload = build_workload(graph, "FB", num_queries=1, seed=31)
    ts, te = workload.ranges[0]
    return graph, workload.k, ts, te


def test_coretime_incremental(benchmark):
    graph, k, ts, te = _fb_setup()
    vct = benchmark(compute_vertex_core_times, graph, k, ts, te)
    assert vct.size() > 0


def test_coretime_recompute_ablation(benchmark):
    graph, k, ts, te = _fb_setup()
    vct = benchmark(vct_by_recompute, graph, k, ts, te)
    assert vct.size() > 0


def test_coretime_outputs_identical():
    graph, k, ts, te = _fb_setup()
    fast = compute_vertex_core_times(graph, k, ts, te)
    slow = vct_by_recompute(graph, k, ts, te)
    for u in range(graph.num_vertices):
        assert fast.entries_of(u) == slow.entries_of(u)
