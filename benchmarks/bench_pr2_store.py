"""PR 2 store benchmark: cold Algorithm-2 build vs warm mmap open.

Measures the cold-start cost a serving process pays to answer its first
query on the 50k-edge bursty workload of ``bench_pr1_kernel``:

* **cold** — build the index in-process: compile the graph and run
  Algorithm 2 (the pre-store reality for every boot);
* **warm** — open the persisted store: load the compiled graph blob,
  open the index blob (mmap + checksum), and answer one query from the
  flat arrays (the "open + filter" path).

Both paths answer the same sub-range query; the benchmark asserts the
answers are identical and reports the speedup (target: >= 10x).

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr2_store.py --smoke

writes ``BENCH_PR2.json`` next to the repository root.  ``--smoke``
runs one repetition per side (CI budget); the default runs three and
keeps the best of each.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.index import CoreIndex  # noqa: E402
from repro.graph.generators import BurstyConfig, generate_bursty  # noqa: E402
from repro.graph.temporal_graph import TemporalGraph  # noqa: E402
from repro.store import IndexStore  # noqa: E402

#: Same shape as the PR 1 workload: >= 50k temporal edges, bursty.
WORKLOAD = BurstyConfig(
    num_vertices=3000,
    background_edges=42000,
    tmax=2000,
    repeat_rate=0.25,
    num_bursts=40,
    burst_size=12,
    burst_width=25,
    edges_per_burst=220,
    seed=1,
    name="bench_pr2",
)

K = 3
#: Narrow sub-range: the query itself is cheap on both sides, so the
#: measurement isolates build-vs-open (time to first answer).
QUERY_RANGE = (600, 650)
SPEEDUP_TARGET = 10.0


def canonical(result, graph) -> set[frozenset]:
    """Cores as label-space edge triples (edge ids permute across builds)."""
    return {
        frozenset(
            (*sorted((str(u), str(v))), t) for u, v, t in core.edge_triples(graph)
        )
        for core in result
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="single repetition per side (CI budget)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per side, best kept (default: 1 smoke, 3 full)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR2.json",
        help="output JSON path (default: <repo>/BENCH_PR2.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)

    source = generate_bursty(WORKLOAD)
    triples = [
        (source.label_of(u), source.label_of(v), t) for u, v, t in source.edges
    ]
    print(f"graph: n={source.num_vertices} m={source.num_edges} tmax={source.tmax}")

    # ---- cold path: fresh graph object, compile + Algorithm 2 + query ----
    cold_seconds = float("inf")
    cold_cores: set[frozenset] | None = None
    for _ in range(repeats):
        cold_graph = TemporalGraph(triples)  # no caches carried over
        start = time.perf_counter()
        cold_index = CoreIndex(cold_graph, K)
        cold_answer = cold_index.query(*QUERY_RANGE)
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
        cold_cores = canonical(cold_answer, cold_graph)

    with tempfile.TemporaryDirectory(prefix="bench_pr2_store_") as tmp:
        store = IndexStore(tmp)
        key = store.save_index(CoreIndex(source, K), name=WORKLOAD.name)
        directory = pathlib.Path(tmp) / key
        store_bytes = sum(p.stat().st_size for p in directory.iterdir())

        # ---- warm path: open graph + index blobs, answer from disk ----
        warm_seconds = float("inf")
        warm_cores: set[frozenset] | None = None
        num_results = 0
        for _ in range(repeats):
            start = time.perf_counter()
            warm_store = IndexStore(tmp)
            warm_graph = warm_store.load_graph(key)
            warm_index = warm_store.load_index(warm_graph, K, key=key)
            assert warm_index is not None
            warm_answer = warm_index.query(*QUERY_RANGE)
            warm_seconds = min(warm_seconds, time.perf_counter() - start)
            warm_cores = canonical(warm_answer, warm_graph)
            num_results = warm_answer.num_results

    identical = cold_cores is not None and cold_cores == warm_cores
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")

    report = {
        "benchmark": "bench_pr2_store",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "graph": {
            "name": WORKLOAD.name,
            "num_vertices": source.num_vertices,
            "num_edges": source.num_edges,
            "tmax": source.tmax,
        },
        "k": K,
        "query_range": list(QUERY_RANGE),
        "cold_build_seconds": round(cold_seconds, 4),
        "warm_open_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 1),
        "store_bytes": store_bytes,
        "num_results": num_results,
        "identical": identical,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(
        f"k={K} range={QUERY_RANGE}: cold {cold_seconds:.3f}s  "
        f"warm {warm_seconds:.4f}s  speedup {speedup:.0f}x  "
        f"store {store_bytes / 1e6:.1f} MB  identical={identical}"
    )
    print(f"[report written to {args.out}]")

    if not identical:
        print("FAIL: warm answers diverge from the cold build", file=sys.stderr)
        return 1
    if speedup < SPEEDUP_TARGET:
        print(
            f"FAIL: speedup {speedup:.1f}x below the {SPEEDUP_TARGET:.0f}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
