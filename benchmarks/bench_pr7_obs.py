"""PR 7 observability benchmark: what does instrumentation cost?

PR 7 threads a metrics registry and span tracing through the serving
stack — counters at every registry/store/pool boundary, latency
histograms around plan/execute/enumerate/sink-flush, and per-query
span trees.  The design bet is that the hot path pays almost nothing:
counters are bound children incrementing under a lock, timing is one
branch when disabled, and the router flushes its counters once per
walk rather than per emission.

This benchmark prices that bet on the contended-batch workload the
PR 4..6 benchmarks established (1200 requests piling onto 8 hot
regions): the same planned batch, answered

* with observability **off** (``set_timing_enabled(False)``, no trace
  — counters still run; they replaced the pre-PR 7 bookkeeping), and
* with observability **on** (timing enabled *and* a live ``Trace``
  recording plan/execute/enumerate/sink_flush spans).

Per-range answers are asserted identical on both sides before anything
is timed.  Gate: the fully-instrumented side keeps >= 95% of the
uninstrumented qps (<= 5% overhead).

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr7_obs.py --smoke

writes ``BENCH_PR7.json`` next to the repository root.  ``--smoke``
runs 400 requests and one repetition (CI budget); the default runs
1200 requests, three repetitions, best kept.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.index import CoreIndex  # noqa: E402
from repro.graph.generators import BurstyConfig, generate_bursty  # noqa: E402
from repro.obs.metrics import get_registry, set_timing_enabled  # noqa: E402
from repro.obs.trace import Trace  # noqa: E402
from repro.serve.planner import plan_for_index  # noqa: E402

#: Same shape as the PR 1..6 workload: >= 50k temporal edges.
WORKLOAD = BurstyConfig(
    num_vertices=3000,
    background_edges=42000,
    tmax=2000,
    repeat_rate=0.25,
    num_bursts=40,
    burst_size=12,
    burst_width=25,
    edges_per_burst=220,
    seed=1,
    name="bench_pr7",
)

K = 3
MAX_OVERHEAD = 0.05  # instrumented side keeps >= 95% of the baseline qps
NUM_HOT = 8


def contended_ranges(rng: random.Random, tmax: int, count: int):
    """The PR 6 contended batch: requests piling onto 8 hot regions."""
    span = tmax // NUM_HOT
    hots = [span // 2 + i * span for i in range(NUM_HOT)]
    ranges = []
    for _ in range(count):
        mode = rng.random()
        if mode < 0.25 and ranges:
            ranges.append(rng.choice(ranges))  # exact repeat
        else:
            hot = rng.choice(hots)
            lo = max(1, hot - span // 3 + rng.randint(-10, 10))
            hi = min(tmax, lo + rng.randint(span // 2, span - 1))
            ranges.append((lo, hi))
    return ranges


def counters(results):
    return [(r.num_results, r.total_edges) for r in results]


def best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer requests and one repetition (CI budget)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per side, best kept (default: 1 smoke, 3 full)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR7.json",
        help="output JSON path (default: <repo>/BENCH_PR7.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    batch_size = 400 if args.smoke else 1200

    graph = generate_bursty(WORKLOAD)
    tmax = graph.tmax
    print(f"graph: n={graph.num_vertices} m={graph.num_edges} tmax={tmax} k={K}")

    index = CoreIndex(graph, K)  # build once; serving is what we measure
    index.ecs.window_eids()  # touch the lazy per-index caches up front
    index.ecs.start_cuts([1], [tmax])

    rng = random.Random(42)
    ranges = contended_ranges(rng, tmax, batch_size)
    plan_stats = plan_for_index(index, ranges).stats
    print(
        f"batch: {plan_stats['requests']} requests -> "
        f"{plan_stats['windows']} covering window(s) "
        f"({plan_stats['deduped']} deduped, {plan_stats['merged']} merged)"
    )

    report = {
        "benchmark": "bench_pr7_obs",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "graph": {
            "name": WORKLOAD.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "tmax": tmax,
        },
        "k": K,
        "plan": plan_stats,
        "observability_off": {},
        "observability_on": {},
        "identical": True,
    }
    failures = []

    def run_instrumented():
        return index.query_batch(ranges, trace=Trace("bench"))

    # ---- identity first: instrumentation must not change answers ----
    previous = set_timing_enabled(False)
    try:
        baseline = counters(index.query_batch(ranges))
        set_timing_enabled(True)
        if counters(run_instrumented()) != baseline:
            report["identical"] = False
            failures.append("instrumented batch answers diverge")

        # ---- observability off: timing disabled, no trace ----
        set_timing_enabled(False)
        off_s = best_of(repeats, lambda: index.query_batch(ranges))

        # ---- observability on: timing + a live span tree ----
        set_timing_enabled(True)
        on_s = best_of(repeats, run_instrumented)
    finally:
        set_timing_enabled(previous)

    trace = Trace("bench")
    index.query_batch(ranges, trace=trace)
    spans_per_batch = len(trace.spans())

    report["observability_off"] = {
        "seconds": round(off_s, 4),
        "qps": round(batch_size / off_s, 1),
    }
    report["observability_on"] = {
        "seconds": round(on_s, 4),
        "qps": round(batch_size / on_s, 1),
        "spans_per_batch": spans_per_batch,
    }
    overhead = (on_s - off_s) / off_s if off_s else 0.0
    report["gate"] = {
        "max_overhead": MAX_OVERHEAD,
        "overhead": round(overhead, 4),
    }
    print(f"observability off  : {off_s:7.3f}s  {batch_size / off_s:8.1f} q/s")
    print(
        f"observability on   : {on_s:7.3f}s  {batch_size / on_s:8.1f} q/s  "
        f"({spans_per_batch} spans/batch)"
    )
    print(
        f"gate: overhead {overhead * 100:+.2f}% "
        f"(allowed {MAX_OVERHEAD * 100:.0f}%)"
    )
    if overhead > MAX_OVERHEAD:
        failures.append(
            f"instrumentation overhead {overhead * 100:.2f}% exceeds the "
            f"{MAX_OVERHEAD * 100:.0f}% budget"
        )

    # The registry really did see the batches it priced.
    snap = get_registry().snapshot()
    report["registry"] = {
        "plan_requests_total": snap["repro_plan_requests_total"]["values"][0][
            "value"
        ],
        "execute_batches": snap["repro_execute_seconds"]["values"][0]["count"],
    }

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[report written to {args.out}]")

    if not report["identical"]:
        failures.insert(0, "answers diverge between serving paths")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
