"""PR 8 daemon benchmark: what does the socket hop cost?

PR 8 puts the serving stack behind a long-lived asyncio daemon
(``repro serve``): newline-delimited JSON in, streamed sink output
out, admission control at the door.  The design bet is that serving
over a socket costs wire serialisation and little else — the daemon
answers a ``batch`` through exactly the same plan → execute → sink
path, on an index it warmed from the store at boot.

This benchmark prices the hop on the contended-batch workload the
PR 4..7 benchmarks established (requests piling onto 8 hot regions):

* **in-process** — ``index.query_batch`` on a prebuilt index, and
* **daemon** — the same ranges as one ``batch`` op against a freshly
  booted ``repro serve`` subprocess (store-warmed, in-process
  execution lane), measured over the socket end to end.

Per-range answers are asserted identical on both sides before
anything is timed.  Gate: the daemon keeps >= 25% of the in-process
qps (the batch is counter-only, so the wire cost is per-range
constants, not per-core volume).

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr8_daemon.py --smoke

writes ``BENCH_PR8.json`` next to the repository root.  ``--smoke``
runs 400 requests and one repetition (CI budget); the default runs
1200 requests, three repetitions, best kept.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.index import CoreIndex  # noqa: E402
from repro.graph.generators import BurstyConfig, generate_bursty  # noqa: E402
from repro.serve.client import DaemonClient  # noqa: E402
from repro.serve.planner import plan_for_index  # noqa: E402
from repro.store.index_store import IndexStore  # noqa: E402

#: Same shape as the PR 1..7 workload: >= 50k temporal edges.
WORKLOAD = BurstyConfig(
    num_vertices=3000,
    background_edges=42000,
    tmax=2000,
    repeat_rate=0.25,
    num_bursts=40,
    burst_size=12,
    burst_width=25,
    edges_per_burst=220,
    seed=1,
    name="bench_pr8",
)

K = 3
NUM_HOT = 8
MIN_QPS_RATIO = 0.25  # daemon keeps >= 25% of the in-process qps


def contended_ranges(rng: random.Random, tmax: int, count: int):
    """The PR 6 contended batch: requests piling onto 8 hot regions."""
    span = tmax // NUM_HOT
    hots = [span // 2 + i * span for i in range(NUM_HOT)]
    ranges = []
    for _ in range(count):
        mode = rng.random()
        if mode < 0.25 and ranges:
            ranges.append(rng.choice(ranges))  # exact repeat
        else:
            hot = rng.choice(hots)
            lo = max(1, hot - span // 3 + rng.randint(-10, 10))
            hi = min(tmax, lo + rng.randint(span // 2, span - 1))
            ranges.append((lo, hi))
    return ranges


def counters(results):
    return [(r.num_results, r.total_edges) for r in results]


def best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def start_daemon(store_root: pathlib.Path) -> tuple[subprocess.Popen, int]:
    environ = dict(os.environ)
    environ["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")]
        + ([environ["PYTHONPATH"]] if environ.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", str(store_root), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=environ,
    )
    line = proc.stdout.readline()
    if not line:
        _out, err = proc.communicate(timeout=10)
        raise RuntimeError(f"daemon failed to start:\n{err}")
    ready = json.loads(line)
    assert ready["event"] == "ready"
    return proc, ready["port"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer requests and one repetition (CI budget)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per side, best kept (default: 1 smoke, 3 full)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=REPO / "BENCH_PR8.json",
        help="output JSON path (default: <repo>/BENCH_PR8.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    batch_size = 400 if args.smoke else 1200

    graph = generate_bursty(WORKLOAD)
    tmax = graph.tmax
    print(f"graph: n={graph.num_vertices} m={graph.num_edges} tmax={tmax} k={K}")

    index = CoreIndex(graph, K)  # build once; both sides serve from it
    index.ecs.window_eids()
    index.ecs.start_cuts([1], [tmax])

    rng = random.Random(42)
    ranges = contended_ranges(rng, tmax, batch_size)
    plan_stats = plan_for_index(index, ranges).stats
    print(
        f"batch: {plan_stats['requests']} requests -> "
        f"{plan_stats['windows']} covering window(s) "
        f"({plan_stats['deduped']} deduped, {plan_stats['merged']} merged)"
    )

    report = {
        "benchmark": "bench_pr8_daemon",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "graph": {
            "name": WORKLOAD.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "tmax": tmax,
        },
        "k": K,
        "plan": plan_stats,
        "in_process": {},
        "daemon": {},
        "identical": True,
    }
    failures = []

    with tempfile.TemporaryDirectory(prefix="bench-pr8-") as tmp:
        store_root = pathlib.Path(tmp) / "store"
        store = IndexStore(store_root)
        store.save_graph(graph, name="g")
        store.save_index(index, name="g")

        proc, port = start_daemon(store_root)
        try:
            with DaemonClient("127.0.0.1", port, timeout=600.0) as client:
                # ---- identity first: the socket must not change answers ----
                want = counters(index.query_batch(ranges))
                got = [
                    (a["num_results"], a["total_edges"])
                    for a in client.batch(ranges, k=K)
                ]
                if got != want:
                    report["identical"] = False
                    failures.append("daemon batch answers diverge")

                # ---- in-process side ----
                local_s = best_of(
                    repeats, lambda: index.query_batch(ranges)
                )

                # ---- daemon side: same batch over the socket ----
                daemon_s = best_of(
                    repeats, lambda: client.batch(ranges, k=K)
                )
                daemon_stats = client.stats()["daemon"]
                client.shutdown()
        finally:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
            for stream in (proc.stdout, proc.stderr):
                if stream is not None:
                    stream.close()

    report["in_process"] = {
        "seconds": round(local_s, 4),
        "qps": round(batch_size / local_s, 1),
    }
    report["daemon"] = {
        "seconds": round(daemon_s, 4),
        "qps": round(batch_size / daemon_s, 1),
        "counters": {
            key: daemon_stats[key]
            for key in ("accepted", "completed", "cancelled", "failed")
        },
    }
    ratio = local_s / daemon_s if daemon_s else 0.0
    report["gate"] = {
        "min_qps_ratio": MIN_QPS_RATIO,
        "qps_ratio": round(ratio, 4),
    }
    print(f"in-process : {local_s:7.3f}s  {batch_size / local_s:8.1f} q/s")
    print(f"daemon     : {daemon_s:7.3f}s  {batch_size / daemon_s:8.1f} q/s")
    print(
        f"gate: daemon keeps {ratio * 100:.1f}% of in-process qps "
        f"(needs {MIN_QPS_RATIO * 100:.0f}%)"
    )
    if ratio < MIN_QPS_RATIO:
        failures.append(
            f"daemon qps ratio {ratio:.3f} below {MIN_QPS_RATIO}"
        )
    report["ok"] = not failures
    if failures:
        report["failures"] = failures

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report: {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
