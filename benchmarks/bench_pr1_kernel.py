"""PR 1 kernel benchmark: flat-array CoreTime vs the seed reference.

Times :func:`repro.core.coretime.compute_core_times` (the compiled
flat-array kernel) against
:func:`repro.core.coretime_ref.compute_core_times_reference` (the seed
dict-based kernel, preserved verbatim) on a synthetic bursty workload of
at least 50k temporal edges, for k in {3, 5}, and verifies that both
return bit-identical VCT entries and ECS windows.

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr1_kernel.py --smoke

writes ``BENCH_PR1.json`` next to the repository root with per-k
old/new timings, the speedup, the one-off graph-compile cost and the
equivalence verdict.  ``--smoke`` runs one repetition per k (< 60 s
total); the default runs three and keeps the best of each side.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.coretime import compute_core_times  # noqa: E402
from repro.core.coretime_ref import compute_core_times_reference  # noqa: E402
from repro.graph.generators import BurstyConfig, generate_bursty  # noqa: E402

#: Workload: >= 50k temporal edges of heavy-tailed background traffic
#: plus planted bursts (the shape the paper's Table III datasets share).
WORKLOAD = BurstyConfig(
    num_vertices=3000,
    background_edges=42000,
    tmax=2000,
    repeat_rate=0.25,
    num_bursts=40,
    burst_size=12,
    burst_width=25,
    edges_per_burst=220,
    seed=1,
    name="bench_pr1",
)

K_VALUES = (3, 5)


def identical(a, b, num_vertices: int, num_edges: int) -> bool:
    """Bit-identical VCT transition lists and ECS windows."""
    for u in range(num_vertices):
        if a.vct.entries_of(u) != b.vct.entries_of(u):
            return False
    for eid in range(num_edges):
        if a.ecs.windows_of(eid) != b.ecs.windows_of(eid):
            return False
    return True


def best_time(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="single repetition per k (CI budget: < 60 s total)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per side, best kept (default: 1 smoke, 3 full)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR1.json",
        help="output JSON path (default: <repo>/BENCH_PR1.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)

    graph = generate_bursty(WORKLOAD)
    compile_start = time.perf_counter()
    graph.compiled()
    compile_seconds = time.perf_counter() - compile_start

    report = {
        "benchmark": "bench_pr1_kernel",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "graph": {
            "name": WORKLOAD.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "tmax": graph.tmax,
        },
        "compile_seconds": round(compile_seconds, 4),
        "results": [],
    }

    print(f"graph: n={graph.num_vertices} m={graph.num_edges} tmax={graph.tmax} "
          f"(compile {compile_seconds:.3f}s, cached)")
    all_identical = True
    worst_speedup = float("inf")
    for k in K_VALUES:
        ref_seconds, ref_result = best_time(
            lambda: compute_core_times_reference(graph, k), repeats
        )
        flat_seconds, flat_result = best_time(
            lambda: compute_core_times(graph, k), repeats
        )
        same = identical(ref_result, flat_result, graph.num_vertices, graph.num_edges)
        all_identical &= same
        speedup = ref_seconds / flat_seconds
        worst_speedup = min(worst_speedup, speedup)
        report["results"].append({
            "k": k,
            "reference_seconds": round(ref_seconds, 4),
            "flat_seconds": round(flat_seconds, 4),
            "speedup": round(speedup, 2),
            "identical": same,
            "vct_size": ref_result.vct.size(),
            "ecs_size": ref_result.ecs.size(),
        })
        print(f"k={k}: reference {ref_seconds:.3f}s  flat {flat_seconds:.3f}s  "
              f"speedup {speedup:.2f}x  identical={same}")

    report["worst_speedup"] = round(worst_speedup, 2)
    report["identical"] = all_identical
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[report written to {args.out}]")

    if not all_identical:
        print("FAIL: kernel outputs diverge from the reference", file=sys.stderr)
        return 1
    if worst_speedup < 3.0:
        print(f"WARN: worst speedup {worst_speedup:.2f}x below the 3x target",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
