"""Figure 11 — number of temporal k-cores as the range width varies."""

from __future__ import annotations

from repro.bench.experiments import experiment_fig11


def test_regenerate_fig11(benchmark, save_report, profile):
    report = benchmark.pedantic(
        experiment_fig11, args=(profile,), rounds=1, iterations=1
    )
    save_report("fig11", report)
