"""PR 5 enumeration benchmark: columnar walk + planner vs the PR 4 path.

Measures the serving lever this PR moves: once the per-query window
prep is vectorised (PR 4), wide-window queries are bound by the
output-optimal Algorithm-5 walk itself, and overlapping batches by
answering every range independently.  Three measurements on the
50k-edge bursty workload, all from the same prebuilt
:class:`CoreIndex`:

* **wide-window single query** — the PR 4 path (vectorised cut +
  linked-list Enum, now the oracle ``enumerate_active_window_arrays_ref``)
  vs the columnar walk (``CoreIndex.query``), on half-span and
  full-span windows.  Target: >= 3x.
* **overlapping-batch throughput** — the PR 4 path answered each range
  independently; the planner dedupes identical ranges, merges
  overlapping ones into covering windows enumerated once, and slices
  per request (``CoreIndex.query_batch``).  Target: >= 2x.
* **peak memory, streaming vs materialising** — the same wide window
  delivered through the count/NDJSON sinks vs materialised
  ``TemporalKCore`` objects (tracemalloc peaks, reported unchanged —
  rankings carry over as in Fig. 12).

Identical answers are asserted for every timed range (counters per
range; materialised edge sets on a spot-check subset).

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr5_enum.py --smoke

writes ``BENCH_PR5.json`` next to the repository root.  ``--smoke``
runs fewer queries and one repetition (CI budget); the default runs
three repetitions and keeps the best of each.
"""

from __future__ import annotations

import argparse
import io
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.memory import measure_peak_memory  # noqa: E402
from repro.core.enumerate_ref import (  # noqa: E402
    enumerate_active_window_arrays_ref,
)
from repro.core.index import CoreIndex  # noqa: E402
from repro.graph.generators import BurstyConfig, generate_bursty  # noqa: E402
from repro.serve.sinks import CountSink, NDJSONSink  # noqa: E402

#: Same shape as the PR 1/PR 3/PR 4 workload: >= 50k temporal edges.
WORKLOAD = BurstyConfig(
    num_vertices=3000,
    background_edges=42000,
    tmax=2000,
    repeat_rate=0.25,
    num_bursts=40,
    burst_size=12,
    burst_width=25,
    edges_per_burst=220,
    seed=1,
    name="bench_pr5",
)

K = 3
WIDE_TARGET = 3.0
BATCH_TARGET = 2.0


def pr4_query(index: CoreIndex, ts: int, te: int):
    """The PR 4 serving path: vectorised window cut + linked-list Enum."""
    arrays = index.ecs.active_window_arrays(ts, te)
    return enumerate_active_window_arrays_ref(
        index.k, ts, te, arrays, collect=False
    )


def overlapping_ranges(rng: random.Random, tmax: int, count: int):
    """A contended batch: hot regions, repeats, medium-wide windows."""
    hot_spots = [rng.randint(1, tmax // 2) for _ in range(3)]
    ranges = []
    for _ in range(count):
        mode = rng.random()
        if mode < 0.25 and ranges:
            ranges.append(rng.choice(ranges))  # exact repeat (dashboards)
        elif mode < 0.8:
            lo = max(1, rng.choice(hot_spots) + rng.randint(-10, 10))
            hi = min(tmax, lo + rng.randint(tmax // 10, tmax // 3))
            ranges.append((lo, hi))
        else:
            length = rng.randint(tmax // 20, tmax // 5)
            lo = rng.randint(1, max(1, tmax - length))
            ranges.append((lo, min(tmax, lo + length)))
    return ranges


def best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer queries and a single repetition (CI budget)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per side, best kept (default: 1 smoke, 3 full)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR5.json",
        help="output JSON path (default: <repo>/BENCH_PR5.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    batch_size = 60 if args.smoke else 150

    graph = generate_bursty(WORKLOAD)
    tmax = graph.tmax
    print(f"graph: n={graph.num_vertices} m={graph.num_edges} tmax={tmax} k={K}")

    index = CoreIndex(graph, K)  # build once; enumeration is what we measure
    index.ecs.window_eids()  # touch the lazy per-index caches up front
    index.ecs.start_cuts([1], [tmax])
    print(f"index: |VCT|={index.vct.size()} |ECS|={index.ecs.size()}")

    rng = random.Random(42)
    half = tmax // 2
    wide_classes = {
        "half": [
            (lo, lo + half - 1)
            for lo in (1, tmax // 4, half)
        ][: 2 if args.smoke else 3],
        "full": [(1, tmax)],
    }

    report = {
        "benchmark": "bench_pr5_enum",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "graph": {
            "name": WORKLOAD.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "tmax": tmax,
        },
        "k": K,
        "index_sizes": {"vct": index.vct.size(), "ecs": index.ecs.size()},
        "wide_single_query": {},
        "overlapping_batch": {},
        "peak_memory": {},
        "identical": True,
    }
    failures = []

    # ---- answer identity on every timed wide range; materialised edge
    # sets spot-checked on the cheapest of them ----
    for name, ranges in wide_classes.items():
        for ts, te in ranges:
            new = index.query(ts, te, collect=False)
            old = pr4_query(index, ts, te)
            if (new.num_results, new.total_edges) != (
                old.num_results, old.total_edges
            ):
                report["identical"] = False
                failures.append(f"old/new diverge on {name} range ({ts}, {te})")
    spot_ts, spot_te = 1, tmax // 8
    new_spot = index.query(spot_ts, spot_te, collect=True)
    arrays = index.ecs.active_window_arrays(spot_ts, spot_te)
    old_spot = enumerate_active_window_arrays_ref(
        K, spot_ts, spot_te, arrays, collect=True
    )
    if new_spot.by_tti().keys() != old_spot.by_tti().keys() or any(
        core.edge_set() != old_spot.by_tti()[tti].edge_set()
        for tti, core in new_spot.by_tti().items()
    ):
        report["identical"] = False
        failures.append("materialised cores diverge on the spot-check range")

    # ---- wide-window single-query latency ----
    for name, ranges in wide_classes.items():
        old_s = best_of(
            repeats,
            lambda r=ranges: [pr4_query(index, ts, te) for ts, te in r],
        )
        new_s = best_of(
            repeats,
            lambda r=ranges: [
                index.query(ts, te, collect=False) for ts, te in r
            ],
        )
        speedup = old_s / new_s if new_s else float("inf")
        report["wide_single_query"][name] = {
            "queries": len(ranges),
            "old_seconds": round(old_s, 4),
            "new_seconds": round(new_s, 4),
            "old_ms_per_query": round(1000 * old_s / len(ranges), 3),
            "new_ms_per_query": round(1000 * new_s / len(ranges), 3),
            "speedup": round(speedup, 2),
        }
        print(
            f"wide[{name:4s}]: old {1000 * old_s / len(ranges):9.1f} ms/q  "
            f"new {1000 * new_s / len(ranges):9.1f} ms/q  {speedup:6.2f}x"
        )
        if speedup < WIDE_TARGET:
            failures.append(
                f"wide-window speedup on {name} windows {speedup:.2f}x "
                f"below the {WIDE_TARGET:.0f}x target"
            )

    # ---- overlapping-batch throughput ----
    batch_ranges = overlapping_ranges(rng, tmax, batch_size)
    old_answers = [pr4_query(index, ts, te) for ts, te in batch_ranges]
    new_answers = index.query_batch(batch_ranges)
    for (ts, te), old, new in zip(batch_ranges, old_answers, new_answers):
        if (new.num_results, new.total_edges) != (
            old.num_results, old.total_edges
        ):
            report["identical"] = False
            failures.append(f"batch answers diverge on range ({ts}, {te})")
    old_s = best_of(
        repeats,
        lambda: [pr4_query(index, ts, te) for ts, te in batch_ranges],
    )
    new_s = best_of(repeats, lambda: index.query_batch(batch_ranges))
    batch_speedup = old_s / new_s if new_s else float("inf")
    from repro.serve.planner import plan_for_index

    plan_stats = plan_for_index(index, batch_ranges).stats
    report["overlapping_batch"] = {
        "queries": len(batch_ranges),
        "plan": plan_stats,
        "old_seconds": round(old_s, 4),
        "new_seconds": round(new_s, 4),
        "old_qps": round(len(batch_ranges) / old_s, 1) if old_s else float("inf"),
        "new_qps": round(len(batch_ranges) / new_s, 1) if new_s else float("inf"),
        "speedup": round(batch_speedup, 2),
    }
    print(
        f"batch ({len(batch_ranges):4d} q -> {plan_stats['windows']} windows): "
        f"old {report['overlapping_batch']['old_qps']:8.1f} q/s  "
        f"new {report['overlapping_batch']['new_qps']:8.1f} q/s  "
        f"{batch_speedup:6.2f}x"
    )
    if batch_speedup < BATCH_TARGET:
        failures.append(
            f"overlapping-batch speedup {batch_speedup:.2f}x below the "
            f"{BATCH_TARGET:.0f}x target"
        )

    # ---- peak memory: materialising vs streaming sinks ----
    # |R| grows superlinearly with the window; the eighth-span window
    # already materialises ~20M edge ids, plenty to separate the sinks
    # (the half-span window's |R| is in the billions — materialising it
    # is exactly what the streaming sinks exist to avoid).
    mem_ts, mem_te = 1, tmax // 8
    collected, peak_materialised = measure_peak_memory(
        lambda: index.query(mem_ts, mem_te, collect=True)
    )
    _, peak_count = measure_peak_memory(
        lambda: index.query(mem_ts, mem_te, sink=CountSink())
    )

    class _Discard(io.TextIOBase):
        def write(self, text):
            return len(text)

    _, peak_ndjson = measure_peak_memory(
        lambda: index.query(
            mem_ts, mem_te, sink=NDJSONSink(_Discard(), edge_ids=False)
        )
    )
    report["peak_memory"] = {
        "window": [mem_ts, mem_te],
        "num_results": collected.num_results,
        "materialising_bytes": peak_materialised,
        "count_sink_bytes": peak_count,
        "ndjson_sink_bytes": peak_ndjson,
        "materialising_over_count": round(
            peak_materialised / peak_count, 1
        ) if peak_count else float("inf"),
    }
    print(
        f"peak memory [{mem_ts}, {mem_te}] ({collected.num_results} cores): "
        f"materialising {peak_materialised / 2**20:.1f} MiB, "
        f"count sink {peak_count / 2**20:.1f} MiB, "
        f"ndjson sink {peak_ndjson / 2**20:.1f} MiB"
    )

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[report written to {args.out}]")

    if not report["identical"]:
        failures.insert(0, "answers diverge between serving paths")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
