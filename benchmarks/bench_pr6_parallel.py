"""PR 6 serving benchmark: process-parallel batches vs the PR 5 path.

Measures the two levers this PR moves on the contended-batch workload
(1000+ requests hammering a handful of hot regions, the shape where
PR 5 measured 314 q/s on a single process):

* **vectorised slice routing** — the PR 5 executor walked a Python
  list of active targets and bisected per request per start time; the
  PR 6 router holds all target ranges as flat interval arrays and
  routes each emission batch with one ``searchsorted`` (counting-only
  batches accumulate in arrays and never re-enter Python).  The PR 5
  router is replicated verbatim below as the baseline.
* **process-parallel execution** — the same planned batch fanned out
  over a :class:`~repro.serve.parallel.WorkerPool` at 1/2/4 workers:
  workers attach to the shared ``IndexStore`` by mmap (no per-worker
  build), covering windows are LPT-packed by estimated work, and
  per-range counters come back to the parent.  Worker scaling beyond
  the router win depends on the machine's core count — the report
  records both, and the gate takes the best multi-process
  configuration.

Per-range answers are asserted identical across *all* paths (PR 5
baseline, vectorised sequential, every worker count) before anything
is timed.  Gate: best worker-pool qps >= 2x the single-process PR 5
baseline qps.

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr6_parallel.py --smoke

writes ``BENCH_PR6.json`` next to the repository root.  ``--smoke``
runs fewer requests, one repetition and workers {1, 2} (CI budget);
the default runs three repetitions at 1/2/4 workers, best kept.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.index import CoreIndex  # noqa: E402
from repro.graph.generators import BurstyConfig, generate_bursty  # noqa: E402
from repro.serve.columnar import run_columnar_walk  # noqa: E402
from repro.serve.executor import _group_window_arrays  # noqa: E402
from repro.serve.parallel import open_pool  # noqa: E402
from repro.serve.planner import plan_for_index  # noqa: E402
from repro.serve.sinks import CountSink, ResultSink  # noqa: E402

#: Same shape as the PR 1..5 workload: >= 50k temporal edges.
WORKLOAD = BurstyConfig(
    num_vertices=3000,
    background_edges=42000,
    tmax=2000,
    repeat_rate=0.25,
    num_bursts=40,
    burst_size=12,
    burst_width=25,
    edges_per_burst=220,
    seed=1,
    name="bench_pr6",
)

K = 3
TARGET = 2.0  # best pool qps vs the single-process PR 5 baseline
NUM_HOT = 8  # hot regions -> covering windows available for fan-out


class _PR5SliceRouter(ResultSink):
    """The PR 5 router, replicated verbatim as the baseline.

    A Python list of active targets, re-scanned per emission batch with
    one bisect per target — the per-request-bisect path this PR's
    vectorised router replaces.
    """

    def __init__(self, targets):
        super().__init__()
        self._pending = sorted(targets, key=lambda target: target[0])
        self._position = 0
        self._active = []

    def consume(self, t, ends, prefix_lens, eids):
        pending = self._pending
        while self._position < len(pending) and pending[self._position][0] <= t:
            self._active.append(pending[self._position])
            self._position += 1
        if not self._active:
            return
        alive = []
        for target in self._active:
            ts, te, sink = target
            if te < t:
                continue
            alive.append(target)
            count = int(np.searchsorted(ends, te, side="right"))
            if count:
                run = eids[: int(prefix_lens[count - 1])]
                sink.emit(t, ends[:count], prefix_lens[:count], run)
        self._active = alive

    def finish(self, completed):
        super().finish(completed)
        for _ts, _te, sink in self._pending:
            sink.finish(completed)


def pr5_query_batch(index: CoreIndex, ranges):
    """The single-process PR 5 serving path: plan + bisect routing."""
    plan = plan_for_index(index, ranges)
    sinks = [CountSink() for _ in plan.requests]
    for group in plan.groups:
        for window, arrays in _group_window_arrays(
            group, registry=None, store=None
        ):
            if window.is_shared:
                target = _PR5SliceRouter(
                    [
                        (plan.requests[r].ts, plan.requests[r].te, sinks[r])
                        for r in window.requests
                    ]
                )
            else:
                target = sinks[window.requests[0]]
            done = run_columnar_walk(window.ts, window.te, arrays, target)
            target.finish(done)
    return [
        sink.result("enum", request.k, request.time_range)
        for request, sink in zip(plan.requests, sinks)
    ]


def contended_ranges(rng: random.Random, tmax: int, count: int):
    """A contended batch over ``NUM_HOT`` evenly spread hot regions.

    Requests pile onto the hot regions (plus exact repeats — dashboard
    traffic), so the planner merges them into roughly one covering
    window per region: enough shared work for the router to dominate
    and enough independent windows for the pool to fan out.
    """
    span = tmax // NUM_HOT
    hots = [span // 2 + i * span for i in range(NUM_HOT)]
    ranges = []
    for _ in range(count):
        mode = rng.random()
        if mode < 0.25 and ranges:
            ranges.append(rng.choice(ranges))  # exact repeat
        else:
            hot = rng.choice(hots)
            lo = max(1, hot - span // 3 + rng.randint(-10, 10))
            hi = min(tmax, lo + rng.randint(span // 2, span - 1))
            ranges.append((lo, hi))
    return ranges


def counters(results):
    return [(r.num_results, r.total_edges) for r in results]


def best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer requests, one repetition, workers {1,2} (CI budget)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per side, best kept (default: 1 smoke, 3 full)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR6.json",
        help="output JSON path (default: <repo>/BENCH_PR6.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    batch_size = 400 if args.smoke else 1200
    worker_counts = (1, 2) if args.smoke else (1, 2, 4)

    graph = generate_bursty(WORKLOAD)
    tmax = graph.tmax
    print(f"graph: n={graph.num_vertices} m={graph.num_edges} tmax={tmax} k={K}")

    index = CoreIndex(graph, K)  # build once; serving is what we measure
    index.ecs.window_eids()  # touch the lazy per-index caches up front
    index.ecs.start_cuts([1], [tmax])

    rng = random.Random(42)
    ranges = contended_ranges(rng, tmax, batch_size)
    plan_stats = plan_for_index(index, ranges).stats
    print(
        f"batch: {plan_stats['requests']} requests -> "
        f"{plan_stats['windows']} covering window(s) "
        f"({plan_stats['deduped']} deduped, {plan_stats['merged']} merged)"
    )

    report = {
        "benchmark": "bench_pr6_parallel",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "graph": {
            "name": WORKLOAD.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "tmax": tmax,
        },
        "k": K,
        "plan": plan_stats,
        "pr5_single_process": {},
        "vectorised_router": {},
        "worker_pool": {},
        "identical": True,
    }
    failures = []

    # ---- identity first: every timed path answers every range alike ----
    baseline = counters(pr5_query_batch(index, ranges))
    if counters(index.query_batch(ranges)) != baseline:
        report["identical"] = False
        failures.append("vectorised router diverges from the PR 5 baseline")

    # ---- single-process sides ----
    old_s = best_of(repeats, lambda: pr5_query_batch(index, ranges))
    new_s = best_of(repeats, lambda: index.query_batch(ranges))
    report["pr5_single_process"] = {
        "seconds": round(old_s, 4),
        "qps": round(batch_size / old_s, 1),
    }
    report["vectorised_router"] = {
        "seconds": round(new_s, 4),
        "qps": round(batch_size / new_s, 1),
        "speedup_vs_pr5": round(old_s / new_s, 2) if new_s else float("inf"),
    }
    print(
        f"pr5 single-process : {old_s:7.3f}s  {batch_size / old_s:8.1f} q/s"
    )
    print(
        f"vectorised router  : {new_s:7.3f}s  {batch_size / new_s:8.1f} q/s  "
        f"{old_s / new_s:5.2f}x"
    )

    # ---- worker pool at each count (prestarted; store persisted by the
    # warm-up batch, which is also the identity check) ----
    best_pool_qps = 0.0
    for workers in worker_counts:
        with open_pool(workers, min_parallel_windows=0) as pool:
            pool.prestart()
            warm = index.query_batch(ranges, parallel=pool)
            if counters(warm) != baseline:
                report["identical"] = False
                failures.append(
                    f"{workers}-worker answers diverge from the PR 5 baseline"
                )
            pool_s = best_of(
                repeats, lambda: index.query_batch(ranges, parallel=pool)
            )
            entry = {
                "seconds": round(pool_s, 4),
                "qps": round(batch_size / pool_s, 1),
                "speedup_vs_pr5": round(old_s / pool_s, 2)
                if pool_s
                else float("inf"),
                "tasks_dispatched": pool.tasks_dispatched,
                "sequential_fallbacks": pool.sequential_fallbacks,
            }
            report["worker_pool"][str(workers)] = entry
            best_pool_qps = max(best_pool_qps, entry["qps"])
            print(
                f"pool ({workers} worker{'s' if workers > 1 else ' '})    : "
                f"{pool_s:7.3f}s  {batch_size / pool_s:8.1f} q/s  "
                f"{old_s / pool_s:5.2f}x  "
                f"[{pool.tasks_dispatched} chunks]"
            )

    gate = best_pool_qps / (batch_size / old_s) if old_s else float("inf")
    report["gate"] = {
        "target": TARGET,
        "best_pool_qps": best_pool_qps,
        "pr5_qps": report["pr5_single_process"]["qps"],
        "speedup": round(gate, 2),
    }
    print(f"gate: best pool {best_pool_qps:.1f} q/s vs pr5 "
          f"{report['pr5_single_process']['qps']:.1f} q/s = {gate:.2f}x "
          f"(target {TARGET:.0f}x)")
    if gate < TARGET:
        failures.append(
            f"contended multi-process batch {gate:.2f}x below the "
            f"{TARGET:.0f}x target vs the single-process PR 5 baseline"
        )

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[report written to {args.out}]")

    if not report["identical"]:
        failures.insert(0, "answers diverge between serving paths")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
