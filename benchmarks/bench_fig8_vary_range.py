"""Figure 8 — running time as the query range varies over 5-40% of tmax.

This is where OTCD's O(tmax^2) window scan explodes while Enum stays
result-bound; the paper reports OTCD DNFs at the wide settings.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import experiment_fig8
from repro.bench.workloads import build_workload
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset


@pytest.mark.parametrize("range_fraction", [0.05, 0.1, 0.2, 0.4])
def test_enum_vary_range_wt(benchmark, range_fraction):
    """Enum (incl. CoreTime) on the WT analogue at each range width."""
    graph = load_dataset("WT")
    workload = build_workload(
        graph, "WT", range_fraction=range_fraction, num_queries=1, seed=13
    )
    ts, te = workload.ranges[0]
    result = benchmark.pedantic(
        enumerate_temporal_kcores,
        args=(graph, workload.k, ts, te),
        kwargs={"collect": False},
        rounds=2,
        iterations=1,
    )
    assert result.completed


def test_regenerate_fig8(benchmark, save_report, profile):
    report = benchmark.pedantic(
        experiment_fig8, args=(profile,), rounds=1, iterations=1
    )
    save_report("fig8", report)
