"""PR 3 multi-k benchmark: one shared-scan build vs N independent builds.

Measures what a mixed-``k`` serving deployment pays to index one graph
for several ``k`` values on the 50k-edge bursty workload of
``bench_pr1_kernel``:

* **independent** — one full Algorithm-2 run per ``k`` (the pre-PR 3
  reality: ``CoreIndex(graph, k)`` for each ``k``, compiled graph
  shared);
* **multik** — ``build_core_indexes(graph, ks)``: a single shared
  decremental scan harvesting the VCT and ECS of every ``k`` at once
  (``repro.core.multik``).

Both sides index the same graph; the benchmark asserts the resulting
VCT transition lists and ECS windows are identical entry-by-entry for
every ``k`` and reports the speedup (target: >= 2x for the 4-k build).

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr3_multik.py --smoke

writes ``BENCH_PR3.json`` next to the repository root.  ``--smoke``
runs one repetition per side (CI budget); the default runs three and
keeps the best of each.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.index import CoreIndex  # noqa: E402
from repro.core.multik import build_core_indexes  # noqa: E402
from repro.graph.generators import BurstyConfig, generate_bursty  # noqa: E402
from repro.graph.temporal_graph import TemporalGraph  # noqa: E402

#: Same shape as the PR 1 workload: >= 50k temporal edges, bursty.
WORKLOAD = BurstyConfig(
    num_vertices=3000,
    background_edges=42000,
    tmax=2000,
    repeat_rate=0.25,
    num_bursts=40,
    burst_size=12,
    burst_width=25,
    edges_per_burst=220,
    seed=1,
    name="bench_pr3",
)

KS = (2, 3, 4, 5)
SPEEDUP_TARGET = 2.0


def identical(multi: dict[int, CoreIndex], singles: dict[int, CoreIndex], graph) -> bool:
    """Entry-by-entry VCT and ECS equality for every k."""
    for k in KS:
        a, b = multi[k], singles[k]
        if a.vct.size() != b.vct.size() or a.ecs.size() != b.ecs.size():
            return False
        for u in range(graph.num_vertices):
            if a.vct.entries_of(u) != b.vct.entries_of(u):
                return False
        for eid in range(graph.num_edges):
            if a.ecs.windows_of(eid) != b.ecs.windows_of(eid):
                return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="single repetition per side (CI budget)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per side, best kept (default: 1 smoke, 3 full)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR3.json",
        help="output JSON path (default: <repo>/BENCH_PR3.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)

    source = generate_bursty(WORKLOAD)
    triples = [
        (source.label_of(u), source.label_of(v), t) for u, v, t in source.edges
    ]
    print(f"graph: n={source.num_vertices} m={source.num_edges} "
          f"tmax={source.tmax} ks={list(KS)}")

    # ---- independent: one Algorithm-2 run per k (shared compile) ----
    independent_seconds = float("inf")
    singles: dict[int, CoreIndex] = {}
    graph_ind = TemporalGraph(triples)
    graph_ind.compiled()  # both sides start from a compiled graph
    for _ in range(repeats):
        start = time.perf_counter()
        singles = {k: CoreIndex(graph_ind, k) for k in KS}
        independent_seconds = min(independent_seconds, time.perf_counter() - start)

    # ---- multik: one shared decremental scan for all ks ----
    multik_seconds = float("inf")
    multi: dict[int, CoreIndex] = {}
    graph_multi = TemporalGraph(triples)
    graph_multi.compiled()
    for _ in range(repeats):
        start = time.perf_counter()
        multi = build_core_indexes(graph_multi, KS)
        multik_seconds = min(multik_seconds, time.perf_counter() - start)

    same = identical(multi, singles, graph_multi)
    speedup = independent_seconds / multik_seconds if multik_seconds else float("inf")

    report = {
        "benchmark": "bench_pr3_multik",
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "graph": {
            "name": WORKLOAD.name,
            "num_vertices": source.num_vertices,
            "num_edges": source.num_edges,
            "tmax": source.tmax,
        },
        "ks": list(KS),
        "independent_seconds": round(independent_seconds, 4),
        "multik_seconds": round(multik_seconds, 4),
        "speedup": round(speedup, 2),
        "vct_sizes": {str(k): multi[k].vct.size() for k in KS},
        "ecs_sizes": {str(k): multi[k].ecs.size() for k in KS},
        "identical": same,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(
        f"ks={list(KS)}: independent {independent_seconds:.2f}s  "
        f"multik {multik_seconds:.2f}s  speedup {speedup:.2f}x  "
        f"identical={same}"
    )
    print(f"[report written to {args.out}]")

    if not same:
        print("FAIL: multi-k indexes diverge from per-k builds", file=sys.stderr)
        return 1
    if speedup < SPEEDUP_TARGET:
        print(
            f"FAIL: speedup {speedup:.2f}x below the {SPEEDUP_TARGET:.0f}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
