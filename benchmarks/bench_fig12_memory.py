"""Figure 12 — peak memory per algorithm.

The paper's claim: Enum stays far below OTCD (which keeps per-start core
copies) and EnumBase (which hashes every distinct core's edge set).
"""

from __future__ import annotations

from repro.baselines.otcd import enumerate_otcd
from repro.bench.experiments import experiment_fig12
from repro.bench.memory import measure_peak_memory
from repro.bench.workloads import build_workload
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset


def test_memory_ranking_mc(benchmark):
    """On a result-heavy workload, Enum's peak must undercut EnumBase.

    The paper also reports Enum below OTCD; at our ~150x reduced scale
    OTCD's dominant cost (full projected-graph copies at millions of
    edges) disappears, so only the Enum-vs-EnumBase ranking is asserted —
    see EXPERIMENTS.md for the discussion.
    """
    graph = load_dataset("MC")
    workload = build_workload(graph, "MC", num_queries=1, seed=19)
    ts, te = workload.ranges[0]
    k = workload.k

    def run_all() -> tuple[int, int, int]:
        _, enum_peak = measure_peak_memory(
            lambda: enumerate_temporal_kcores(graph, k, ts, te, collect=False)
        )
        _, base_peak = measure_peak_memory(
            lambda: enumerate_temporal_kcores_base(graph, k, ts, te, collect=False)
        )
        _, otcd_peak = measure_peak_memory(
            lambda: enumerate_otcd(graph, k, ts, te, collect=False)
        )
        return enum_peak, base_peak, otcd_peak

    enum_peak, base_peak, _otcd_peak = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    assert enum_peak < base_peak


def test_regenerate_fig12(benchmark, save_report, profile):
    report = benchmark.pedantic(
        experiment_fig12, args=(profile,), rounds=1, iterations=1
    )
    save_report("fig12", report)
