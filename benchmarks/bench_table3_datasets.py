"""Table III — dataset generation and statistics.

Benchmarks the synthetic dataset pipeline and regenerates the
paper-vs-generated statistics table.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table1, experiment_table2, experiment_table3
from repro.datasets.registry import recipe
from repro.datasets.stats import compute_stats
from repro.graph.generators import generate_bursty


def test_generate_cm_dataset(benchmark):
    """Cost of materialising the CollegeMsg-analogue recipe."""
    config = recipe("CM")
    graph = benchmark(generate_bursty, config)
    assert graph.num_edges == config.total_edges()


def test_stats_wt_dataset(benchmark):
    """Cost of the Table III statistics (core decomposition included)."""
    graph = generate_bursty(recipe("WT"))
    stats = benchmark(compute_stats, graph)
    assert stats.kmax >= 5


def test_regenerate_table1(benchmark, save_report):
    report = benchmark.pedantic(experiment_table1, rounds=1, iterations=1)
    assert "NO" not in report.split("match")[-1]
    save_report("table1", report)


def test_regenerate_table2(benchmark, save_report):
    report = benchmark.pedantic(experiment_table2, rounds=1, iterations=1)
    assert "NO" not in report.split("match")[-1]
    save_report("table2", report)


def test_regenerate_table3(benchmark, save_report):
    report = benchmark.pedantic(experiment_table3, rounds=1, iterations=1)
    save_report("table3", report)
