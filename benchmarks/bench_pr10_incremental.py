"""PR 10 incremental maintenance benchmark: delta-folds vs full rebuilds.

PR 10 replaces the streaming append path's full index rebuild with an
incremental **delta-fold** (``repro.core.incremental``): extend the
compiled arrays in O(|delta|), recompute only the suffix window the
new edges can reach, and splice the harvested rows into the existing
start-sorted VCT/ECS arrays.  This prices that path:

* **gate** — one fold of a ≤1% pending batch against the full rebuild
  on the same edges.  The batch lands inside the currently-active
  community (the realistic streaming shape: new activity arrives where
  the graph is already hot), which keeps the recompute window small.
  The run **fails** unless the fold is at least ``GATE_SPEEDUP``×
  faster *and* the folded indexes are entry-identical to the rebuild.
* **delta-sweep** — fold latency as the pending batch grows, same base.
* **sustained** — an append+refresh mix through
  :class:`StreamingCoreService`, measuring the freshness lag a client
  observes (edges pending at refresh, seconds the refresh takes) as a
  function of the append rate between refreshes.

Standalone script (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_pr10_incremental.py --smoke

writes ``BENCH_PR10.json`` next to the repository root.  ``--smoke``
shrinks the base stream for the CI budget; the gate is enforced in
both modes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.incremental import delta_fold  # noqa: E402
from repro.core.maintenance import StreamingCoreService  # noqa: E402
from repro.core.multik import build_core_indexes  # noqa: E402
from repro.graph.temporal_graph import TemporalGraph  # noqa: E402

SEED = 11
KS = (2, 4, 8)
GATE_SPEEDUP = 5.0
#: Window (in normalized instants, back from tmax) the "hot community"
#: is read from.
HOT_WINDOW = 600


class HotStream:
    """A community-skewed edge stream over a slowly drifting pool.

    Endpoints are beta-skewed into an 80-vertex active pool whose base
    drifts forward a little with every edge — old vertices retire, new
    ones join, and a dense recurring community keeps real k-cores
    alive near the frontier (uniform random streams never form one).
    """

    def __init__(self, nodes: int = 3000, pool: int = 80, seed: int = SEED):
        self.rng = random.Random(seed)
        self.nodes = nodes
        self.pool = pool
        self.t = 1
        self.base = 0.0

    def _draw(self) -> str:
        offset = int(self.rng.betavariate(1.2, 3.0) * self.pool)
        return f"v{(int(self.base) + offset) % self.nodes}"

    def take(self, count: int) -> list[tuple[str, str, int]]:
        out: list[tuple[str, str, int]] = []
        while len(out) < count:
            if self.rng.random() < 0.55:
                self.t += 1
            u, v = self._draw(), self._draw()
            if u == v:
                continue
            out.append((u, v, self.t))
            self.base += 0.02
        return out


def hot_members(graph, indexes) -> list[str]:
    """Labels of the current top-k core community near the frontier."""
    k = max(indexes)
    ts = max(1, graph.tmax - HOT_WINDOW)
    members = indexes[k].vct.core_members(ts, graph.tmax)
    return [graph.label_of(int(u)) for u in members]


def hot_delta(labels, count: int, start_t: int, rng: random.Random):
    """``count`` strictly-newer edges among the hot community."""
    out: list[tuple[str, str, int]] = []
    t = start_t
    while len(out) < count:
        if rng.random() < 0.55:
            t += 1
        u, v = rng.sample(labels, 2)
        out.append((u, v, t))
    return out


def flat_equal(a, b) -> bool:
    """Entry-identity of two CoreTimeResults via their flat arrays."""
    for left, right in (
        (a.vct.flat_parts(), b.vct.flat_parts()),
        (a.ecs.flat_parts(), b.ecs.flat_parts()),
    ):
        for x, y in zip(left, right):
            same = x == y
            if not (same.all() if hasattr(same, "all") else same):
                return False
    return True


def check_identical(folded, rebuilt, graph) -> None:
    """The in-bench answer check: folded == rebuilt, arrays and queries."""
    for k in KS:
        assert flat_equal(
            folded[k], rebuilt[k]
        ), f"fold diverged from rebuild at k={k}"
        # A few live window queries on top of the array identity.
        for ts, te in ((1, graph.tmax), (max(1, graph.tmax // 2), graph.tmax)):
            got = folded[k].vct.core_members(ts, te)
            want = rebuilt[k].vct.core_members(ts, te)
            assert (got == want).all(), f"core_members diverged at k={k}"


def bench_gate(base_count: int, delta_count: int) -> dict:
    stream = HotStream()
    base_edges = stream.take(base_count)
    base = TemporalGraph(base_edges)

    start = time.perf_counter()
    indexes = build_core_indexes(base, KS)
    base_build_s = time.perf_counter() - start

    rng = random.Random(SEED + 1)
    labels = hot_members(base, indexes)
    delta = hot_delta(labels, delta_count, stream.t + 1, rng)

    start = time.perf_counter()
    fold = delta_fold(base, indexes, delta)
    fold_s = time.perf_counter() - start

    start = time.perf_counter()
    rebuilt = build_core_indexes(TemporalGraph(base_edges + delta), KS)
    full_s = time.perf_counter() - start

    check_identical(fold.indexes, rebuilt, fold.graph)
    speedup = full_s / fold_s
    report = vars(fold.report).copy()
    return {
        "base_edges": base_count,
        "delta_edges": delta_count,
        "pending_fraction": delta_count / (base_count + delta_count),
        "ks": list(KS),
        "base_build_seconds": base_build_s,
        "fold_seconds": fold_s,
        "full_rebuild_seconds": full_s,
        "speedup": speedup,
        "gate_speedup": GATE_SPEEDUP,
        "fold_report": report,
        "identical": True,
        "stream": (base, base_edges, indexes, labels, delta),
    }


def bench_delta_sweep(gate: dict, sizes: list[int]) -> list[dict]:
    """Fold latency vs batch size, all from the same base snapshot."""
    base, _edges, indexes, labels, _delta = gate["stream"]
    rows = []
    for size in sizes:
        rng = random.Random(SEED + size)
        delta = hot_delta(labels, size, base.raw_time_of(base.tmax) + 1, rng)
        start = time.perf_counter()
        fold = delta_fold(base, indexes, delta)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "delta_edges": size,
                "fold_seconds": elapsed,
                "window_fraction": fold.report.window_fraction,
                "cascade_vertices": fold.report.cascade_vertices,
            }
        )
    return rows


def bench_sustained(gate: dict, rates: list[int]) -> list[dict]:
    """Append+refresh rounds: freshness lag as the append rate grows.

    Each round appends ``rate`` hot edges through the streaming
    service, then refreshes; the lag a reader saw is the pending count
    at refresh time (edges) plus how long the refresh took to clear it
    (seconds).  The sustainable rate is the batch over the fold time.
    """
    _base, base_edges, _indexes, labels, delta = gate["stream"]
    service = StreamingCoreService(KS, max_pending=1_000_000)
    edges = base_edges + delta
    for u, v, t in edges:
        service.append(u, v, t)
    service.refresh(mode="full")
    last_t = edges[-1][2]

    rows = []
    for rate in rates:
        rng = random.Random(SEED + 7 * rate)
        batch = hot_delta(labels, rate, last_t + 1, rng)
        last_t = batch[-1][2]
        for u, v, t in batch:
            service.append(u, v, t)
        lag_edges = service.num_pending
        start = time.perf_counter()
        resolved = service.refresh(mode="auto")
        refresh_s = time.perf_counter() - start
        rows.append(
            {
                "append_rate_edges": rate,
                "mode": resolved,
                "lag_edges_at_refresh": lag_edges,
                "refresh_seconds": refresh_s,
                "sustainable_edges_per_second": rate / refresh_s,
            }
        )
    stats = service.stats()
    rows.append(
        {
            "summary": {
                "incremental_folds": stats["incremental_folds"],
                "full_rebuilds": stats["full_rebuilds"],
                "last_fallback_reason": stats["last_fallback_reason"],
            }
        }
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI budget: smaller base stream")
    parser.add_argument("--output", default=str(REPO / "BENCH_PR10.json"))
    args = parser.parse_args(argv)

    if args.smoke:
        base_count, delta_count = 9_900, 100
        sweep = [25, 50, 100]
        rates = [50, 100, 200]
    else:
        base_count, delta_count = 49_500, 500
        sweep = [50, 100, 250, 500]
        rates = [100, 250, 500, 1000]

    print(f"gate: base={base_count} delta={delta_count} ks={KS}", flush=True)
    gate = bench_gate(base_count, delta_count)
    print(
        f"  fold {gate['fold_seconds']:.3f}s vs full "
        f"{gate['full_rebuild_seconds']:.3f}s -> {gate['speedup']:.1f}x "
        f"(window {gate['fold_report']['window_fraction']:.3f})",
        flush=True,
    )

    print("delta sweep:", flush=True)
    sweep_rows = bench_delta_sweep(gate, sweep)
    for row in sweep_rows:
        print(f"  {row['delta_edges']:>5} edges: {row['fold_seconds']:.3f}s",
              flush=True)

    print("sustained append+refresh:", flush=True)
    sustained_rows = bench_sustained(gate, rates)
    for row in sustained_rows:
        if "summary" in row:
            continue
        print(
            f"  rate {row['append_rate_edges']:>5}: {row['mode']} in "
            f"{row['refresh_seconds']:.3f}s "
            f"({row['sustainable_edges_per_second']:.0f} edges/s)",
            flush=True,
        )

    gate.pop("stream")
    payload = {
        "bench": "pr10_incremental",
        "mode": "smoke" if args.smoke else "full",
        "gate": gate,
        "delta_sweep": sweep_rows,
        "sustained": sustained_rows,
    }
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}", flush=True)

    if gate["speedup"] < GATE_SPEEDUP:
        print(
            f"GATE FAILED: speedup {gate['speedup']:.2f}x < {GATE_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"gate passed: {gate['speedup']:.1f}x >= {GATE_SPEEDUP}x", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
