"""Ablation A — Algorithm 5's linked-list maintenance vs re-sorting.

Quantifies the contribution of the O(|L \\ L'|) incremental window-order
update: the ablated variant rebuilds and re-sorts L_ts per start time.
"""

from __future__ import annotations

from repro.bench.ablations import enumerate_resort_per_start
from repro.bench.workloads import build_workload
from repro.core.coretime import compute_core_times
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset


def _cm_setup():
    graph = load_dataset("CM")
    workload = build_workload(graph, "CM", num_queries=1, seed=23)
    ts, te = workload.ranges[0]
    skyline = compute_core_times(graph, workload.k, ts, te).ecs
    return graph, workload.k, ts, te, skyline


def test_enum_linkedlist(benchmark):
    graph, k, ts, te, skyline = _cm_setup()
    result = benchmark(
        enumerate_temporal_kcores, graph, k, ts, te, skyline=skyline, collect=False
    )
    assert result.num_results > 0


def test_enum_resort_ablation(benchmark):
    graph, k, ts, te, skyline = _cm_setup()
    result = benchmark(
        enumerate_resort_per_start, graph, k, ts, te, skyline=skyline, collect=False
    )
    assert result.num_results > 0


def test_ablation_outputs_identical():
    graph, k, ts, te, skyline = _cm_setup()
    fast = enumerate_temporal_kcores(graph, k, ts, te, skyline=skyline)
    slow = enumerate_resort_per_start(graph, k, ts, te, skyline=skyline)
    assert fast.edge_sets() == slow.edge_sets()
