"""Shared fixtures for the figure-regeneration benchmark suite.

Every ``bench_*`` file regenerates one of the paper's tables or figures.
The rendered report is written to ``benchmarks/reports/<name>.txt`` and
echoed to stdout (visible with ``pytest -s``), so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
paper-shaped tables on disk.

Set ``REPRO_BENCH_PROFILE=full`` for the paper-strength sweep (more
queries per point, longer per-query time limits).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.experiments import BenchProfile

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    return BenchProfile.from_env()


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered experiment report and echo it."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = REPORT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[report saved to {os.fspath(path)}]")

    return _save
