"""Scalability sweep — runtime vs graph size at fixed shape.

Complements the paper's figures: Enum+CoreTime should scale roughly with
the result mass while OTCD's gap widens super-linearly with size.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.bench.scalability import (
    SCALE_HEADERS,
    run_scalability_sweep,
    scaled_config,
)
from repro.graph.generators import generate_bursty


def test_scaled_config_grows_linearly():
    small, big = scaled_config(1), scaled_config(4)
    assert big.total_edges() == 4 * small.total_edges()
    assert big.tmax == 4 * small.tmax


def test_scalability_sweep(benchmark, save_report, profile):
    def run():
        points = run_scalability_sweep(
            factors=(1, 2, 4),
            num_queries=profile.num_queries,
            timeout=profile.timeout,
            seed=profile.seed,
        )
        return format_table(
            SCALE_HEADERS,
            [p.as_row() for p in points],
            title="Scalability - runtime vs graph size (fixed density)",
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("scalability", report)


def test_generation_cost_scales(benchmark):
    graph = benchmark(generate_bursty, scaled_config(2))
    assert graph.num_edges == scaled_config(2).total_edges()
