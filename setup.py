"""Legacy setup shim: lets `pip install -e .` work offline (no wheel pkg)."""
from setuptools import setup

setup()
