"""Burst triage: from hundreds of raw cores to an analyst-sized list.

Real queries return far more temporal k-cores than anyone reads
(Figure 9: up to 10^9).  This example runs a default-parameter query on
a registry dataset and walks the `repro.analysis` triage pipeline:

1. summarise the raw result stream;
2. collapse cores into *community bursts* (distinct actor sets, each
   with its tightest active window);
3. filter to tight, sizeable bursts;
4. rank the recurring actors.

Run:  python examples/burst_triage.py
"""

from __future__ import annotations

from repro.analysis import (
    community_bursts,
    filter_bursts,
    summarize,
    vertex_participation,
    window_width_histogram,
)
from repro.bench.workloads import build_workload
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset
from repro.datasets.stats import compute_stats

DATASET = "MC"  # the Mooc analogue


def main() -> None:
    graph = load_dataset(DATASET)
    stats = compute_stats(graph)
    workload = build_workload(graph, DATASET, num_queries=1, seed=3, stats=stats)
    ts, te = workload.ranges[0]
    k = workload.k
    print(f"Dataset {DATASET}: {graph}")
    print(f"Query: k={k}, range=[{ts}, {te}] "
          f"({workload.width} of {stats.tmax} timestamps)\n")

    result = enumerate_temporal_kcores(graph, k, ts, te)

    # 1. Raw stream summary.
    summary = summarize(result)
    print(f"Raw results: {summary.num_results} cores, "
          f"{summary.total_edges} edges total")
    print(f"  core sizes: {summary.min_edges}..{summary.max_edges} "
          f"(mean {summary.mean_edges:.1f})")
    print(f"  TTI widths: {summary.min_window}..{summary.max_window} "
          f"(mean {summary.mean_window:.1f})")
    histogram = window_width_histogram(result)
    tight = sum(count for width, count in histogram.items() if width <= 10)
    print(f"  {tight} cores have windows of <= 10 timestamps\n")

    # 2. Collapse to communities.
    bursts = community_bursts(graph, result)
    print(f"Distinct communities: {len(bursts)} "
          f"({result.num_results / max(1, len(bursts)):.1f} cores each on average)")

    # 3. Triage: sizeable groups in tight windows.
    interesting = filter_bursts(bursts, min_vertices=8, max_width=60)
    print(f"Triage (>= 8 actors, window <= 60): {len(interesting)} bursts")
    for burst in interesting[:6]:
        lo, hi = burst.tightest_tti
        print(f"  {len(burst.vertices):>3} actors, window [{lo}, {hi}] "
              f"(width {burst.width}), seen {burst.num_occurrences}x")

    # 4. Recurring actors.
    print("\nMost persistent actors (top 5):")
    for label, count in vertex_participation(graph, result, top=5):
        print(f"  vertex {label}: appears in {count} cores")


if __name__ == "__main__":
    main()
