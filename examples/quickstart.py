"""Quickstart: temporal k-core enumeration on the paper's running example.

Builds the 9-vertex temporal graph of Figure 1, asks for all temporal
2-cores in the query range [1, 4] (the paper's Example 1), and walks
through the lower-level artefacts: vertex core times (Table I) and the
edge core window skyline (Table II).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import TemporalGraph, TimeRangeCoreQuery, compute_core_times

EDGES = [
    ("v2", "v9", 1), ("v1", "v4", 2), ("v2", "v3", 2), ("v1", "v2", 3),
    ("v2", "v4", 3), ("v3", "v9", 4), ("v4", "v8", 4), ("v1", "v6", 5),
    ("v1", "v7", 5), ("v2", "v8", 5), ("v6", "v7", 5), ("v1", "v3", 6),
    ("v3", "v5", 6), ("v1", "v5", 7),
]


def main() -> None:
    graph = TemporalGraph(EDGES)
    print(f"Graph: {graph}")

    # --- The headline query: every temporal 2-core in [1, 4] -----------
    query = TimeRangeCoreQuery(graph, k=2, time_range=(1, 4))
    result = query.run()
    print(f"\nTemporal 2-cores in range [1, 4]: {result.num_results}")
    for core in result:
        vertices = sorted(core.vertex_labels(graph))
        print(f"  TTI {core.tti}: vertices {vertices}, {core.num_edges} edges")
        for u, v, t in sorted(core.edge_triples(graph), key=lambda e: e[2]):
            print(f"     ({u}, {v}) @ t={t}")

    # --- Vertex core times (Definition 4 / Table I) --------------------
    core_times = compute_core_times(graph, k=2)
    v1 = graph.id_of("v1")
    print("\nCore times of v1 (earliest end time per start time):")
    for start, ct in core_times.vct.entries_of(v1):
        print(f"  from ts={start}: CT = {ct if ct is not None else 'infinite'}")

    # --- Minimal core windows (Definition 5 / Table II) ----------------
    print("\nMinimal core windows of each edge (the ECS):")
    for eid, (u, v, t) in enumerate(graph.edges):
        windows = core_times.ecs.windows_of(eid)
        if windows:
            rendered = ", ".join(f"[{a}, {b}]" for a, b in windows)
            print(f"  ({graph.label_of(u)}, {graph.label_of(v)}, {t}): {rendered}")

    # --- Alternative engines agree --------------------------------------
    for engine in ("enumbase", "otcd", "bruteforce"):
        other = TimeRangeCoreQuery(
            graph, k=2, time_range=(1, 4), engine=engine
        ).run()
        assert other.edge_sets() == result.edge_sets()
    print("\nAll four engines (enum, enumbase, otcd, bruteforce) agree.")


if __name__ == "__main__":
    main()
