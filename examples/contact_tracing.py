"""Contact tracing: fleeting high-risk clusters in proximity streams.

The paper's second motivating scenario (Section I): during an outbreak,
"transmission clusters may emerge and dissipate rapidly over short and
irregular timeframes", so health authorities need *every* window's dense
contact cluster, not just daily snapshots.

This example simulates a proximity-contact stream (a workplace with a
canteen rush and an evening event), enumerates temporal k-cores to find
high-risk exposure clusters, and uses the index-reuse API
(:class:`repro.CoreIndex`) to answer several follow-up investigations
without recomputing anything.

Run:  python examples/contact_tracing.py
"""

from __future__ import annotations

import numpy as np

from repro import CoreIndex, TemporalGraph

PEOPLE = 150
MINUTES = 16 * 60  # a 16-hour observed day, minute resolution
BACKGROUND_CONTACTS = 2_000
SEED = 11


def synthesize_contacts() -> tuple[TemporalGraph, dict[str, tuple[int, int]]]:
    rng = np.random.default_rng(SEED)
    edges: list[tuple[str, str, int]] = []
    for _ in range(BACKGROUND_CONTACTS):
        a, b = rng.choice(PEOPLE, size=2, replace=False)
        edges.append((f"p{a}", f"p{b}", int(rng.integers(1, MINUTES + 1))))

    events: dict[str, tuple[int, int]] = {}
    # Canteen rush: 25 people mixing intensively for 40 minutes.
    lunch = (12 * 60, 12 * 60 + 39)
    events["canteen-rush"] = lunch
    group = rng.choice(PEOPLE, size=25, replace=False)
    for _ in range(420):
        i, j = rng.choice(25, size=2, replace=False)
        edges.append((f"p{group[i]}", f"p{group[j]}",
                      int(rng.integers(lunch[0], lunch[1] + 1))))
    # Evening event: 12 people, 90 minutes.
    evening = (15 * 60, 15 * 60 + 89)
    events["evening-event"] = evening
    group = rng.choice(PEOPLE, size=12, replace=False)
    for _ in range(180):
        i, j = rng.choice(12, size=2, replace=False)
        edges.append((f"p{group[i]}", f"p{group[j]}",
                      int(rng.integers(evening[0], evening[1] + 1))))
    return TemporalGraph(edges), events


def main() -> None:
    graph, events = synthesize_contacts()
    k = 5  # "high-risk" = everyone met at least 5 distinct others
    print(f"Contact stream: {graph}; planted events: {events}\n")

    # Build the index once; investigators then probe arbitrary ranges.
    index = CoreIndex(graph, k)
    print(f"Index built: |VCT| = {index.vct.size()}, "
          f"|ECS| = {index.ecs.size()} minimal core windows\n")

    # Investigation 1: the whole day.
    day = index.query(1, graph.tmax)
    clusters: dict[frozenset[str], tuple[int, int]] = {}
    for core in day:
        members = frozenset(core.vertex_labels(graph))
        if members not in clusters or (
            core.tti[1] - core.tti[0]
            < clusters[members][1] - clusters[members][0]
        ):
            clusters[members] = core.tti
    print(f"Whole-day sweep: {day.num_results} temporal {k}-cores, "
          f"{len(clusters)} distinct exposure clusters")
    recovered = set()
    shown = 0
    for members, tti in sorted(
        clusters.items(), key=lambda kv: kv[1][1] - kv[1][0]
    ):
        lo = graph.raw_time_of(tti[0])
        hi = graph.raw_time_of(tti[1])
        for name, (elo, ehi) in events.items():
            if elo <= lo and hi <= ehi:
                recovered.add(name)
        if shown < 8:  # the tightest clusters are the interesting ones
            print(f"  cluster of {len(members):>2} people, minutes {lo}..{hi}")
            shown += 1
    if len(clusters) > shown:
        print(f"  ... and {len(clusters) - shown} looser clusters")
    print(f"Recovered events: {sorted(recovered)}\n")
    assert recovered == set(events)

    # Investigation 2: only the afternoon (no recomputation).
    afternoon_lo = graph.normalized_time_of(
        min(t for t in (graph.raw_time_of(i) for i in range(1, graph.tmax + 1))
            if t >= 13 * 60)
    )
    afternoon = index.query(afternoon_lo, graph.tmax)
    print(f"Afternoon-only query (index reuse): {afternoon.num_results} cores")

    # Investigation 3: was a specific person exposed, and when?
    person = sorted(clusters)[0]
    someone = sorted(person)[0]
    exposures = [
        core.tti for core in day
        if someone in core.vertex_labels(graph)
    ]
    print(f"Exposure windows of {someone}: "
          f"{sorted(set(exposures))[:5]}{'...' if len(exposures) > 5 else ''}")


if __name__ == "__main__":
    main()
