"""Misinformation campaigns: coordinated bursts at unknown time scales.

Section I of the paper argues that coordinated misinformation campaigns
"unfold in bursts over varying time scales" and that *enumerating all*
temporal k-cores — rather than querying one pre-defined window — is what
catches bursts whose duration is unknown in advance.

This example plants three bot bursts of different durations (a 2-hour
flash, a half-day push, a 3-day slow burn) in an interaction stream,
then shows that:

1. a single-window query at the "wrong" granularity misses some bursts;
2. exhaustive enumeration finds all three, each at its own TTI.

Run:  python examples/misinformation_bursts.py
"""

from __future__ import annotations

import numpy as np

from repro import TemporalGraph, TimeRangeCoreQuery
from repro.baselines.historical import historical_core_vertices
from repro.core.coretime import compute_vertex_core_times

HOURS = 24 * 14  # two weeks of hourly resolution
USERS = 300
ORGANIC_INTERACTIONS = 2_500
SEED = 7


def synthesize_stream() -> tuple[TemporalGraph, dict[str, tuple[int, int]]]:
    rng = np.random.default_rng(SEED)
    edges: list[tuple[str, str, int]] = []
    for _ in range(ORGANIC_INTERACTIONS):
        a, b = rng.choice(USERS, size=2, replace=False)
        edges.append((f"user{a}", f"user{b}", int(rng.integers(1, HOURS + 1))))

    bursts: dict[str, tuple[int, int]] = {}
    specs = [
        ("flash-mob", 2, 6, 60),      # 2 hours, 6 bots, 60 interactions
        ("half-day-push", 12, 8, 90),
        ("slow-burn", 72, 9, 110),
    ]
    start = 50
    for name, duration, size, volume in specs:
        members = rng.choice(USERS, size=size, replace=False)
        bursts[name] = (start, start + duration - 1)
        labels = [f"user{m}" for m in members]
        for _ in range(volume):
            i, j = rng.choice(size, size=2, replace=False)
            hour = int(rng.integers(start, start + duration))
            edges.append((labels[i], labels[j], hour))
        start += duration + 90
    return TemporalGraph(edges), bursts


def main() -> None:
    graph, bursts = synthesize_stream()
    k = 4
    print(f"Interaction stream: {graph}; planted bursts: {bursts}\n")

    # --- Naive single-window scan at fixed 24h granularity -------------
    # (what a dashboard with daily buckets would do)
    vct = compute_vertex_core_times(graph, k)
    found_daily = 0
    day_hits: list[tuple[int, int]] = []
    for day_start in range(1, graph.tmax - 23, 24):
        members = historical_core_vertices(graph, vct, day_start, day_start + 23)
        if members:
            found_daily += 1
            day_hits.append((day_start, day_start + 23))
    print(f"Fixed 24h windows with a {k}-core: {found_daily} "
          f"(at {day_hits})")

    # --- Exhaustive enumeration -----------------------------------------
    result = TimeRangeCoreQuery(graph, k=k).run()
    print(f"\nExhaustive enumeration: {result.num_results} temporal "
          f"{k}-cores across all windows")

    # Tightest burst per user community.
    tightest: dict[frozenset[str], tuple[int, int]] = {}
    for core in result:
        community = frozenset(core.vertex_labels(graph))
        if community not in tightest or (
            core.tti[1] - core.tti[0]
            < tightest[community][1] - tightest[community][0]
        ):
            tightest[community] = core.tti

    matched: set[str] = set()
    for community, tti in sorted(tightest.items(), key=lambda kv: kv[1]):
        span_hours = tti[1] - tti[0] + 1
        raw = (graph.raw_time_of(tti[0]), graph.raw_time_of(tti[1]))
        for name, (lo, hi) in bursts.items():
            if lo <= raw[0] and raw[1] <= hi + 1:
                matched.add(name)
                print(f"  burst '{name}': {len(community)} accounts, "
                      f"TTI hours {raw[0]}..{raw[1]} (~{span_hours}h)")
                break

    print(f"\nRecovered {len(matched)}/{len(bursts)} planted bursts: "
          f"{sorted(matched)}")
    assert matched == set(bursts), "enumeration should recover every burst"


if __name__ == "__main__":
    main()
