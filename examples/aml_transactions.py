"""Anti-money-laundering: dense transaction rings in time windows.

The paper's introduction motivates time-range k-core queries with
anti-money-laundering: "smurfing" rings move funds through many accounts
in short bursts, forming dense interaction clusters that exist only
inside narrow time windows and are invisible to whole-history analysis.

This example synthesises a transaction network with two planted smurfing
rings on top of legitimate traffic, then uses temporal k-core
enumeration to surface them — including the exact time window (the TTI)
of each burst, which whole-graph k-core analysis cannot provide.

Run:  python examples/aml_transactions.py
"""

from __future__ import annotations

import numpy as np

from repro import TemporalGraph, TimeRangeCoreQuery

NUM_ACCOUNTS = 400
NUM_DAYS = 180
LEGIT_TRANSFERS = 3_000
RING_SIZE = 7
RING_TRANSFERS = 90
SEED = 2026


def synthesize_network() -> tuple[TemporalGraph, list[set[str]]]:
    """Legitimate scatter traffic plus two short-lived smurfing rings."""
    rng = np.random.default_rng(SEED)
    edges: list[tuple[str, str, int]] = []

    # Legitimate transfers: random account pairs, uniform over the period.
    for _ in range(LEGIT_TRANSFERS):
        a, b = rng.choice(NUM_ACCOUNTS, size=2, replace=False)
        day = int(rng.integers(1, NUM_DAYS + 1))
        edges.append((f"acct{a}", f"acct{b}", day))

    # Two smurfing rings: dense pair-wise transfers within ~a week.
    rings: list[set[str]] = []
    for ring_index, start_day in ((0, 40), (1, 120)):
        members = rng.choice(NUM_ACCOUNTS, size=RING_SIZE, replace=False)
        ring = {f"acct{m}" for m in members}
        rings.append(ring)
        member_list = sorted(ring)
        for _ in range(RING_TRANSFERS):
            i, j = rng.choice(RING_SIZE, size=2, replace=False)
            day = int(rng.integers(start_day, start_day + 7))
            edges.append((member_list[i], member_list[j], day))
    return TemporalGraph(edges), rings


def main() -> None:
    graph, planted_rings = synthesize_network()
    print(f"Transaction network: {graph}")
    print(f"Planted rings: {[sorted(r)[:3] for r in planted_rings]} ... "
          f"({RING_SIZE} accounts each)\n")

    # Investigators scan the full period for account groups where every
    # member transacted with at least k=4 distinct peers inside some
    # window.  Legitimate scatter traffic never reaches that density.
    result = TimeRangeCoreQuery(graph, k=4, time_range=(1, graph.tmax)).run()
    print(f"Temporal 4-cores found: {result.num_results}")

    # Group findings by account set: one ring usually surfaces at
    # several nested TTIs as the window tightens around the burst.
    suspicious: dict[frozenset[str], list[tuple[int, int]]] = {}
    for core in result:
        accounts = frozenset(core.vertex_labels(graph))
        suspicious.setdefault(accounts, []).append(core.tti)

    detected: list[frozenset[str]] = []
    for accounts, ttis in sorted(suspicious.items(), key=lambda kv: min(kv[1])):
        first_tti = min(ttis)
        raw_window = (graph.raw_time_of(first_tti[0]), graph.raw_time_of(first_tti[1]))
        print(f"  ring of {len(accounts)} accounts, active days "
              f"{raw_window[0]}..{raw_window[1]}: {sorted(accounts)}")
        detected.append(accounts)

    # Score detection against the planted ground truth.
    hits = 0
    for ring in planted_rings:
        if any(accounts <= ring or ring <= accounts for accounts in detected):
            hits += 1
    print(f"\nDetected {hits}/{len(planted_rings)} planted rings.")
    assert hits == len(planted_rings), "expected both rings to surface"


if __name__ == "__main__":
    main()
