"""Engine comparison: reproduce the paper's performance story in miniature.

Runs all competitors — OTCD (the previous state of the art), EnumBase
(the skyline-driven baseline) and Enum (the paper's optimal algorithm) —
on one synthetic dataset from the registry, at growing query range
widths, printing a small version of the paper's Figures 6 and 8 plus the
memory comparison of Figure 12.

Run:  python examples/engine_comparison.py
"""

from __future__ import annotations

import time

from repro.baselines.otcd import enumerate_otcd
from repro.bench.memory import format_bytes, measure_peak_memory
from repro.bench.workloads import build_workload
from repro.core.coretime import compute_core_times
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.registry import load_dataset
from repro.datasets.stats import compute_stats

DATASET = "CM"  # the CollegeMsg analogue


def timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def main() -> None:
    graph = load_dataset(DATASET)
    stats = compute_stats(graph)
    print(f"Dataset {DATASET}: {graph} (kmax={stats.kmax})\n")

    print(f"{'range':>6} {'k':>3} {'#res':>7} {'CoreTime':>9} "
          f"{'Enum':>9} {'EnumBase':>9} {'OTCD':>9} {'speedup':>8}")
    for range_fraction in (0.05, 0.1, 0.2, 0.4):
        workload = build_workload(
            graph, DATASET, range_fraction=range_fraction, num_queries=1,
            seed=42, stats=stats,
        )
        ts, te = workload.ranges[0]
        k = workload.k

        core_times, t_ct = timed(compute_core_times, graph, k, ts, te)
        enum_result, t_enum = timed(
            enumerate_temporal_kcores, graph, k, ts, te,
            skyline=core_times.ecs, collect=False,
        )
        _, t_base = timed(
            enumerate_temporal_kcores_base, graph, k, ts, te,
            skyline=core_times.ecs, collect=False,
        )
        _, t_otcd = timed(enumerate_otcd, graph, k, ts, te, collect=False)
        speedup = t_otcd / (t_ct + t_enum)
        print(f"{int(range_fraction*100):>5}% {k:>3} "
              f"{enum_result.num_results:>7} {t_ct:>9.4f} {t_enum:>9.4f} "
              f"{t_base:>9.4f} {t_otcd:>9.4f} {speedup:>7.1f}x")

    # Peak memory at the default range (Figure 12's claim).
    workload = build_workload(graph, DATASET, num_queries=1, seed=42, stats=stats)
    ts, te = workload.ranges[0]
    k = workload.k
    print("\nPeak traced memory (default range, streaming outputs):")
    _, enum_peak = measure_peak_memory(
        lambda: enumerate_temporal_kcores(graph, k, ts, te, collect=False)
    )
    _, base_peak = measure_peak_memory(
        lambda: enumerate_temporal_kcores_base(graph, k, ts, te, collect=False)
    )
    _, otcd_peak = measure_peak_memory(
        lambda: enumerate_otcd(graph, k, ts, te, collect=False)
    )
    print(f"  Enum:     {format_bytes(enum_peak)}")
    print(f"  EnumBase: {format_bytes(base_peak)}  "
          f"({base_peak / max(1, enum_peak):.1f}x Enum)")
    print(f"  OTCD:     {format_bytes(otcd_peak)}  "
          f"({otcd_peak / max(1, enum_peak):.1f}x Enum)")


if __name__ == "__main__":
    main()
