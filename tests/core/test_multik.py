"""Shared-scan multi-k builds: equivalence, registry get_many, serving.

The acceptance property: :func:`compute_core_times_multi` must emit
VCT transition lists and ECS windows *identical* to one single-k
:func:`compute_core_times` run per ``k`` — and, transitively, to the
preserved dict-based reference kernel — for ``ks = {2, 3, 4, 5}`` on
the paper example and seeded random multigraphs, over the full span and
sub-windows.
"""

from __future__ import annotations

import pytest

import repro.core.index as index_module
from repro.core.coretime import compute_core_times
from repro.core.coretime_ref import compute_core_times_reference
from repro.core.index import CoreIndex, CoreIndexRegistry
from repro.core.multik import build_core_indexes, compute_core_times_multi
from repro.errors import InvalidParameterError
from repro.graph.generators import uniform_random_temporal
from repro.graph.temporal_graph import TemporalGraph


def assert_multi_identical(graph, ks, ts=None, te=None, *, oracle=False):
    """Multi-k output must equal per-k single builds entry-by-entry."""
    multi = compute_core_times_multi(graph, ks, ts, te)
    assert sorted(multi) == sorted(set(ks))
    for k in multi:
        single = compute_core_times(graph, k, ts, te)
        if oracle:
            reference = compute_core_times_reference(graph, k, ts, te)
        got = multi[k]
        assert got.vct.span == single.vct.span
        assert got.vct.size() == single.vct.size()
        for u in range(graph.num_vertices):
            expected = single.vct.entries_of(u)
            assert got.vct.entries_of(u) == expected, (k, u, ts, te)
            if oracle:
                assert reference.vct.entries_of(u) == expected, (k, u)
        assert got.ecs is not None and single.ecs is not None
        assert got.ecs.size() == single.ecs.size()
        for eid in range(graph.num_edges):
            expected = single.ecs.windows_of(eid)
            assert got.ecs.windows_of(eid) == expected, (k, eid, ts, te)
            if oracle:
                assert reference.ecs.windows_of(eid) == expected, (k, eid)


@pytest.fixture(params=range(6))
def property_graph(request) -> TemporalGraph:
    """Seeded random multigraphs, denser than the oracle fixtures."""
    return uniform_random_temporal(14, 110, tmax=16, seed=1000 + request.param)


class TestMultiKEquivalence:
    def test_acceptance_ks_2345_random(self, property_graph):
        """Acceptance: ks={2,3,4,5} bit-identical on generated graphs."""
        assert_multi_identical(property_graph, [2, 3, 4, 5], oracle=True)

    def test_acceptance_ks_2345_paper(self, paper_graph):
        """Acceptance: ks={2,3,4,5} bit-identical on the paper example."""
        assert_multi_identical(paper_graph, [2, 3, 4, 5], oracle=True)

    def test_includes_k1_and_sparse_k_sets(self, property_graph):
        assert_multi_identical(property_graph, [1, 3, 7])

    def test_subwindows(self, property_graph):
        tmax = property_graph.tmax
        for ts, te in [(2, tmax), (1, tmax - 2), (3, tmax - 3), (5, 9)]:
            assert_multi_identical(property_graph, [2, 3], ts, te)

    def test_duplicate_and_unordered_ks(self, paper_graph):
        multi = compute_core_times_multi(paper_graph, [5, 2, 2, 3, 5])
        assert sorted(multi) == [2, 3, 5]
        assert_multi_identical(paper_graph, [5, 2, 2, 3, 5])

    def test_single_k_delegates_to_single_kernel(self, paper_graph):
        multi = compute_core_times_multi(paper_graph, [2])
        single = compute_core_times(paper_graph, 2)
        for u in range(paper_graph.num_vertices):
            assert multi[2].vct.entries_of(u) == single.vct.entries_of(u)

    def test_without_skyline(self, paper_graph):
        multi = compute_core_times_multi(paper_graph, [2, 3], with_skyline=False)
        assert multi[2].ecs is None and multi[3].ecs is None
        single = compute_core_times(paper_graph, 3, with_skyline=False)
        for u in range(paper_graph.num_vertices):
            assert multi[3].vct.entries_of(u) == single.vct.entries_of(u)

    def test_dense_parallel_edges(self):
        triples = []
        for t in range(1, 8):
            triples += [("a", "b", t), ("b", "c", t), ("a", "c", t)] * 2
        assert_multi_identical(TemporalGraph(triples), [1, 2, 3], oracle=True)

    def test_k_above_max_degree(self, property_graph):
        multi = compute_core_times_multi(property_graph, [2, 50])
        assert multi[50].vct.size() == 0
        assert multi[50].ecs.size() == 0

    def test_validation(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            compute_core_times_multi(paper_graph, [])
        with pytest.raises(InvalidParameterError):
            compute_core_times_multi(paper_graph, [0, 2])
        with pytest.raises(InvalidParameterError):
            compute_core_times_multi(paper_graph, [2], 0, 99)


class TestBuildCoreIndexes:
    def test_builds_every_k(self, paper_graph):
        indexes = build_core_indexes(paper_graph, [2, 3, 4])
        assert sorted(indexes) == [2, 3, 4]
        for k, index in indexes.items():
            assert isinstance(index, CoreIndex)
            assert index.k == k and index.graph is paper_graph

    def test_queries_match_fresh_index(self, paper_graph):
        indexes = build_core_indexes(paper_graph, [2, 3])
        for k in (2, 3):
            fresh = CoreIndex(paper_graph, k)
            for ts, te in [(1, 7), (2, 4), (1, 4)]:
                assert indexes[k].query(ts, te).edge_sets() == fresh.query(
                    ts, te
                ).edge_sets()

    def test_store_hits_skip_compute(self, paper_graph, tmp_path, monkeypatch):
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        store.save_index(CoreIndex(paper_graph, 3), name="paper")

        def explode(*args, **kwargs):
            raise AssertionError("computed although the store holds every k")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        import repro.core.multik as multik_module

        monkeypatch.setattr(multik_module, "compute_core_times_multi", explode)
        indexes = build_core_indexes(paper_graph, [2, 3], store=store)
        assert sorted(indexes) == [2, 3]

    def test_partial_store_builds_only_missing(self, paper_graph, tmp_path):
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        indexes = build_core_indexes(paper_graph, [2, 3, 4], store=store)
        assert sorted(indexes) == [2, 3, 4]
        # The store only ever held k=2; nothing was written back.
        assert store.stored_ks("paper") == [2]

    def test_from_core_times_requires_skyline(self, paper_graph):
        result = compute_core_times(paper_graph, 2, with_skyline=False)
        with pytest.raises(InvalidParameterError):
            CoreIndex.from_core_times(paper_graph, 2, result)


class TestRegistryGetMany:
    def test_single_shared_build_for_all_misses(self, paper_graph):
        registry = CoreIndexRegistry(capacity=8)
        out = registry.get_many(paper_graph, [2, 3, 4])
        assert sorted(out) == [2, 3, 4]
        stats = registry.stats()
        assert stats["misses"] == 3
        assert stats["multik_builds"] == 1
        assert stats["multik_builds_by_k"] == {2: 1, 3: 1, 4: 1}

    def test_second_call_all_hits(self, paper_graph):
        registry = CoreIndexRegistry(capacity=8)
        first = registry.get_many(paper_graph, [2, 3])
        second = registry.get_many(paper_graph, [2, 3])
        assert first[2] is second[2] and first[3] is second[3]
        stats = registry.stats()
        assert stats["hits"] == 2 and stats["multik_builds"] == 1

    def test_get_and_get_many_share_entries(self, paper_graph):
        registry = CoreIndexRegistry(capacity=8)
        single = registry.get(paper_graph, 2)
        out = registry.get_many(paper_graph, [2, 3])
        assert out[2] is single

    def test_store_fallthrough_counts_per_k(self, paper_graph, tmp_path, monkeypatch):
        from repro.datasets.paper_example import paper_example_graph
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        store.save_index(CoreIndex(paper_graph, 3), name="paper")

        def explode(*args, **kwargs):
            raise AssertionError("warm path computed an index")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        registry = CoreIndexRegistry(capacity=8, store=store)
        fresh = paper_example_graph()  # equal content, different object
        out = registry.get_many(fresh, [2, 3])
        assert sorted(out) == [2, 3]
        stats = registry.stats()
        assert stats["store_hits"] == 2
        assert stats["store_hits_by_k"] == {2: 1, 3: 1}
        assert stats["multik_builds"] == 0
        assert stats["multik_builds_by_k"] == {}

    def test_mixed_store_and_build(self, paper_graph, tmp_path):
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        registry = CoreIndexRegistry(capacity=8, store=store)
        registry.get_many(paper_graph, [2, 3, 4])
        stats = registry.stats()
        assert stats["store_hits_by_k"] == {2: 1}
        assert stats["multik_builds_by_k"] == {3: 1, 4: 1}
        assert stats["multik_builds"] == 1

    def test_validation(self, paper_graph):
        registry = CoreIndexRegistry()
        with pytest.raises(InvalidParameterError):
            registry.get_many(paper_graph, [])
        with pytest.raises(InvalidParameterError):
            registry.get_many(paper_graph, [0])

    def test_answers_match_direct_engine(self, property_graph):
        registry = CoreIndexRegistry(capacity=8)
        out = registry.get_many(property_graph, [2, 3])
        for k in (2, 3):
            expected = compute_core_times(property_graph, k)
            for u in range(property_graph.num_vertices):
                assert out[k].vct.entries_of(u) == expected.vct.entries_of(u)


class TestRegistryEvictionUnderPressure:
    """Satellite: capacity < len(ks) must not thrash during get_many."""

    def test_single_build_populates_then_lru_evicts(self, paper_graph):
        registry = CoreIndexRegistry(capacity=2)
        out = registry.get_many(paper_graph, [2, 3, 4])
        # All three come back usable even though only two stay cached.
        assert sorted(out) == [2, 3, 4]
        stats = registry.stats()
        assert stats["multik_builds"] == 1  # one shared build, no thrash
        assert stats["size"] == 2
        # Insertion follows the requested order, so the LRU keeps the
        # last two deterministically.
        assert [k for (_gid, k) in registry._entries] == [3, 4]

    def test_evicted_k_rebuilds_on_next_call(self, paper_graph):
        registry = CoreIndexRegistry(capacity=2)
        registry.get_many(paper_graph, [2, 3, 4])
        out = registry.get_many(paper_graph, [2])  # evicted: miss again
        assert out[2].k == 2
        stats = registry.stats()
        assert stats["misses"] == 4
        assert stats["multik_builds"] == 2

    def test_requested_order_controls_survivors(self, paper_graph):
        registry = CoreIndexRegistry(capacity=2)
        registry.get_many(paper_graph, [4, 3, 2])
        assert [k for (_gid, k) in registry._entries] == [3, 2]


class TestRegistryWarmKs:
    @pytest.fixture()
    def populated(self, tmp_path, paper_graph):
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        return store

    def test_warm_builds_requested_missing_ks(self, populated):
        registry = CoreIndexRegistry(capacity=8)
        loaded = registry.warm(populated, ks=[2, 3])
        assert loaded == 2  # one loaded from disk + one built
        assert len(registry) == 2
        assert registry.stats()["multik_builds"] == 1

    def test_warm_without_ks_only_loads(self, populated):
        registry = CoreIndexRegistry(capacity=8)
        assert registry.warm(populated) == 1
        assert registry.stats()["multik_builds"] == 0

    def test_warm_gap_fill_uses_the_warmed_store(self, populated, tmp_path):
        """warm(B, ks=...) must not resolve gaps from the attached store."""
        from repro.datasets.paper_example import paper_example_graph
        from repro.store import IndexStore

        attached = IndexStore(tmp_path / "attached")
        attached.save_index(CoreIndex(paper_example_graph(), 3), name="paper")
        registry = CoreIndexRegistry(capacity=8, store=attached)
        registry.warm(populated, ks=[2, 3])  # k=3 absent from `populated`
        stats = registry.stats()
        # The gap was built, not served from the attached store.
        assert stats["store_hits"] == 0
        assert stats["multik_builds_by_k"] == {3: 1}

    def test_warm_counts_only_freshly_resolved_ks(self, populated):
        registry = CoreIndexRegistry(capacity=8)
        assert registry.warm(populated, ks=[2, 3]) == 2  # 1 load + 1 build
        # The gap-fill count derives from get_many misses, and cached
        # entries produce hits, not misses — so cached ks can never
        # inflate a warm count.
        graph = next(
            index.graph for (_gid, _k), index in registry._entries.items()
        )
        misses_before = registry.misses
        registry.get_many(graph, [2, 3])  # pure cache hits
        assert registry.misses == misses_before

    def test_warmed_ks_serve_without_compute(self, populated, monkeypatch):
        from repro.datasets.paper_example import paper_example_graph

        registry = CoreIndexRegistry(capacity=8, store=populated)
        registry.warm(ks=[2, 3])

        def explode(*args, **kwargs):
            raise AssertionError("served k recomputed after warm(ks=...)")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        # The same graph object warm() loaded is cached; an equal fresh
        # graph hits the store for stored ks.
        fresh = paper_example_graph()
        index = registry.get(fresh, 2)
        assert index.query(1, 4).num_results > 0
