"""Compiled flat-array CoreTime kernel vs the reference implementation.

Seeded property tests: on random multigraphs the vectorised kernel of
:mod:`repro.core.coretime` must emit *identical* VCT transition lists and
ECS windows to the preserved dict-based kernel of
:mod:`repro.core.coretime_ref`, over the full span and arbitrary
sub-windows; and every query engine (including the shared-index serving
path) must enumerate the same cores.
"""

from __future__ import annotations

import pytest

from repro.core.coretime import (
    compute_core_times,
    compute_vertex_core_times,
    core_time_by_rescan,
)
from repro.core.coretime_ref import (
    compute_core_times_reference,
    core_time_by_rescan_reference,
)
from repro.core.query import ENGINES, TimeRangeCoreQuery
from repro.graph.generators import uniform_random_temporal
from repro.graph.temporal_graph import TemporalGraph


def assert_identical(graph, k, ts=None, te=None):
    flat = compute_core_times(graph, k, ts, te)
    reference = compute_core_times_reference(graph, k, ts, te)
    assert flat.vct.span == reference.vct.span
    for u in range(graph.num_vertices):
        assert flat.vct.entries_of(u) == reference.vct.entries_of(u), (u, k, ts, te)
    assert flat.ecs is not None and reference.ecs is not None
    for eid in range(graph.num_edges):
        assert flat.ecs.windows_of(eid) == reference.ecs.windows_of(eid), (
            eid, k, ts, te,
        )


@pytest.fixture(params=range(6))
def property_graph(request) -> TemporalGraph:
    """Seeded random multigraphs, denser than the oracle fixtures."""
    return uniform_random_temporal(14, 110, tmax=16, seed=1000 + request.param)


class TestKernelEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_full_span_identical(self, property_graph, k):
        assert_identical(property_graph, k)

    @pytest.mark.parametrize("k", [2, 3])
    def test_subwindows_identical(self, property_graph, k):
        tmax = property_graph.tmax
        for ts, te in [(2, tmax), (1, tmax - 2), (3, tmax - 3), (5, 9), (4, 4)]:
            if 1 <= ts <= te <= tmax:
                assert_identical(property_graph, k, ts, te)

    def test_paper_graph_identical(self, paper_graph):
        for k in (1, 2, 3, 4):
            assert_identical(paper_graph, k)

    def test_rescan_matches_reference(self, property_graph):
        tmax = property_graph.tmax
        for k in (2, 3):
            for ts, te in [(1, tmax), (2, tmax - 1), (tmax // 2, tmax)]:
                assert core_time_by_rescan(
                    property_graph, k, ts, te
                ) == core_time_by_rescan_reference(property_graph, k, ts, te)

    def test_rescan_values_are_plain_ints(self, property_graph):
        cts = core_time_by_rescan(property_graph, 2, 1, property_graph.tmax)
        for u, ct in cts.items():
            assert type(u) is int and type(ct) is int

    def test_vct_entries_are_plain_ints(self, property_graph):
        vct = compute_vertex_core_times(property_graph, 2)
        for u in range(property_graph.num_vertices):
            for start, ct in vct.entries_of(u):
                assert type(start) is int
                assert ct is None or type(ct) is int


class TestEnginesAgree:
    @pytest.mark.parametrize("engine", [e for e in ENGINES if e != "enum"])
    def test_engine_matches_enum_on_random_graphs(self, property_graph, engine):
        tmax = property_graph.tmax
        for ts, te in [(1, tmax), (2, tmax - 2)]:
            expected = TimeRangeCoreQuery(
                property_graph, k=2, time_range=(ts, te), engine="enum"
            ).run()
            got = TimeRangeCoreQuery(
                property_graph, k=2, time_range=(ts, te), engine=engine
            ).run()
            assert got.edge_sets() == expected.edge_sets(), (engine, ts, te)

    def test_index_engine_reuses_cached_index(self, property_graph):
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=2)
        tmax = property_graph.tmax
        for ts, te in [(1, tmax), (2, tmax - 1), (1, tmax // 2)]:
            TimeRangeCoreQuery(
                property_graph,
                k=2,
                time_range=(ts, te),
                engine="index",
                registry=registry,
            ).run()
        assert registry.misses == 1
        assert registry.hits == 2


class TestMultigraphEdgeCases:
    def test_heavy_parallel_edges(self):
        triples = []
        for t in range(1, 8):
            triples += [("a", "b", t), ("b", "c", t), ("a", "c", t)] * 2
        graph = TemporalGraph(triples)
        for k in (1, 2, 3):
            assert_identical(graph, k)

    def test_disconnected_components(self):
        graph = TemporalGraph(
            [("a", "b", 1), ("b", "c", 2), ("a", "c", 3),
             ("x", "y", 4), ("y", "z", 5), ("x", "z", 6)]
        )
        for k in (1, 2):
            assert_identical(graph, k)

    def test_k_above_max_degree(self, property_graph):
        result = compute_core_times(property_graph, 50)
        assert result.vct.size() == 0
        assert result.ecs is not None and result.ecs.size() == 0
