"""Edge core window skylines: minimality, activation times, restriction."""

from __future__ import annotations

import pytest

from repro.core.coretime import compute_core_times
from repro.core.windows import EdgeCoreSkyline, build_active_windows
from repro.errors import InvalidParameterError
from repro.graph.validation import exact_core_edge_ids


def _skyline(graph, k):
    result = compute_core_times(graph, k)
    assert result.ecs is not None
    return result.ecs


class TestMinimality:
    """Every reported window satisfies Definition 5, verified by peeling."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_windows_are_core_windows(self, random_graph, k):
        skyline = _skyline(random_graph, k)
        for eid, (t1, t2) in skyline:
            core = exact_core_edge_ids(random_graph, k, t1, t2)
            assert eid in core, f"edge {eid} not in core of [{t1}, {t2}]"

    @pytest.mark.parametrize("k", [2, 3])
    def test_windows_are_minimal(self, random_graph, k):
        skyline = _skyline(random_graph, k)
        for eid, (t1, t2) in skyline:
            if t2 > t1:
                assert eid not in exact_core_edge_ids(random_graph, k, t1 + 1, t2)
                assert eid not in exact_core_edge_ids(random_graph, k, t1, t2 - 1)

    def test_completeness_against_bruteforce(self, random_graph):
        """Every brute-force-minimal window appears in the skyline."""
        k = 2
        skyline = _skyline(random_graph, k)
        tmax = random_graph.tmax
        for eid in range(random_graph.num_edges):
            expected = set()
            for t1 in range(1, tmax + 1):
                for t2 in range(t1, tmax + 1):
                    if eid not in exact_core_edge_ids(random_graph, k, t1, t2):
                        continue
                    sub_ok = (
                        t2 > t1
                        and (
                            eid in exact_core_edge_ids(random_graph, k, t1 + 1, t2)
                            or eid in exact_core_edge_ids(random_graph, k, t1, t2 - 1)
                        )
                    )
                    if not sub_ok:
                        expected.add((t1, t2))
            assert set(skyline.windows_of(eid)) == expected


class TestSkylineStructure:
    def test_invariant_check_passes(self, random_graph):
        _skyline(random_graph, 2).check_skyline_invariant()

    def test_window_contains_edge_timestamp(self, random_graph):
        skyline = _skyline(random_graph, 2)
        for eid, (t1, t2) in skyline:
            t = random_graph.edges[eid].t
            assert t1 <= t <= t2

    def test_size(self, paper_graph):
        skyline = _skyline(paper_graph, 2)
        from repro.datasets.paper_example import PAPER_ECS_K2

        assert skyline.size() == sum(len(w) for w in PAPER_ECS_K2.values())

    def test_invariant_catches_bad_span(self):
        skyline = EdgeCoreSkyline([((0, 2),)], 2, (1, 3))
        with pytest.raises(AssertionError):
            skyline.check_skyline_invariant()

    def test_invariant_catches_non_monotone(self):
        skyline = EdgeCoreSkyline([((1, 3), (2, 3))], 2, (1, 3))
        with pytest.raises(AssertionError):
            skyline.check_skyline_invariant()


class TestActiveWindows:
    def test_first_window_active_at_span_start(self, paper_graph):
        skyline = _skyline(paper_graph, 2)
        windows = build_active_windows(skyline, 1)
        by_edge: dict[int, list] = {}
        for w in windows:
            by_edge.setdefault(w.edge_id, []).append(w)
        for edge_windows in by_edge.values():
            assert edge_windows[0].active == 1

    def test_example6_active_time(self, paper_graph):
        """Example 6: window [3, 5] of edge (v1, v2, 3) activates at 3."""
        skyline = _skyline(paper_graph, 2)
        windows = build_active_windows(skyline, 1)
        eid = next(
            i for i, (u, v, t) in enumerate(paper_graph.edges)
            if {paper_graph.label_of(u), paper_graph.label_of(v)} == {"v1", "v2"}
        )
        target = [w for w in windows if w.edge_id == eid and (w.start, w.end) == (3, 5)]
        assert len(target) == 1
        assert target[0].active == 3

    def test_active_never_exceeds_start(self, random_graph):
        skyline = _skyline(random_graph, 2)
        for w in build_active_windows(skyline, 1):
            assert w.active <= w.start


class TestRestriction:
    def test_restricted_windows_inside_range(self, paper_graph):
        skyline = _skyline(paper_graph, 2)
        narrowed = skyline.restricted_to(2, 5)
        for _, (t1, t2) in narrowed:
            assert 2 <= t1 and t2 <= 5
        narrowed.check_skyline_invariant()

    def test_restriction_equals_fresh_computation(self, random_graph):
        whole = _skyline(random_graph, 2)
        tmax = random_graph.tmax
        ts, te = 2, max(2, tmax - 2)
        fresh = compute_core_times(random_graph, 2, ts, te).ecs
        narrowed = whole.restricted_to(ts, te)
        for eid in range(random_graph.num_edges):
            assert narrowed.windows_of(eid) == fresh.windows_of(eid)

    def test_restriction_outside_span_raises(self, paper_graph):
        skyline = _skyline(paper_graph, 2)
        with pytest.raises(InvalidParameterError):
            skyline.restricted_to(0, 5)
