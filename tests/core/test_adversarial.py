"""Adversarial graph structures and failure injection.

The pipeline is exercised on graph shapes engineered to stress specific
code paths: all edges on one timestamp (degenerate windows), long chains
of overlapping cliques (deep skylines), reappearing cores (core time
oscillation pressure), stars (instant peel-away), and deadline expiry
injected at every phase.
"""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.baselines.otcd import enumerate_otcd
from repro.core.coretime import compute_core_times
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.enumerate import enumerate_temporal_kcores
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.timing import Deadline


def _clique(labels, t):
    return [
        (labels[i], labels[j], t)
        for i in range(len(labels))
        for j in range(i + 1, len(labels))
    ]


def _assert_all_engines_match_oracle(graph, k):
    oracle = enumerate_bruteforce(graph, k)
    for runner in (
        enumerate_temporal_kcores,
        enumerate_temporal_kcores_base,
        enumerate_otcd,
    ):
        assert runner(graph, k).edge_sets() == oracle.edge_sets(), runner.__name__
    return oracle


class TestDegenerateShapes:
    def test_single_timestamp_everything(self):
        graph = TemporalGraph(_clique(list("abcde"), 1))
        oracle = _assert_all_engines_match_oracle(graph, 3)
        assert oracle.num_results == 1
        assert next(iter(oracle)).tti == (1, 1)

    def test_star_has_no_2core(self):
        graph = TemporalGraph([("hub", f"leaf{i}", i + 1) for i in range(8)])
        oracle = _assert_all_engines_match_oracle(graph, 2)
        assert oracle.num_results == 0
        assert compute_core_times(graph, 2).vct.size() == 0

    def test_disconnected_simultaneous_cliques(self):
        # Two vertex-disjoint triangles at the same time: they form ONE
        # temporal k-core under Definition 2 (a maximal subgraph can be
        # disconnected) with a shared TTI.
        graph = TemporalGraph(_clique(list("abc"), 1) + _clique(list("xyz"), 1))
        _assert_all_engines_match_oracle(graph, 2)

    def test_disconnected_staggered_cliques(self):
        graph = TemporalGraph(
            _clique(list("abc"), 1) + _clique(list("xyz"), 3)
        )
        oracle = _assert_all_engines_match_oracle(graph, 2)
        # Raw timestamps {1, 3} normalise to {1, 2}: the two isolated
        # triangles plus their disconnected union.
        assert set(oracle.by_tti()) == {(1, 1), (2, 2), (1, 2)}

    def test_path_graph_no_cores(self):
        graph = TemporalGraph([(i, i + 1, i + 1) for i in range(10)])
        oracle = _assert_all_engines_match_oracle(graph, 2)
        assert oracle.num_results == 0


class TestDeepSkylines:
    def test_chain_of_overlapping_cliques(self):
        """Rolling single-timestamp cliques: every edge's unique minimal
        window is its own timestamp, and unions of consecutive cliques
        appear as additional cores."""
        edges = []
        labels = [f"n{i}" for i in range(10)]
        for offset in range(6):
            edges += _clique(labels[offset : offset + 4], offset + 1)
        graph = TemporalGraph(edges)
        oracle = _assert_all_engines_match_oracle(graph, 3)
        assert oracle.num_results == 6 * 7 // 2  # every [a, b] is a TTI

    def test_edge_with_two_minimal_windows(self):
        """A temporal edge supported by two different triangles gets a
        two-window skyline, like (v2, v3, 2) in the paper's Table II."""
        edges = [
            ("a", "b", 2), ("b", "c", 3), ("a", "c", 4),  # triangle 1
            ("b", "d", 5), ("c", "d", 6),                 # triangle 2 via (b, c, 3)
        ]
        graph = TemporalGraph(edges)
        _assert_all_engines_match_oracle(graph, 2)
        skyline = compute_core_times(graph, 2).ecs
        bc = next(
            i for i, (u, v, t) in enumerate(graph.edges)
            if {graph.label_of(u), graph.label_of(v)} == {"b", "c"}
        )
        # Raw times 2..6 normalise to 1..5.
        assert skyline.windows_of(bc) == ((1, 3), (2, 5))

    def test_core_vanishes_and_returns(self):
        """The same vertex set forms a core, dissolves, and re-forms
        later: core times must jump across the gap."""
        edges = _clique(list("abc"), 1) + [("a", "x", 3)] + _clique(list("abc"), 5)
        graph = TemporalGraph(edges)
        oracle = _assert_all_engines_match_oracle(graph, 2)
        vct = compute_core_times(graph, 2).vct
        a = graph.id_of("a")
        assert vct.core_time(a, 1) == 1
        # Raw t=5 is the third distinct timestamp -> normalised 3.
        assert graph.normalized_time_of(5) == 3
        assert vct.core_time(a, 2) == 3
        # Note: both triangle instances have the same *vertex* set but
        # different edge sets, so both are reported.
        assert oracle.num_results >= 2

    def test_nested_windows_same_start(self):
        """Growing cliques from one start time: strictly nested cores."""
        edges = _clique(list("ab c".replace(" ", "")), 1)
        edges += [("a", "d", 2), ("b", "d", 2)]
        edges += [("c", "e", 3), ("d", "e", 3), ("a", "e", 3)]
        graph = TemporalGraph(edges)
        _assert_all_engines_match_oracle(graph, 2)


class TestFailureInjection:
    @pytest.fixture()
    def busy_graph(self):
        edges = []
        for offset in range(8):
            edges += _clique([f"v{offset + i}" for i in range(4)], offset + 1)
        return TemporalGraph(edges)

    @pytest.mark.parametrize(
        "runner",
        [
            enumerate_temporal_kcores,
            enumerate_temporal_kcores_base,
            enumerate_otcd,
            enumerate_bruteforce,
        ],
    )
    def test_expired_deadline_yields_partial_result(self, busy_graph, runner):
        result = runner(busy_graph, 2, deadline=Deadline(0.0))
        assert not result.completed
        assert result.num_results == 0

    @pytest.mark.parametrize(
        "runner",
        [
            enumerate_temporal_kcores,
            enumerate_temporal_kcores_base,
            enumerate_otcd,
            enumerate_bruteforce,
        ],
    )
    def test_generous_deadline_completes(self, busy_graph, runner):
        result = runner(busy_graph, 2, deadline=Deadline(60.0))
        assert result.completed
        assert result.num_results > 0

    def test_partial_results_are_valid_prefix(self, busy_graph):
        """Whatever a deadline-aborted run did report must be correct."""

        class _FlakyDeadline(Deadline):
            def __init__(self, allowed_checks: int):
                super().__init__(None)
                self.allowed = allowed_checks

            def expired(self) -> bool:  # fires after N checks
                self.allowed -= 1
                return self.allowed < 0

        full = enumerate_temporal_kcores(busy_graph, 2)
        partial = enumerate_temporal_kcores(
            busy_graph, 2, deadline=_FlakyDeadline(3)
        )
        assert not partial.completed
        assert partial.edge_sets() <= full.edge_sets()


class TestNumericEdges:
    def test_large_sparse_timestamps(self):
        # Raw timestamps in the billions (unix epochs) normalise cleanly.
        base = 1_700_000_000
        edges = [
            ("a", "b", base), ("b", "c", base + 86_400),
            ("a", "c", base + 172_800),
        ]
        graph = TemporalGraph(edges)
        assert graph.tmax == 3
        result = enumerate_temporal_kcores(graph, 2)
        assert result.num_results == 1
        assert graph.raw_time_of(result.cores[0].tti[1]) == base + 172_800

    def test_many_parallel_edges_single_pair(self):
        graph = TemporalGraph([("a", "b", t) for t in range(1, 30)])
        assert enumerate_temporal_kcores(graph, 2).num_results == 0
