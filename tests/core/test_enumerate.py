"""Enum (Algorithms 4-5): oracle equivalence, TTI correctness, modes."""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.core.coretime import compute_core_times
from repro.core.enumerate import enumerate_temporal_kcores
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validation import exact_core_edge_ids, tightest_time_interval
from repro.obs.timing import Deadline


class TestOracleEquivalence:
    @pytest.mark.parametrize("k", [2, 3])
    def test_full_span_equals_bruteforce(self, random_graph, k):
        ours = enumerate_temporal_kcores(random_graph, k)
        oracle = enumerate_bruteforce(random_graph, k)
        assert ours.edge_sets() == oracle.edge_sets()
        assert set(ours.by_tti()) == set(oracle.by_tti())

    def test_subranges_equal_bruteforce(self, random_graph):
        tmax = random_graph.tmax
        for ts, te in [(1, tmax // 2), (tmax // 3, tmax), (2, tmax - 1)]:
            if ts > te:
                continue
            ours = enumerate_temporal_kcores(random_graph, 2, ts, te)
            oracle = enumerate_bruteforce(random_graph, 2, ts, te)
            assert ours.edge_sets() == oracle.edge_sets(), (ts, te)

    def test_no_duplicate_results(self, random_graph):
        result = enumerate_temporal_kcores(random_graph, 2)
        assert len(result.edge_sets()) == result.num_results

    def test_reported_tti_is_genuine(self, random_graph):
        """Each result's TTI matches its edge span *and* its window core."""
        result = enumerate_temporal_kcores(random_graph, 2)
        for core in result:
            ts, te = core.tti
            assert tightest_time_interval(random_graph, set(core.edge_ids)) == (ts, te)
            assert set(core.edge_ids) == exact_core_edge_ids(random_graph, 2, ts, te)


class TestModes:
    def test_streaming_counters_match_collect(self, random_graph):
        collected = enumerate_temporal_kcores(random_graph, 2, collect=True)
        streamed = enumerate_temporal_kcores(random_graph, 2, collect=False)
        assert streamed.cores is None
        assert streamed.num_results == collected.num_results
        assert streamed.total_edges == collected.total_edges

    def test_total_edges_accounting(self, random_graph):
        result = enumerate_temporal_kcores(random_graph, 2)
        assert result.total_edges == sum(core.num_edges for core in result)

    def test_on_result_callback(self, paper_graph):
        seen: list[tuple[int, int, int]] = []

        def capture(ts, te, edges):
            seen.append((ts, te, len(edges)))

        result = enumerate_temporal_kcores(
            paper_graph, 2, 1, 4, collect=False, on_result=capture
        )
        assert len(seen) == result.num_results
        assert {(ts, te) for ts, te, _ in seen} == {(1, 4), (2, 3)}

    def test_callback_prefix_is_live(self, paper_graph):
        """The callback receives a growing prefix list (documented)."""
        snapshots: list[int] = []
        enumerate_temporal_kcores(
            paper_graph, 2, collect=False,
            on_result=lambda ts, te, edges: snapshots.append(len(edges)),
        )
        # Within one start time the prefix length never shrinks.
        assert snapshots  # non-empty on the example graph

    def test_uncollected_access_raises(self, paper_graph):
        result = enumerate_temporal_kcores(paper_graph, 2, collect=False)
        with pytest.raises(ValueError):
            result.edge_sets()
        with pytest.raises(ValueError):
            list(result)


class TestParameters:
    def test_precomputed_skyline_reuse(self, paper_graph):
        skyline = compute_core_times(paper_graph, 2, 1, 4).ecs
        result = enumerate_temporal_kcores(paper_graph, 2, 1, 4, skyline=skyline)
        fresh = enumerate_temporal_kcores(paper_graph, 2, 1, 4)
        assert result.edge_sets() == fresh.edge_sets()

    def test_mismatched_skyline_rejected(self, paper_graph):
        skyline = compute_core_times(paper_graph, 2, 1, 4).ecs
        with pytest.raises(InvalidParameterError):
            enumerate_temporal_kcores(paper_graph, 2, 1, 5, skyline=skyline)
        with pytest.raises(InvalidParameterError):
            enumerate_temporal_kcores(paper_graph, 3, 1, 4, skyline=skyline)

    def test_invalid_k_raises(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            enumerate_temporal_kcores(paper_graph, 0)

    def test_invalid_window_raises(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            enumerate_temporal_kcores(paper_graph, 2, 5, 3)

    def test_empty_result_when_k_too_large(self, paper_graph):
        result = enumerate_temporal_kcores(paper_graph, 9)
        assert result.num_results == 0
        assert result.cores is None or result.cores == []

    def test_single_timestamp_range(self, paper_graph):
        # t=5 has the v1-v6-v7 triangle: exactly one core.
        result = enumerate_temporal_kcores(paper_graph, 2, 5, 5)
        assert result.num_results == 1
        assert result.cores[0].tti == (5, 5)

    def test_deadline_aborts_cleanly(self, random_graph):
        result = enumerate_temporal_kcores(
            random_graph, 2, deadline=Deadline(0.0)
        )
        assert not result.completed

    def test_triangle_graph_single_core(self, triangle_graph):
        result = enumerate_temporal_kcores(triangle_graph, 2)
        assert result.num_results == 1
        assert result.cores[0].tti == (1, 3)
        assert result.cores[0].num_edges == 3


class TestMultiEdges:
    def test_parallel_edges_all_reported(self):
        g = TemporalGraph(
            [("a", "b", 1), ("a", "b", 2), ("b", "c", 2), ("a", "c", 2)]
        )
        result = enumerate_temporal_kcores(g, 2)
        oracle = enumerate_bruteforce(g, 2)
        assert result.edge_sets() == oracle.edge_sets()
        # The widest core includes both parallel (a, b) edges.
        largest = max(result, key=lambda c: c.num_edges)
        assert largest.num_edges == 4

    def test_duplicate_timestamp_pairs(self):
        g = TemporalGraph(
            [("a", "b", 1), ("a", "b", 1), ("b", "c", 1), ("a", "c", 1)]
        )
        result = enumerate_temporal_kcores(g, 2)
        oracle = enumerate_bruteforce(g, 2)
        assert result.edge_sets() == oracle.edge_sets()
