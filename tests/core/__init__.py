"""Test package."""
