"""CoreIndex: prebuilt-index queries vs fresh runs; serialisation."""

from __future__ import annotations

import pytest

from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.index import CoreIndex, load_skyline
from repro.errors import InvalidParameterError


class TestIndexQueries:
    def test_every_subrange_matches_fresh(self, paper_graph):
        index = CoreIndex(paper_graph, 2)
        tmax = paper_graph.tmax
        for ts in range(1, tmax + 1):
            for te in range(ts, tmax + 1):
                via_index = index.query(ts, te)
                fresh = enumerate_temporal_kcores(paper_graph, 2, ts, te)
                assert via_index.edge_sets() == fresh.edge_sets(), (ts, te)

    def test_random_graph_subranges(self, random_graph):
        index = CoreIndex(random_graph, 2)
        tmax = random_graph.tmax
        for ts, te in [(1, tmax), (2, tmax - 1), (tmax // 2, tmax)]:
            if ts > te:
                continue
            assert (
                index.query(ts, te).edge_sets()
                == enumerate_temporal_kcores(random_graph, 2, ts, te).edge_sets()
            )

    def test_historical_core(self, paper_graph):
        index = CoreIndex(paper_graph, 2)
        members = index.historical_core(1, 4)
        assert {paper_graph.label_of(u) for u in members} == {
            "v1", "v2", "v3", "v4", "v9",
        }

    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            CoreIndex(paper_graph, 0)

    def test_streaming_query(self, paper_graph):
        index = CoreIndex(paper_graph, 2)
        result = index.query(1, 7, collect=False)
        assert result.cores is None
        assert result.num_results == 13


class TestSerialisation:
    def test_round_trip(self, paper_graph):
        index = CoreIndex(paper_graph, 2)
        text = index.dumps_skyline()
        loaded = load_skyline(text)
        assert loaded.k == index.ecs.k
        assert loaded.span == index.ecs.span
        for eid in range(paper_graph.num_edges):
            assert loaded.windows_of(eid) == index.ecs.windows_of(eid)

    def test_file_round_trip(self, tmp_path, paper_graph):
        index = CoreIndex(paper_graph, 2)
        path = tmp_path / "skyline.txt"
        index.dump_skyline(path)
        loaded = load_skyline(path.read_text())
        assert loaded.size() == index.ecs.size()

    def test_loaded_skyline_usable_for_queries(self, paper_graph):
        index = CoreIndex(paper_graph, 2)
        loaded = load_skyline(index.dumps_skyline())
        result = enumerate_temporal_kcores(paper_graph, 2, skyline=loaded)
        assert result.num_results == 13

    def test_reject_garbage(self):
        with pytest.raises(InvalidParameterError):
            load_skyline("not a skyline")


class TestSkylineValidation:
    """The parser rejects payloads that disagree with their header."""

    HEADER = "# ecs k=2 span=1,5 edges=3\n"

    def test_edge_id_beyond_declared_count(self):
        with pytest.raises(InvalidParameterError, match="line 2.*edge 7"):
            load_skyline(self.HEADER + "7: 1,2\n")

    def test_window_outside_span(self):
        with pytest.raises(InvalidParameterError, match="line 3.*outside span"):
            load_skyline(self.HEADER + "0: 1,2\n1: 2,9\n")

    def test_inverted_window(self):
        with pytest.raises(InvalidParameterError, match="line 2"):
            load_skyline(self.HEADER + "0: 4,2\n")

    def test_malformed_token(self):
        with pytest.raises(InvalidParameterError, match="line 2.*malformed"):
            load_skyline(self.HEADER + "0: 1-2\n")

    def test_non_integer_edge_id(self):
        with pytest.raises(InvalidParameterError, match="line 2.*not an integer"):
            load_skyline(self.HEADER + "x: 1,2\n")

    def test_duplicate_edge_line(self):
        with pytest.raises(InvalidParameterError, match="line 3.*twice"):
            load_skyline(self.HEADER + "0: 1,2\n0: 2,3\n")

    def test_missing_separator(self):
        with pytest.raises(InvalidParameterError, match="line 2.*':'"):
            load_skyline(self.HEADER + "0 1,2\n")

    def test_malformed_header_values(self):
        with pytest.raises(InvalidParameterError, match="header"):
            load_skyline("# ecs k=2 span=oops edges=3\n")

    def test_comments_and_blanks_skipped(self):
        loaded = load_skyline(self.HEADER + "\n# comment\n0: 1,2\n")
        assert loaded.windows_of(0) == ((1, 2),)


class TestVctSerialisation:
    def test_round_trip(self, paper_graph):
        from repro.core.index import load_vct

        index = CoreIndex(paper_graph, 2)
        loaded = load_vct(index.dumps_vct())
        assert loaded.k == 2
        assert loaded.span == index.vct.span
        for u in range(paper_graph.num_vertices):
            assert loaded.entries_of(u) == index.vct.entries_of(u)

    def test_infinite_entries_survive(self, paper_graph):
        from repro.core.index import load_vct

        index = CoreIndex(paper_graph, 2)
        loaded = load_vct(index.dumps_vct())
        v9 = paper_graph.id_of("v9")
        assert loaded.core_time(v9, 2) is None
        assert loaded.core_time(v9, 1) == 4

    def test_loaded_vct_answers_queries(self, random_graph):
        from repro.core.index import load_vct

        index = CoreIndex(random_graph, 2)
        loaded = load_vct(index.dumps_vct())
        for ts in range(1, random_graph.tmax + 1):
            for u in range(random_graph.num_vertices):
                assert loaded.core_time(u, ts) == index.vct.core_time(u, ts)

    def test_reject_garbage(self):
        from repro.core.index import load_vct

        with pytest.raises(InvalidParameterError):
            load_vct("nope")


class TestVctValidation:
    """The parser rejects payloads that disagree with their header."""

    HEADER = "# vct k=2 span=1,5 vertices=4\n"

    def test_vertex_beyond_declared_count(self):
        from repro.core.index import load_vct

        with pytest.raises(InvalidParameterError, match="line 2.*vertex 9"):
            load_vct(self.HEADER + "9: 1,3\n")

    def test_start_outside_span(self):
        from repro.core.index import load_vct

        with pytest.raises(InvalidParameterError, match="line 2.*outside span"):
            load_vct(self.HEADER + "0: 7,7\n")

    def test_core_time_before_start(self):
        from repro.core.index import load_vct

        with pytest.raises(InvalidParameterError, match="line 2.*core time"):
            load_vct(self.HEADER + "0: 3,2\n")

    def test_malformed_entry(self):
        from repro.core.index import load_vct

        with pytest.raises(InvalidParameterError, match="line 3.*malformed"):
            load_vct(self.HEADER + "0: 1,3\n1: 1;3\n")

    def test_duplicate_vertex_line(self):
        from repro.core.index import load_vct

        with pytest.raises(InvalidParameterError, match="line 3.*twice"):
            load_vct(self.HEADER + "0: 1,3\n0: 2,4\n")

    def test_infinity_entries_still_accepted(self):
        from repro.core.index import load_vct

        loaded = load_vct(self.HEADER + "0: 1,inf\n")
        assert loaded.core_time(0, 1) is None


class TestCoreIndexRegistry:
    def test_hit_and_miss_counters(self, paper_graph):
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=4)
        first = registry.get(paper_graph, 2)
        second = registry.get(paper_graph, 2)
        assert first is second
        assert registry.stats() == {
            "hits": 1, "misses": 1, "store_hits": 0, "multik_builds": 0,
            "evict_spills": 0, "evict_drops": 0, "spill_policy": "always",
            "store_hits_by_k": {}, "multik_builds_by_k": {},
            "size": 1, "capacity": 4,
        }

    def test_distinct_k_are_distinct_entries(self, paper_graph):
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=4)
        assert registry.get(paper_graph, 2) is not registry.get(paper_graph, 3)
        assert len(registry) == 2

    def test_lru_eviction(self, paper_graph, triangle_graph):
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=2)
        a = registry.get(paper_graph, 2)
        b = registry.get(triangle_graph, 2)
        registry.get(paper_graph, 2)  # refresh a
        registry.get(paper_graph, 3)  # evicts b (least recently used)
        assert len(registry) == 2
        assert registry.get(paper_graph, 2) is a
        assert registry.get(triangle_graph, 2) is not b  # rebuilt after eviction

    def test_identity_keying_rejects_stale_graph(self, paper_graph):
        from repro.core.index import CoreIndexRegistry
        from repro.datasets.paper_example import paper_example_graph

        registry = CoreIndexRegistry(capacity=2)
        registry.get(paper_graph, 2)
        other = paper_example_graph()  # equal content, different object
        built = registry.get(other, 2)
        assert built.graph is other
        assert registry.misses == 2

    def test_invalid_capacity(self):
        from repro.core.index import CoreIndexRegistry

        with pytest.raises(InvalidParameterError):
            CoreIndexRegistry(capacity=0)

    def test_default_registry_helper(self, paper_graph):
        from repro.core.index import CoreIndexRegistry, get_core_index

        registry = CoreIndexRegistry(capacity=1)
        index = get_core_index(paper_graph, 2, registry=registry)
        assert get_core_index(paper_graph, 2, registry=registry) is index

    def test_clear_drops_entries(self, paper_graph):
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=2)
        registry.get(paper_graph, 2)
        registry.clear()
        assert len(registry) == 0
