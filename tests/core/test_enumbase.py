"""EnumBase (Algorithm 3): equivalence with Enum and the oracle."""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.core.coretime import compute_core_times
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.enumerate import enumerate_temporal_kcores
from repro.errors import InvalidParameterError
from repro.obs.timing import Deadline


class TestEquivalence:
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_oracle(self, random_graph, k):
        base = enumerate_temporal_kcores_base(random_graph, k)
        oracle = enumerate_bruteforce(random_graph, k)
        assert base.edge_sets() == oracle.edge_sets()

    def test_matches_enum_with_ttis(self, random_graph):
        base = enumerate_temporal_kcores_base(random_graph, 2)
        enum = enumerate_temporal_kcores(random_graph, 2)
        assert base.edge_sets() == enum.edge_sets()
        assert set(base.by_tti()) == set(enum.by_tti())

    def test_subrange(self, paper_graph):
        base = enumerate_temporal_kcores_base(paper_graph, 2, 1, 4)
        assert set(base.by_tti()) == {(1, 4), (2, 3)}

    def test_no_duplicates(self, random_graph):
        base = enumerate_temporal_kcores_base(random_graph, 2)
        assert len(base.edge_sets()) == base.num_results


class TestModes:
    def test_streaming_counts(self, random_graph):
        collected = enumerate_temporal_kcores_base(random_graph, 2)
        streamed = enumerate_temporal_kcores_base(random_graph, 2, collect=False)
        assert streamed.num_results == collected.num_results
        assert streamed.total_edges == collected.total_edges

    def test_precomputed_skyline(self, paper_graph):
        skyline = compute_core_times(paper_graph, 2).ecs
        result = enumerate_temporal_kcores_base(paper_graph, 2, skyline=skyline)
        assert result.num_results == 13

    def test_mismatched_skyline_rejected(self, paper_graph):
        skyline = compute_core_times(paper_graph, 2, 1, 4).ecs
        with pytest.raises(InvalidParameterError):
            enumerate_temporal_kcores_base(paper_graph, 2, skyline=skyline)

    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            enumerate_temporal_kcores_base(paper_graph, -1)

    def test_deadline(self, random_graph):
        result = enumerate_temporal_kcores_base(
            random_graph, 2, deadline=Deadline(0.0)
        )
        assert not result.completed

    def test_algorithm_label(self, paper_graph):
        assert enumerate_temporal_kcores_base(paper_graph, 2).algorithm == "enumbase"


class TestMemoryBudget:
    def test_budget_exceeded_marks_incomplete(self, paper_graph):
        result = enumerate_temporal_kcores_base(
            paper_graph, 2, max_stored_edges=5
        )
        assert not result.completed
        assert result.num_results < 13

    def test_generous_budget_completes(self, paper_graph):
        result = enumerate_temporal_kcores_base(
            paper_graph, 2, max_stored_edges=10_000
        )
        assert result.completed
        assert result.num_results == 13

    def test_partial_output_is_valid_prefix(self, random_graph):
        full = enumerate_temporal_kcores_base(random_graph, 2)
        partial = enumerate_temporal_kcores_base(
            random_graph, 2, max_stored_edges=20
        )
        if not partial.completed:
            assert partial.edge_sets() <= full.edge_sets()
