"""Result containers: TemporalKCore and EnumerationResult."""

from __future__ import annotations

import pytest

from repro.core.results import EnumerationResult, TemporalKCore


class TestTemporalKCore:
    def test_basics(self, paper_graph):
        core = TemporalKCore((2, 3), (1, 3, 4))
        assert core.num_edges == 3
        assert core.edge_set() == frozenset({1, 3, 4})

    def test_edge_triples(self, paper_graph):
        core = TemporalKCore((1, 1), (0,))
        triples = core.edge_triples(paper_graph)
        assert len(triples) == 1
        assert triples[0][2] == 1

    def test_vertices_and_labels(self, paper_graph):
        # Edge 0 is (v2, v9, 1).
        core = TemporalKCore((1, 1), (0,))
        labels = core.vertex_labels(paper_graph)
        assert labels == {"v2", "v9"}
        assert len(core.vertices(paper_graph)) == 2

    def test_frozen(self):
        core = TemporalKCore((1, 2), (0,))
        with pytest.raises(AttributeError):
            core.tti = (3, 4)  # type: ignore[misc]


class TestEnumerationResult:
    def test_record_collecting(self):
        result = EnumerationResult("x", 2, (1, 5))
        result.record(1, 3, [10, 11], collect=True)
        result.record(2, 4, [10, 11, 12], collect=True)
        assert result.num_results == 2
        assert result.total_edges == 5
        assert len(result) == 2
        assert [c.tti for c in result] == [(1, 3), (2, 4)]

    def test_record_copies_edge_list(self):
        result = EnumerationResult("x", 2, (1, 5))
        live = [1, 2]
        result.record(1, 2, live, collect=True)
        live.append(3)
        assert result.cores[0].edge_ids == (1, 2)

    def test_streaming_mode(self):
        result = EnumerationResult("x", 2, (1, 5))
        result.record(1, 3, [10], collect=False)
        assert result.cores is None
        assert result.num_results == 1
        with pytest.raises(ValueError):
            result.edge_sets()
        with pytest.raises(ValueError):
            result.by_tti()

    def test_by_tti(self):
        result = EnumerationResult("x", 2, (1, 5))
        result.record(1, 3, [10], collect=True)
        result.record(2, 5, [11], collect=True)
        assert set(result.by_tti()) == {(1, 3), (2, 5)}

    def test_completed_flag_defaults_true(self):
        assert EnumerationResult("x", 2, (1, 5)).completed
