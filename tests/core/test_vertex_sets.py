"""Vertex-set view (the paper's future-work feature)."""

from __future__ import annotations

from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.vertex_sets import (
    distinct_vertex_sets,
    enumerate_vertex_sets,
    vertex_set_compression,
)


class TestVertexSets:
    def test_paper_example_range_1_4(self, paper_graph):
        grouped = enumerate_vertex_sets(paper_graph, 2, 1, 4)
        as_labels = {
            frozenset(paper_graph.label_of(u) for u in vs): ttis
            for vs, ttis in grouped.items()
        }
        assert as_labels == {
            frozenset({"v1", "v2", "v4"}): [(2, 3)],
            frozenset({"v1", "v2", "v3", "v4", "v9"}): [(1, 4)],
        }

    def test_groups_cover_all_results(self, random_graph):
        result = enumerate_temporal_kcores(random_graph, 2)
        grouped = distinct_vertex_sets(random_graph, result)
        assert sum(len(ttis) for ttis in grouped.values()) == result.num_results

    def test_ttis_sorted(self, random_graph):
        result = enumerate_temporal_kcores(random_graph, 2)
        for ttis in distinct_vertex_sets(random_graph, result).values():
            assert ttis == sorted(ttis)

    def test_accepts_core_iterable(self, paper_graph):
        result = enumerate_temporal_kcores(paper_graph, 2)
        grouped = distinct_vertex_sets(paper_graph, list(result))
        assert grouped

    def test_compression_ratio_bounds(self, random_graph):
        result = enumerate_temporal_kcores(random_graph, 2)
        ratio = vertex_set_compression(random_graph, result)
        assert 0 < ratio <= 1

    def test_compression_compresses_on_random_graphs(self, random_graph):
        """Distinct vertex sets are never more numerous than edge sets."""
        result = enumerate_temporal_kcores(random_graph, 2)
        grouped = distinct_vertex_sets(random_graph, result)
        assert len(grouped) <= result.num_results

    def test_empty_result_ratio_is_one(self, paper_graph):
        result = enumerate_temporal_kcores(paper_graph, 9)
        assert vertex_set_compression(paper_graph, result) == 1.0
