"""StreamingCoreService: ingestion, staleness policy, raw-time queries."""

from __future__ import annotations

import pytest

from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.maintenance import StreamingCoreService
from repro.datasets.paper_example import PAPER_EXAMPLE_EDGES
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture()
def service():
    return StreamingCoreService(2, PAPER_EXAMPLE_EDGES, max_pending=3)


class TestIngestion:
    def test_append_and_count(self, service):
        assert service.num_edges == 14
        service.append("v1", "v9", 8)
        assert service.num_edges == 15
        assert service.num_pending == 15  # nothing built yet

    def test_out_of_order_rejected(self, service):
        with pytest.raises(InvalidParameterError):
            service.append("v1", "v9", 3)

    def test_equal_timestamp_allowed(self, service):
        service.append("v1", "v9", 7)
        assert service.num_edges == 15

    def test_extend(self):
        svc = StreamingCoreService(2)
        svc.extend([("a", "b", 1), ("b", "c", 2)])
        assert svc.num_edges == 2

    def test_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(0)
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(2, max_pending=-1)

    def test_refresh_without_edges(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(2).refresh()


class TestStaleness:
    def test_first_query_builds(self, service):
        assert service.is_stale
        result = service.query(1, 4)
        assert result.num_results == 2
        assert service.num_rebuilds == 1
        assert not service.is_stale

    def test_small_backlog_tolerated(self, service):
        service.query(1, 4)
        service.append("v1", "v9", 8)
        service.query(1, 4)  # within max_pending: no rebuild
        assert service.num_rebuilds == 1
        assert service.num_pending == 1

    def test_backlog_over_budget_triggers_rebuild(self, service):
        service.query(1, 4)
        for i in range(4):  # exceeds max_pending=3
            service.append("v1", "v9", 8 + i)
        service.query(1, 4)
        assert service.num_rebuilds == 2
        assert service.num_pending == 0

    def test_strict_forces_freshness(self, service):
        service.query(1, 4)
        service.append("v5", "v9", 8)
        result = service.query(1, 4, strict=True)
        assert service.num_rebuilds == 2
        assert result.num_results == 2

    def test_answers_match_offline_pipeline(self, service):
        """After any refresh the answers equal a from-scratch run."""
        service.extend([("a", "b", 8), ("b", "c", 8), ("a", "c", 9)])
        result = service.query(1, service.graph.tmax, strict=True)
        offline = enumerate_temporal_kcores(
            TemporalGraph(list(PAPER_EXAMPLE_EDGES)
                          + [("a", "b", 8), ("b", "c", 8), ("a", "c", 9)]),
            2,
        )
        assert result.edge_sets() == offline.edge_sets()


class TestRawTimeQueries:
    def test_raw_range_snaps_inward(self):
        svc = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300)]
        )
        result = svc.query_raw(50, 350)
        assert result.num_results == 1

    def test_raw_range_excludes_outside(self):
        svc = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300)]
        )
        result = svc.query_raw(100, 200)  # triangle incomplete here
        assert result.num_results == 0

    def test_empty_raw_range_raises(self):
        svc = StreamingCoreService(2, [("a", "b", 100)])
        with pytest.raises(InvalidParameterError):
            svc.query_raw(500, 600)
        with pytest.raises(InvalidParameterError):
            svc.query_raw(600, 500)
