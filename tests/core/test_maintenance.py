"""StreamingCoreService: ingestion, staleness policy, raw-time queries."""

from __future__ import annotations

import pytest

from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.maintenance import StreamingCoreService
from repro.datasets.paper_example import PAPER_EXAMPLE_EDGES
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture()
def service():
    return StreamingCoreService(2, PAPER_EXAMPLE_EDGES, max_pending=3)


class TestIngestion:
    def test_append_and_count(self, service):
        assert service.num_edges == 14
        service.append("v1", "v9", 8)
        assert service.num_edges == 15
        assert service.num_pending == 15  # nothing built yet

    def test_out_of_order_rejected(self, service):
        with pytest.raises(InvalidParameterError):
            service.append("v1", "v9", 3)

    def test_equal_timestamp_allowed(self, service):
        service.append("v1", "v9", 7)
        assert service.num_edges == 15

    def test_extend(self):
        svc = StreamingCoreService(2)
        svc.extend([("a", "b", 1), ("b", "c", 2)])
        assert svc.num_edges == 2

    def test_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(0)
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(2, max_pending=-1)

    def test_refresh_without_edges(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(2).refresh()


class TestStaleness:
    def test_first_query_builds(self, service):
        assert service.is_stale
        result = service.query(1, 4)
        assert result.num_results == 2
        assert service.num_rebuilds == 1
        assert not service.is_stale

    def test_small_backlog_tolerated(self, service):
        service.query(1, 4)
        service.append("v1", "v9", 8)
        service.query(1, 4)  # within max_pending: no rebuild
        assert service.num_rebuilds == 1
        assert service.num_pending == 1

    def test_backlog_over_budget_triggers_rebuild(self, service):
        service.query(1, 4)
        for i in range(4):  # exceeds max_pending=3
            service.append("v1", "v9", 8 + i)
        service.query(1, 4)
        assert service.num_rebuilds == 2
        assert service.num_pending == 0

    def test_strict_forces_freshness(self, service):
        service.query(1, 4)
        service.append("v5", "v9", 8)
        result = service.query(1, 4, strict=True)
        assert service.num_rebuilds == 2
        assert result.num_results == 2

    def test_answers_match_offline_pipeline(self, service):
        """After any refresh the answers equal a from-scratch run."""
        service.extend([("a", "b", 8), ("b", "c", 8), ("a", "c", 9)])
        result = service.query(1, service.graph.tmax, strict=True)
        offline = enumerate_temporal_kcores(
            TemporalGraph(list(PAPER_EXAMPLE_EDGES)
                          + [("a", "b", 8), ("b", "c", 8), ("a", "c", 9)]),
            2,
        )
        assert result.edge_sets() == offline.edge_sets()


class TestSnapshotRestore:
    """Streaming snapshots: a restarted daemon resumes from disk."""

    EXTRA = [("a", "b", 8), ("b", "c", 8), ("a", "c", 9)]

    @staticmethod
    def _store(tmp_path):
        from repro.store import IndexStore

        return IndexStore(tmp_path / "store")

    @staticmethod
    def _canonical(result, graph):
        """Cores as label-space edge triples (internal ids may differ)."""
        return {
            frozenset((*sorted((str(u), str(v))), t) for u, v, t in core.edge_triples(graph))
            for core in result
        }

    def test_snapshot_folds_pending_first(self, tmp_path, service):
        store = self._store(tmp_path)
        key = service.snapshot(store, name="svc")
        assert key == "svc"
        assert service.num_pending == 0
        assert store.stored_ks("svc") == [2]

    def test_restore_resumes_without_compute(self, tmp_path, service, monkeypatch):
        import repro.core.index as index_module
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")

        def explode(*args, **kwargs):
            raise AssertionError("restore path recomputed the index")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        restored = StreamingCoreService.restore(store, 2, name="svc")
        assert restored.num_edges == service.num_edges
        assert restored.num_pending == 0
        assert not restored.is_stale
        result = restored.query(1, 4)
        assert result.num_results == 2
        assert restored.num_rebuilds == 0

    def test_restore_plus_pending_appends_matches_scratch(self, tmp_path, service):
        """Acceptance: restore + appends is bit-identical to a full rebuild."""
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")
        restored = StreamingCoreService.restore(store, 2, name="svc")
        restored.extend(self.EXTRA)
        assert restored.num_pending == len(self.EXTRA)
        # query_raw with strict folds the pending edges in *before*
        # snapping the range, so this covers the grown full span.
        result = restored.query_raw(1, 10**9, strict=True)

        scratch = StreamingCoreService(2, list(PAPER_EXAMPLE_EDGES) + self.EXTRA)
        expected = scratch.query_raw(1, 10**9, strict=True)
        assert self._canonical(result, restored.graph) == self._canonical(
            expected, scratch.graph
        )

    def test_restore_single_graph_needs_no_name(self, tmp_path, service):
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path))
        restored = StreamingCoreService.restore(store, 2)
        assert restored.num_edges == service.num_edges

    def test_restore_ambiguous_store_requires_name(self, tmp_path, service):
        from repro.core.maintenance import StreamingCoreService

        store = self._store(tmp_path)
        service.snapshot(store, name="one")
        StreamingCoreService(2, [("x", "y", 1), ("y", "z", 2), ("x", "z", 3)]).snapshot(
            store, name="two"
        )
        with pytest.raises(InvalidParameterError, match="name"):
            StreamingCoreService.restore(store, 2)

    def test_restore_unknown_name(self, tmp_path, service):
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")
        with pytest.raises(InvalidParameterError, match="nope"):
            StreamingCoreService.restore(store, 2, name="nope")

    def test_restore_with_corrupt_index_rebuilds(self, tmp_path, service):
        """Fingerprint/checksum failure leaves the service stale, not wrong."""
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")
        path = store.root / "svc" / "k2.idx"
        path.write_bytes(path.read_bytes()[:-32])
        restored = StreamingCoreService.restore(store, 2, name="svc")
        assert restored.is_stale
        result = restored.query(1, 4)
        assert result.num_results == 2
        assert restored.num_rebuilds == 1

    def test_restore_with_different_k_rebuilds(self, tmp_path, service):
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")
        restored = StreamingCoreService.restore(store, 3, name="svc")  # only k=2 stored
        assert restored.is_stale
        restored.query(1, 7)
        assert restored.num_rebuilds == 1

    def test_raw_queries_survive_restore(self, tmp_path):
        from repro.core.maintenance import StreamingCoreService

        svc = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300)]
        )
        svc.snapshot(store := self._store(tmp_path), name="svc")
        restored = StreamingCoreService.restore(store, 2, name="svc")
        assert restored.query_raw(50, 350).num_results == 1
        restored.append("a", "b", 400)
        scratch = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300), ("a", "b", 400)]
        )
        assert self._canonical(
            restored.query_raw(50, 450, strict=True), restored.graph
        ) == self._canonical(scratch.query_raw(50, 450), scratch.graph)


class TestMultiKService:
    """Several registered k values rebuild together in one shared pass."""

    def test_registered_ks_normalised(self):
        svc = StreamingCoreService([3, 2, 3], PAPER_EXAMPLE_EDGES)
        assert svc.ks == (2, 3)
        assert svc.k == 2  # queries default to the smallest

    def test_one_rebuild_covers_every_k(self):
        svc = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES)
        assert svc.query(1, 4).num_results == 2            # k=2 default
        assert svc.query(1, 7, k=3).num_results == 0       # no 3-core exists
        assert svc.num_rebuilds == 1                       # but same build

    def test_answers_match_single_k_services(self):
        multi = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES)
        for k in (2, 3):
            single = StreamingCoreService(k, PAPER_EXAMPLE_EDGES)
            assert multi.query(1, 7, k=k).edge_sets() == single.query(
                1, 7
            ).edge_sets()
        assert multi.num_rebuilds == 1

    def test_unregistered_k_rejected(self):
        svc = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES)
        with pytest.raises(InvalidParameterError, match="not served"):
            svc.query(1, 4, k=5)

    def test_appends_invalidate_all_ks(self):
        svc = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES, max_pending=0)
        svc.query(1, 4)
        svc.append("v1", "v9", 8)
        svc.query(1, 4, k=3)  # over budget: one rebuild refreshes both
        assert svc.num_rebuilds == 2
        assert not svc.is_stale

    def test_snapshot_persists_every_k(self, tmp_path):
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        svc = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES)
        key = svc.snapshot(store, name="svc")
        assert store.stored_ks(key) == [2, 3]
        assert svc.num_rebuilds == 1

    def test_restore_multi_k_without_compute(self, tmp_path, monkeypatch):
        import repro.core.index as index_module
        import repro.core.multik as multik_module
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES).snapshot(store, name="svc")

        def explode(*args, **kwargs):
            raise AssertionError("restore path recomputed an index")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        monkeypatch.setattr(multik_module, "compute_core_times_multi", explode)
        restored = StreamingCoreService.restore(store, [2, 3], name="svc")
        assert not restored.is_stale
        assert restored.query(1, 4).num_results == 2
        assert restored.query(1, 7, k=3).completed         # served, no compute
        assert restored.num_rebuilds == 0

    def test_restore_with_missing_k_is_stale(self, tmp_path):
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        StreamingCoreService(2, PAPER_EXAMPLE_EDGES).snapshot(store, name="svc")
        restored = StreamingCoreService.restore(store, [2, 3], name="svc")
        assert restored.is_stale  # k=3 never snapshotted
        assert restored.query(1, 7, k=3).completed
        assert restored.num_rebuilds == 1  # one shared rebuild, both ks

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService([])
        with pytest.raises(InvalidParameterError):
            StreamingCoreService([2, 0])


class TestRawTimeQueries:
    def test_raw_range_snaps_inward(self):
        svc = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300)]
        )
        result = svc.query_raw(50, 350)
        assert result.num_results == 1

    def test_raw_range_excludes_outside(self):
        svc = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300)]
        )
        result = svc.query_raw(100, 200)  # triangle incomplete here
        assert result.num_results == 0

    def test_empty_raw_range_raises(self):
        svc = StreamingCoreService(2, [("a", "b", 100)])
        with pytest.raises(InvalidParameterError):
            svc.query_raw(500, 600)
        with pytest.raises(InvalidParameterError):
            svc.query_raw(600, 500)
