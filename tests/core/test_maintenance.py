"""StreamingCoreService: ingestion, staleness policy, raw-time queries."""

from __future__ import annotations

import pytest

from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.maintenance import StreamingCoreService
from repro.datasets.paper_example import PAPER_EXAMPLE_EDGES
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture()
def service():
    return StreamingCoreService(2, PAPER_EXAMPLE_EDGES, max_pending=3)


class TestIngestion:
    def test_append_and_count(self, service):
        assert service.num_edges == 14
        service.append("v1", "v9", 8)
        assert service.num_edges == 15
        assert service.num_pending == 15  # nothing built yet

    def test_out_of_order_rejected(self, service):
        with pytest.raises(InvalidParameterError):
            service.append("v1", "v9", 3)

    def test_equal_timestamp_allowed(self, service):
        service.append("v1", "v9", 7)
        assert service.num_edges == 15

    def test_extend(self):
        svc = StreamingCoreService(2)
        svc.extend([("a", "b", 1), ("b", "c", 2)])
        assert svc.num_edges == 2

    def test_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(0)
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(2, max_pending=-1)

    def test_refresh_without_edges(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(2).refresh()


class TestStaleness:
    def test_first_query_builds(self, service):
        assert service.is_stale
        result = service.query(1, 4)
        assert result.num_results == 2
        assert service.num_rebuilds == 1
        assert not service.is_stale

    def test_small_backlog_tolerated(self, service):
        service.query(1, 4)
        service.append("v1", "v9", 8)
        service.query(1, 4)  # within max_pending: no rebuild
        assert service.num_rebuilds == 1
        assert service.num_pending == 1

    def test_backlog_over_budget_triggers_rebuild(self, service):
        service.query(1, 4)
        for i in range(4):  # exceeds max_pending=3
            service.append("v1", "v9", 8 + i)
        service.query(1, 4)
        assert service.num_rebuilds == 2
        assert service.num_pending == 0

    def test_strict_forces_freshness(self, service):
        service.query(1, 4)
        service.append("v5", "v9", 8)
        result = service.query(1, 4, strict=True)
        assert service.num_rebuilds == 2
        assert result.num_results == 2

    def test_answers_match_offline_pipeline(self, service):
        """After any refresh the answers equal a from-scratch run."""
        service.extend([("a", "b", 8), ("b", "c", 8), ("a", "c", 9)])
        result = service.query(1, service.graph.tmax, strict=True)
        offline = enumerate_temporal_kcores(
            TemporalGraph(list(PAPER_EXAMPLE_EDGES)
                          + [("a", "b", 8), ("b", "c", 8), ("a", "c", 9)]),
            2,
        )
        assert result.edge_sets() == offline.edge_sets()


class TestSnapshotRestore:
    """Streaming snapshots: a restarted daemon resumes from disk."""

    EXTRA = [("a", "b", 8), ("b", "c", 8), ("a", "c", 9)]

    @staticmethod
    def _store(tmp_path):
        from repro.store import IndexStore

        return IndexStore(tmp_path / "store")

    @staticmethod
    def _canonical(result, graph):
        """Cores as label-space edge triples (internal ids may differ)."""
        return {
            frozenset((*sorted((str(u), str(v))), t) for u, v, t in core.edge_triples(graph))
            for core in result
        }

    def test_snapshot_folds_pending_first(self, tmp_path, service):
        store = self._store(tmp_path)
        key = service.snapshot(store, name="svc")
        assert key == "svc"
        assert service.num_pending == 0
        assert store.stored_ks("svc") == [2]

    def test_restore_resumes_without_compute(self, tmp_path, service, monkeypatch):
        import repro.core.index as index_module
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")

        def explode(*args, **kwargs):
            raise AssertionError("restore path recomputed the index")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        restored = StreamingCoreService.restore(store, 2, name="svc")
        assert restored.num_edges == service.num_edges
        assert restored.num_pending == 0
        assert not restored.is_stale
        result = restored.query(1, 4)
        assert result.num_results == 2
        assert restored.num_rebuilds == 0

    def test_restore_plus_pending_appends_matches_scratch(self, tmp_path, service):
        """Acceptance: restore + appends is bit-identical to a full rebuild."""
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")
        restored = StreamingCoreService.restore(store, 2, name="svc")
        restored.extend(self.EXTRA)
        assert restored.num_pending == len(self.EXTRA)
        # query_raw with strict folds the pending edges in *before*
        # snapping the range, so this covers the grown full span.
        result = restored.query_raw(1, 10**9, strict=True)

        scratch = StreamingCoreService(2, list(PAPER_EXAMPLE_EDGES) + self.EXTRA)
        expected = scratch.query_raw(1, 10**9, strict=True)
        assert self._canonical(result, restored.graph) == self._canonical(
            expected, scratch.graph
        )

    def test_restore_single_graph_needs_no_name(self, tmp_path, service):
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path))
        restored = StreamingCoreService.restore(store, 2)
        assert restored.num_edges == service.num_edges

    def test_restore_ambiguous_store_requires_name(self, tmp_path, service):
        from repro.core.maintenance import StreamingCoreService

        store = self._store(tmp_path)
        service.snapshot(store, name="one")
        StreamingCoreService(2, [("x", "y", 1), ("y", "z", 2), ("x", "z", 3)]).snapshot(
            store, name="two"
        )
        with pytest.raises(InvalidParameterError, match="name"):
            StreamingCoreService.restore(store, 2)

    def test_restore_unknown_name(self, tmp_path, service):
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")
        with pytest.raises(InvalidParameterError, match="nope"):
            StreamingCoreService.restore(store, 2, name="nope")

    def test_restore_with_corrupt_index_rebuilds(self, tmp_path, service):
        """Fingerprint/checksum failure leaves the service stale, not wrong."""
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")
        path = store.root / "svc" / "k2.idx"
        path.write_bytes(path.read_bytes()[:-32])
        restored = StreamingCoreService.restore(store, 2, name="svc")
        assert restored.is_stale
        result = restored.query(1, 4)
        assert result.num_results == 2
        assert restored.num_rebuilds == 1

    def test_restore_with_different_k_rebuilds(self, tmp_path, service):
        from repro.core.maintenance import StreamingCoreService

        service.snapshot(store := self._store(tmp_path), name="svc")
        restored = StreamingCoreService.restore(store, 3, name="svc")  # only k=2 stored
        assert restored.is_stale
        restored.query(1, 7)
        assert restored.num_rebuilds == 1

    def test_raw_queries_survive_restore(self, tmp_path):
        from repro.core.maintenance import StreamingCoreService

        svc = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300)]
        )
        svc.snapshot(store := self._store(tmp_path), name="svc")
        restored = StreamingCoreService.restore(store, 2, name="svc")
        assert restored.query_raw(50, 350).num_results == 1
        restored.append("a", "b", 400)
        scratch = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300), ("a", "b", 400)]
        )
        assert self._canonical(
            restored.query_raw(50, 450, strict=True), restored.graph
        ) == self._canonical(scratch.query_raw(50, 450), scratch.graph)


class TestMultiKService:
    """Several registered k values rebuild together in one shared pass."""

    def test_registered_ks_normalised(self):
        svc = StreamingCoreService([3, 2, 3], PAPER_EXAMPLE_EDGES)
        assert svc.ks == (2, 3)
        assert svc.k == 2  # queries default to the smallest

    def test_one_rebuild_covers_every_k(self):
        svc = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES)
        assert svc.query(1, 4).num_results == 2            # k=2 default
        assert svc.query(1, 7, k=3).num_results == 0       # no 3-core exists
        assert svc.num_rebuilds == 1                       # but same build

    def test_answers_match_single_k_services(self):
        multi = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES)
        for k in (2, 3):
            single = StreamingCoreService(k, PAPER_EXAMPLE_EDGES)
            assert multi.query(1, 7, k=k).edge_sets() == single.query(
                1, 7
            ).edge_sets()
        assert multi.num_rebuilds == 1

    def test_unregistered_k_rejected(self):
        svc = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES)
        with pytest.raises(InvalidParameterError, match="not served"):
            svc.query(1, 4, k=5)

    def test_appends_invalidate_all_ks(self):
        svc = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES, max_pending=0)
        svc.query(1, 4)
        svc.append("v1", "v9", 8)
        svc.query(1, 4, k=3)  # over budget: one rebuild refreshes both
        assert svc.num_rebuilds == 2
        assert not svc.is_stale

    def test_snapshot_persists_every_k(self, tmp_path):
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        svc = StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES)
        key = svc.snapshot(store, name="svc")
        assert store.stored_ks(key) == [2, 3]
        assert svc.num_rebuilds == 1

    def test_restore_multi_k_without_compute(self, tmp_path, monkeypatch):
        import repro.core.index as index_module
        import repro.core.multik as multik_module
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        StreamingCoreService([2, 3], PAPER_EXAMPLE_EDGES).snapshot(store, name="svc")

        def explode(*args, **kwargs):
            raise AssertionError("restore path recomputed an index")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        monkeypatch.setattr(multik_module, "compute_core_times_multi", explode)
        restored = StreamingCoreService.restore(store, [2, 3], name="svc")
        assert not restored.is_stale
        assert restored.query(1, 4).num_results == 2
        assert restored.query(1, 7, k=3).completed         # served, no compute
        assert restored.num_rebuilds == 0

    def test_restore_with_missing_k_is_stale(self, tmp_path):
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        StreamingCoreService(2, PAPER_EXAMPLE_EDGES).snapshot(store, name="svc")
        restored = StreamingCoreService.restore(store, [2, 3], name="svc")
        assert restored.is_stale  # k=3 never snapshotted
        assert restored.query(1, 7, k=3).completed
        assert restored.num_rebuilds == 1  # one shared rebuild, both ks

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService([])
        with pytest.raises(InvalidParameterError):
            StreamingCoreService([2, 0])


class TestRawTimeQueries:
    def test_raw_range_snaps_inward(self):
        svc = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300)]
        )
        result = svc.query_raw(50, 350)
        assert result.num_results == 1

    def test_raw_range_excludes_outside(self):
        svc = StreamingCoreService(
            2, [("a", "b", 100), ("b", "c", 200), ("a", "c", 300)]
        )
        result = svc.query_raw(100, 200)  # triangle incomplete here
        assert result.num_results == 0

    def test_empty_raw_range_raises(self):
        svc = StreamingCoreService(2, [("a", "b", 100)])
        with pytest.raises(InvalidParameterError):
            svc.query_raw(500, 600)
        with pytest.raises(InvalidParameterError):
            svc.query_raw(600, 500)


class TestIncrementalRefresh:
    """PR 10: frontier batches fold instead of rebuilding."""

    def _seeded(self, ks=(2,), **kwargs):
        svc = StreamingCoreService(ks, PAPER_EXAMPLE_EDGES, **kwargs)
        svc.refresh(mode="full")
        return svc

    def test_mode_validation(self, service):
        with pytest.raises(InvalidParameterError):
            service.refresh(mode="sideways")

    def test_frontier_batch_folds(self):
        svc = self._seeded()
        svc.extend([("v1", "v2", 8), ("v2", "v3", 8), ("v1", "v3", 9)])
        assert svc.refresh(mode="incremental") == "incremental"
        assert svc.num_incremental_folds == 1
        assert svc.num_full_rebuilds == 1
        assert svc.num_pending == 0

    def test_boundary_tie_falls_back_to_full(self):
        svc = self._seeded()
        svc.append("v1", "v2", 7)  # ties the built graph's last instant
        assert svc.refresh() == "full"
        assert svc.last_fallback_reason == "boundary-tie"
        assert svc.num_incremental_folds == 0

    def test_full_mode_forced(self):
        svc = self._seeded()
        svc.append("v1", "v2", 8)
        assert svc.refresh(mode="full") == "full"
        assert svc.num_incremental_folds == 0

    def test_folded_answers_match_offline(self):
        extra = [("v1", "v9", 8), ("v9", "v5", 8), ("v1", "v5", 9)]
        svc = self._seeded()
        svc.extend(extra)
        assert svc.refresh(mode="incremental") == "incremental"
        result = svc.query(1, svc.graph.tmax)
        offline = enumerate_temporal_kcores(
            TemporalGraph(list(PAPER_EXAMPLE_EDGES) + extra), 2
        )
        assert result.edge_sets() == offline.edge_sets()

    def test_auto_refresh_on_query_path_folds(self):
        # The paper graph is tiny, so any delta's window exceeds the
        # default cost bound — widen it to pin the query-path wiring.
        svc = self._seeded(max_pending=1, max_window_fraction=1.0)
        svc.extend([("v1", "v2", 8), ("v2", "v3", 8)])
        svc.query(1, 7)  # over budget: refresh happens implicitly
        assert svc.num_incremental_folds == 1

    def test_auto_cost_model_refuses_oversized_windows(self):
        # On the tiny paper graph a 3-edge delta's recompute window is
        # most of the span: auto mode rebuilds and records why.
        svc = self._seeded()
        svc.extend([("v1", "v2", 8), ("v2", "v3", 8), ("v1", "v3", 9)])
        assert svc.refresh(mode="auto") == "full"
        assert svc.last_fallback_reason == "window-fraction"

    def test_stats_surface(self):
        svc = self._seeded()
        svc.extend([("v1", "v2", 8), ("v2", "v3", 9)])
        stats = svc.stats()
        assert stats["num_pending"] == 2
        assert stats["lag_edges"] == 2
        assert stats["lag_seconds"] > 0.0
        svc.refresh(mode="incremental")
        stats = svc.stats()
        assert stats["num_pending"] == 0
        assert stats["lag_seconds"] == 0.0
        assert stats["incremental_folds"] == 1
        assert stats["full_rebuilds"] == 1
        assert stats["last_fold"]["delta_edges"] == 2
        assert stats["last_fold"]["seconds"] >= 0.0


class TestMaxLag:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamingCoreService(2, max_lag=-1.0)

    def test_lag_budget_triggers_refresh(self):
        svc = StreamingCoreService(
            2, PAPER_EXAMPLE_EDGES, max_pending=1_000, max_lag=60.0
        )
        svc.query(1, 7)
        svc.append("v1", "v2", 8)
        assert not svc.lag_exceeded
        svc.query(1, 7)
        assert svc.num_rebuilds == 1  # within both budgets
        svc._pending_since -= 120.0  # backdate: oldest append 2min old
        assert svc.lag_exceeded
        svc.query(1, 7)
        assert svc.num_rebuilds == 2
        assert svc.num_pending == 0

    def test_no_lag_budget_by_default(self):
        svc = StreamingCoreService(2, PAPER_EXAMPLE_EDGES, max_pending=1_000)
        svc.query(1, 7)
        svc.append("v1", "v2", 8)
        svc._pending_since -= 10_000.0
        assert not svc.lag_exceeded
        svc.query(1, 7)
        assert svc.num_rebuilds == 1

    def test_restore_forwards_max_lag(self, tmp_path):
        from repro.store.index_store import IndexStore

        store = IndexStore(tmp_path / "store")
        svc = StreamingCoreService(2, PAPER_EXAMPLE_EDGES)
        svc.snapshot(store, name="g")
        resumed = StreamingCoreService.restore(store, 2, max_lag=5.0)
        assert resumed.max_lag == 5.0


class TestWindowQueries:
    """PR 10 satellite: restricted sub-span builds from the serving layer."""

    def test_window_indexes_match_full_restriction(self, service):
        service.refresh()
        full = service.query(2, 5, strict=True)
        window = service.query_window(2, 5)
        assert window.edge_sets() == full.edge_sets()

    def test_window_query_sees_pending_edges(self, service):
        service.refresh()
        service.extend([("v1", "v9", 8), ("v9", "v5", 8), ("v1", "v5", 9)])
        before = service.num_rebuilds
        tmax = TemporalGraph(
            list(PAPER_EXAMPLE_EDGES)
            + [("v1", "v9", 8), ("v9", "v5", 8), ("v1", "v5", 9)]
        ).tmax
        result = service.query_window(1, tmax)
        offline = enumerate_temporal_kcores(
            TemporalGraph(
                list(PAPER_EXAMPLE_EDGES)
                + [("v1", "v9", 8), ("v9", "v5", 8), ("v1", "v5", 9)]
            ),
            2,
        )
        assert result.edge_sets() == offline.edge_sets()
        # The sub-span build never touched the full-span indexes.
        assert service.num_rebuilds == before
        assert service.num_pending == 3

    def test_window_cache_invalidated_by_append(self, service):
        service.refresh()
        first = service.window_indexes(1, 7)
        again = service.window_indexes(1, 7)
        assert again is first  # cached
        service.append("v1", "v9", 8)
        rebuilt = service.window_indexes(1, 7)
        assert rebuilt is not first

    def test_window_validation(self, service):
        service.refresh()
        with pytest.raises(InvalidParameterError):
            service.query_window(5, 2)
