"""TimeRangeCoreQuery: engine routing, validation, timeouts."""

from __future__ import annotations

import pytest

from repro.core.query import ENGINES, TimeRangeCoreQuery
from repro.errors import InvalidParameterError


class TestRouting:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_engines_agree(self, paper_graph, engine):
        result = TimeRangeCoreQuery(
            paper_graph, k=2, time_range=(1, 4), engine=engine
        ).run()
        reference = TimeRangeCoreQuery(paper_graph, k=2, time_range=(1, 4)).run()
        assert result.edge_sets() == reference.edge_sets()

    def test_default_range_is_full_span(self, paper_graph):
        query = TimeRangeCoreQuery(paper_graph, k=2)
        assert query.time_range == (1, 7)
        assert query.run().num_results == 13

    def test_engine_recorded_on_result(self, paper_graph):
        result = TimeRangeCoreQuery(paper_graph, k=2, engine="otcd").run()
        assert result.algorithm == "otcd"

    def test_core_times_accessor(self, paper_graph):
        query = TimeRangeCoreQuery(paper_graph, k=2, time_range=(1, 4))
        ct = query.core_times()
        assert ct.vct.span == (1, 4)
        assert ct.ecs is not None


class TestValidation:
    def test_unknown_engine(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            TimeRangeCoreQuery(paper_graph, k=2, engine="magic")

    def test_bad_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            TimeRangeCoreQuery(paper_graph, k=0)

    def test_bad_range(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            TimeRangeCoreQuery(paper_graph, k=2, time_range=(0, 4))
        with pytest.raises(InvalidParameterError):
            TimeRangeCoreQuery(paper_graph, k=2, time_range=(5, 4))

    def test_timeout_marks_incomplete(self, paper_graph):
        result = TimeRangeCoreQuery(
            paper_graph, k=2, engine="bruteforce", timeout=0.0
        ).run()
        assert not result.completed

    def test_collect_false_streams(self, paper_graph):
        result = TimeRangeCoreQuery(paper_graph, k=2, collect=False).run()
        assert result.cores is None
        assert result.num_results == 13
