"""Property-based tests (hypothesis) over random temporal multigraphs.

These are the strongest correctness guarantees in the suite: for *any*
generated graph and k, the whole pipeline must agree with the brute-force
oracle and respect the paper's structural lemmas.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.baselines.otcd import enumerate_otcd
from repro.core.coretime import compute_core_times
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.enumerate import enumerate_temporal_kcores
from repro.graph.snapshot import Snapshot
from repro.graph.static_core import snapshot_k_core
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validation import exact_core_edge_ids


@st.composite
def temporal_graphs(draw, max_vertices=9, max_edges=36, max_time=9):
    """Small random temporal multigraphs (non-empty)."""
    n = draw(st.integers(min_value=3, max_value=max_vertices))
    m = draw(st.integers(min_value=3, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=1, max_value=max_time),
            ),
            min_size=m,
            max_size=m,
        )
    )
    filtered = [(u, v, t) for u, v, t in edges if u != v]
    if not filtered:
        filtered = [(0, 1, 1), (1, 2, 1), (0, 2, 1)]
    return TemporalGraph(filtered)


@st.composite
def graph_and_k(draw):
    graph = draw(temporal_graphs())
    k = draw(st.integers(min_value=2, max_value=4))
    return graph, k


@settings(max_examples=60, deadline=None)
@given(case=graph_and_k())
def test_enum_equals_oracle(case):
    graph, k = case
    ours = enumerate_temporal_kcores(graph, k)
    oracle = enumerate_bruteforce(graph, k)
    assert ours.edge_sets() == oracle.edge_sets()
    assert set(ours.by_tti()) == set(oracle.by_tti())


@settings(max_examples=40, deadline=None)
@given(case=graph_and_k())
def test_all_engines_agree(case):
    graph, k = case
    reference = enumerate_temporal_kcores(graph, k).edge_sets()
    assert enumerate_temporal_kcores_base(graph, k).edge_sets() == reference
    assert enumerate_otcd(graph, k).edge_sets() == reference
    assert enumerate_otcd(graph, k, use_pruning=False).edge_sets() == reference


@settings(max_examples=40, deadline=None)
@given(case=graph_and_k())
def test_skyline_windows_minimal(case):
    """Definition 5 holds for every reported minimal core window."""
    graph, k = case
    skyline = compute_core_times(graph, k).ecs
    for eid, (t1, t2) in skyline:
        assert eid in exact_core_edge_ids(graph, k, t1, t2)
        if t1 < t2:
            assert eid not in exact_core_edge_ids(graph, k, t1 + 1, t2)
            assert eid not in exact_core_edge_ids(graph, k, t1, t2 - 1)


@settings(max_examples=40, deadline=None)
@given(case=graph_and_k())
def test_core_times_define_membership(case):
    """Definition 4: {u : CT_ts(u) <= te} is exactly the window's core."""
    graph, k = case
    vct = compute_core_times(graph, k, with_skyline=False).vct
    for ts in range(1, graph.tmax + 1):
        for te in (ts, graph.tmax):
            expected = snapshot_k_core(Snapshot.from_graph(graph, ts, te), k)
            via_index = {
                u for u in range(graph.num_vertices) if vct.in_core(u, ts, te)
            }
            assert via_index == expected


@settings(max_examples=40, deadline=None)
@given(case=graph_and_k())
def test_skyline_strictly_monotone(case):
    graph, k = case
    compute_core_times(graph, k).ecs.check_skyline_invariant()


@settings(max_examples=40, deadline=None)
@given(case=graph_and_k())
def test_result_edges_form_k_cohesive_subgraphs(case):
    """Every reported core satisfies the degree constraint."""
    graph, k = case
    result = enumerate_temporal_kcores(graph, k)
    for core in result:
        neighbours: dict[int, set[int]] = {}
        for eid in core.edge_ids:
            u, v, _ = graph.edges[eid]
            neighbours.setdefault(u, set()).add(v)
            neighbours.setdefault(v, set()).add(u)
        assert all(len(s) >= k for s in neighbours.values())


@settings(max_examples=30, deadline=None)
@given(case=graph_and_k(), data=st.data())
def test_subrange_query_consistent_with_full(case, data):
    """Cores of a sub-range are exactly the full-range cores whose TTI
    fits inside it."""
    graph, k = case
    ts = data.draw(st.integers(min_value=1, max_value=graph.tmax))
    te = data.draw(st.integers(min_value=ts, max_value=graph.tmax))
    full = enumerate_temporal_kcores(graph, k)
    sub = enumerate_temporal_kcores(graph, k, ts, te)
    expected = {
        core.edge_set()
        for core in full
        if ts <= core.tti[0] and core.tti[1] <= te
    }
    assert sub.edge_sets() == expected


@settings(max_examples=30, deadline=None)
@given(graph=temporal_graphs())
def test_core_times_monotone_everywhere(graph):
    vct = compute_core_times(graph, 2, with_skyline=False).vct
    for u in range(graph.num_vertices):
        series = [vct.core_time(u, ts) for ts in range(1, graph.tmax + 1)]
        for earlier, later in zip(series, series[1:]):
            if earlier is None:
                assert later is None
            elif later is not None:
                assert later >= earlier


@settings(max_examples=25, deadline=None)
@given(case=graph_and_k(), data=st.data())
def test_prebuilt_index_matches_fresh_runs(case, data):
    """CoreIndex.restricted_to answers == per-range recomputation."""
    from repro.core.index import CoreIndex

    graph, k = case
    ts = data.draw(st.integers(min_value=1, max_value=graph.tmax))
    te = data.draw(st.integers(min_value=ts, max_value=graph.tmax))
    index = CoreIndex(graph, k)
    via_index = index.query(ts, te)
    fresh = enumerate_temporal_kcores(graph, k, ts, te)
    assert via_index.edge_sets() == fresh.edge_sets()


@settings(max_examples=25, deadline=None)
@given(case=graph_and_k())
def test_vertex_sets_partition_results(case):
    """The vertex-set view groups every core exactly once."""
    from repro.core.vertex_sets import distinct_vertex_sets

    graph, k = case
    result = enumerate_temporal_kcores(graph, k)
    grouped = distinct_vertex_sets(graph, result)
    assert sum(len(ttis) for ttis in grouped.values()) == result.num_results
    for vertices, ttis in grouped.items():
        assert vertices  # no empty vertex sets
        assert ttis == sorted(ttis)


@settings(max_examples=25, deadline=None)
@given(case=graph_and_k())
def test_otcd_pruning_equivalence(case):
    """PoR/PoU/PoL never change the output, only the work."""
    graph, k = case
    pruned = enumerate_otcd(graph, k)
    unpruned = enumerate_otcd(graph, k, use_pruning=False)
    assert pruned.edge_sets() == unpruned.edge_sets()
    assert set(pruned.by_tti()) == set(unpruned.by_tti())


@settings(max_examples=25, deadline=None)
@given(case=graph_and_k())
def test_result_counters_consistent(case):
    """Streaming counters equal collected totals for every engine."""
    graph, k = case
    for runner in (
        enumerate_temporal_kcores,
        enumerate_temporal_kcores_base,
        enumerate_otcd,
    ):
        collected = runner(graph, k, collect=True)
        streamed = runner(graph, k, collect=False)
        assert streamed.num_results == collected.num_results
        assert streamed.total_edges == collected.total_edges
        assert streamed.total_edges == sum(
            core.num_edges for core in collected
        )


@settings(max_examples=20, deadline=None)
@given(case=graph_and_k())
def test_ecs_serialisation_round_trip(case):
    """Dump/load of the skyline preserves query answers."""
    from repro.core.index import CoreIndex, load_skyline

    graph, k = case
    index = CoreIndex(graph, k)
    loaded = load_skyline(index.dumps_skyline())
    via_loaded = enumerate_temporal_kcores(graph, k, skyline=loaded)
    fresh = enumerate_temporal_kcores(graph, k)
    assert via_loaded.edge_sets() == fresh.edge_sets()


@settings(max_examples=20, deadline=None)
@given(case=graph_and_k())
def test_active_times_partition_start_times(case):
    """Per edge, the [active, start] intervals of its windows tile a
    prefix of the start-time axis without gaps or overlaps."""
    from repro.core.windows import build_active_windows

    graph, k = case
    skyline = compute_core_times(graph, k).ecs
    windows = build_active_windows(skyline, 1)
    by_edge: dict[int, list] = {}
    for w in windows:
        by_edge.setdefault(w.edge_id, []).append(w)
    for edge_windows in by_edge.values():
        expected_active = 1
        for w in edge_windows:
            assert w.active == expected_active
            assert w.active <= w.start
            expected_active = w.start + 1
