"""Incremental delta-folds (:mod:`repro.core.incremental`).

The contract under test is *entry identity*: folding a frontier batch
into existing indexes must produce, for every level, VCT/ECS flat
arrays **exactly equal** to a full ``build_core_indexes`` over the
concatenated edge list — and the extended compiled graph must be
section-for-section equal to a fresh compile.  Randomized streams,
chained folds, and every fallback reason are covered.
"""

from __future__ import annotations

import random

import pytest

from repro.core.coretime import compute_core_times
from repro.core.incremental import (
    DeltaFold,
    FoldFallback,
    delta_fold,
    extend_graph,
)
from repro.core.multik import build_core_indexes
from repro.graph.csr import CompiledGraph
from repro.graph.temporal_graph import TemporalGraph

_SCALARS = ("num_vertices", "num_edges", "tmax", "num_slots", "num_pairs")
#: Every compiled column that must match a fresh compile exactly.
_SECTIONS = [
    slot for slot in CompiledGraph.__slots__ if slot not in _SCALARS
]


def stream(seed: int, count: int, *, nodes: int = 14, advance: float = 0.6):
    """Nondecreasing-time random labelled edges, small enough to core."""
    rng = random.Random(seed)
    out, t = [], 1
    while len(out) < count:
        if rng.random() < advance:
            t += rng.randint(0, 2)
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u == v:
            v = (v + 1) % nodes
        out.append((f"n{u}", f"n{v}", t))
    return out


def frontier_batch(base_edges, seed: int, count: int, *, nodes: int = 14):
    """A strictly-newer batch continuing a stream."""
    rng = random.Random(seed)
    t = max(e[2] for e in base_edges) + 1
    out = []
    while len(out) < count:
        if rng.random() < 0.6:
            t += rng.randint(0, 2)
        u = rng.randrange(nodes)
        v = rng.randrange(nodes)
        if u == v:
            v = (v + 1) % nodes
        out.append((f"n{u}", f"n{v}", t))
    return out


def assert_compiled_equal(got: CompiledGraph, want: CompiledGraph):
    for slot in _SCALARS:
        assert getattr(got, slot) == getattr(want, slot), slot
    for slot in _SECTIONS:
        left = list(getattr(got, slot))
        right = list(getattr(want, slot))
        assert left == right, f"compiled section {slot} diverged"


def assert_indexes_equal(got, want, ks):
    for k in ks:
        for name in ("vct", "ecs"):
            left = getattr(got[k], name).flat_parts()
            right = getattr(want[k], name).flat_parts()
            for x, y in zip(left, right):
                same = x == y
                assert (
                    same.all() if hasattr(same, "all") else same
                ), f"{name} flat arrays diverged at k={k}"


class TestExtendGraph:
    def test_sections_match_fresh_compile(self):
        for seed in range(8):
            base_edges = stream(seed, 120)
            batch = frontier_batch(base_edges, seed + 100, 25)
            base = TemporalGraph(base_edges)
            base.compiled()
            extended, new_edges, _bufs = extend_graph(base, batch)
            assert len(new_edges) == len(batch)
            fresh = TemporalGraph(base_edges + batch)
            assert extended.num_edges == fresh.num_edges
            assert extended.tmax == fresh.tmax
            assert_compiled_equal(extended.compiled(), fresh.compiled())

    def test_raw_times_round_trip(self):
        base_edges = stream(3, 80)
        batch = frontier_batch(base_edges, 4, 20)
        extended, _, _ = extend_graph(TemporalGraph(base_edges), batch)
        fresh = TemporalGraph(base_edges + batch)
        for t in range(1, extended.tmax + 1):
            assert extended.raw_time_of(t) == fresh.raw_time_of(t)

    def test_new_vertices_get_fresh_ids(self):
        base_edges = stream(5, 60)
        t = max(e[2] for e in base_edges)
        batch = [("zz1", "zz2", t + 1), ("zz1", "n0", t + 2)]
        extended, _, _ = extend_graph(TemporalGraph(base_edges), batch)
        fresh = TemporalGraph(base_edges + batch)
        assert extended.num_vertices == fresh.num_vertices
        assert_compiled_equal(extended.compiled(), fresh.compiled())

    def test_self_loops_dropped(self):
        base_edges = stream(6, 60)
        t = max(e[2] for e in base_edges)
        extended, new_edges, _ = extend_graph(
            TemporalGraph(base_edges),
            [("n0", "n0", t + 1), ("n0", "n1", t + 2)],
        )
        assert len(new_edges) == 1
        assert extended.num_edges == len(base_edges) + 1

    def test_boundary_tie_falls_back(self):
        base_edges = stream(7, 60)
        t = max(e[2] for e in base_edges)
        with pytest.raises(FoldFallback) as err:
            extend_graph(TemporalGraph(base_edges), [("n0", "n1", t)])
        assert err.value.reason == "boundary-tie"

    def test_empty_base_falls_back(self):
        with pytest.raises(FoldFallback) as err:
            extend_graph(TemporalGraph([]), [("a", "b", 1)])
        assert err.value.reason == "empty-base"


class TestDeltaFoldIdentity:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("ks", [(2,), (2, 3), (2, 3, 4)])
    def test_single_fold_matches_full_build(self, seed, ks):
        base_edges = stream(seed, 150)
        batch = frontier_batch(base_edges, seed + 50, 30)
        base = TemporalGraph(base_edges)
        indexes = build_core_indexes(base, ks)
        result = delta_fold(base, indexes, batch)
        oracle = build_core_indexes(TemporalGraph(base_edges + batch), ks)
        assert_indexes_equal(result.indexes, oracle, ks)
        assert_compiled_equal(
            result.graph.compiled(),
            TemporalGraph(base_edges + batch).compiled(),
        )
        assert result.report.delta_edges == len(batch)
        assert result.report.span_end == result.graph.tmax

    @pytest.mark.parametrize("seed", range(5))
    def test_chained_folds_match_full_build(self, seed):
        ks = (2, 3)
        edges = stream(seed, 120)
        folder = DeltaFold(
            TemporalGraph(edges), build_core_indexes(TemporalGraph(edges), ks)
        )
        for round_no in range(4):
            batch = frontier_batch(edges, seed * 31 + round_no, 20)
            folder.fold(batch)
            edges = edges + batch
            oracle = build_core_indexes(TemporalGraph(edges), ks)
            assert_indexes_equal(folder.indexes, oracle, ks)

    def test_matches_seed_oracle(self):
        ks = (2, 3)
        base_edges = stream(2, 100)
        batch = frontier_batch(base_edges, 9, 25)
        base = TemporalGraph(base_edges)
        result = delta_fold(base, build_core_indexes(base, ks), batch)
        graph = TemporalGraph(base_edges + batch)
        for k in ks:
            oracle = compute_core_times(graph, k)
            for u in range(graph.num_vertices):
                assert (
                    result.indexes[k].vct.entries_of(u)
                    == oracle.vct.entries_of(u)
                )
            for e in range(graph.num_edges):
                assert (
                    result.indexes[k].ecs.windows_of(e)
                    == oracle.ecs.windows_of(e)
                )

    def test_new_vertices_fold_correctly(self):
        ks = (2,)
        base_edges = stream(4, 120)
        t = max(e[2] for e in base_edges)
        batch = [
            ("x1", "x2", t + 1),
            ("x2", "x3", t + 1),
            ("x1", "x3", t + 2),
            ("x1", "n0", t + 2),
            ("x2", "n0", t + 3),
        ]
        base = TemporalGraph(base_edges)
        result = delta_fold(base, build_core_indexes(base, ks), batch)
        oracle = build_core_indexes(TemporalGraph(base_edges + batch), ks)
        assert_indexes_equal(result.indexes, oracle, ks)
        assert result.report.new_vertices == 3

    def test_empty_batch_is_a_no_op(self):
        base_edges = stream(1, 80)
        base = TemporalGraph(base_edges)
        indexes = build_core_indexes(base, (2,))
        result = delta_fold(base, indexes, [])
        assert result.graph is base
        assert result.report.delta_edges == 0
        assert result.report.window_edges == 0

    def test_inputs_not_mutated(self):
        ks = (2,)
        base_edges = stream(8, 100)
        batch = frontier_batch(base_edges, 13, 20)
        base = TemporalGraph(base_edges)
        indexes = build_core_indexes(base, ks)
        before = [
            [list(part) for part in indexes[2].vct.flat_parts()],
            [list(part) for part in indexes[2].ecs.flat_parts()],
        ]
        delta_fold(base, indexes, batch)
        after = [
            [list(part) for part in indexes[2].vct.flat_parts()],
            [list(part) for part in indexes[2].ecs.flat_parts()],
        ]
        assert before == after
        assert base.num_edges == len(base_edges)


class TestFallbacks:
    def test_no_indexes(self):
        base = TemporalGraph(stream(0, 50))
        with pytest.raises(FoldFallback) as err:
            delta_fold(base, {}, [("n0", "n1", 10**6)])
        assert err.value.reason == "no-indexes"

    def test_window_fraction_refuses_hostile_batches(self):
        base_edges = stream(0, 100)
        t = max(e[2] for e in base_edges)
        base = TemporalGraph(base_edges)
        indexes = build_core_indexes(base, (2,))
        # Wire brand-new vertices to >= 2 partners each: their entries
        # change at every start, so the window is the whole span.
        batch = [
            ("y1", "y2", t + 1),
            ("y1", "y3", t + 1),
            ("y2", "y3", t + 2),
        ]
        with pytest.raises(FoldFallback) as err:
            delta_fold(base, indexes, batch, max_window_fraction=0.01)
        assert err.value.reason == "window-fraction"
        # Without the bound the same batch folds, correctly.
        result = delta_fold(base, indexes, batch)
        oracle = build_core_indexes(TemporalGraph(base_edges + batch), (2,))
        assert_indexes_equal(result.indexes, oracle, (2,))

    def test_cascade_limit(self):
        base_edges = stream(0, 150)
        base = TemporalGraph(base_edges)
        indexes = build_core_indexes(base, (2,))
        batch = frontier_batch(base_edges, 77, 30)
        with pytest.raises(FoldFallback) as err:
            delta_fold(base, indexes, batch, max_cascade=1)
        assert err.value.reason == "cascade-limit"
