"""Bit-for-bit agreement with the paper's published worked example.

Tables I and II and Figure 2 of the paper are transcribed in
:mod:`repro.datasets.paper_example`; these tests assert the pipeline
reproduces them exactly.  (Table I's ``v3`` entry is corrected — see the
note in the dataset module and EXPERIMENTS.md.)
"""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.core.coretime import compute_core_times
from repro.core.enumerate import enumerate_temporal_kcores
from repro.datasets.paper_example import (
    PAPER_CORES_RANGE_1_4_K2,
    PAPER_ECS_K2,
    PAPER_VCT_K2,
)
from tests.conftest import canonical_triples


@pytest.fixture(scope="module")
def example():
    from repro.datasets.paper_example import paper_example_graph

    graph = paper_example_graph()
    return graph, compute_core_times(graph, 2)


class TestTable1:
    @pytest.mark.parametrize("vertex", sorted(PAPER_VCT_K2))
    def test_vct_entries_match(self, example, vertex):
        graph, result = example
        computed = tuple(result.vct.entries_of(graph.id_of(vertex)))
        assert computed == PAPER_VCT_K2[vertex]

    def test_vct_size(self, example):
        _, result = example
        assert result.vct.size() == sum(len(v) for v in PAPER_VCT_K2.values())

    def test_example2_core_time_lookups(self, example):
        """Example 2 of the paper: CT_1(v1) = 3 and CT_3(v1) = 5."""
        graph, result = example
        v1 = graph.id_of("v1")
        assert result.vct.core_time(v1, 1) == 3
        assert result.vct.core_time(v1, 3) == 5

    def test_interpolated_start_times(self, example):
        """Entry [1,3] of v1 covers ts=2 as well (Example 3)."""
        graph, result = example
        v1 = graph.id_of("v1")
        assert result.vct.core_time(v1, 2) == 3

    def test_infinite_core_times(self, example):
        graph, result = example
        assert result.vct.core_time(graph.id_of("v9"), 2) is None
        assert result.vct.core_time(graph.id_of("v2"), 4) is None


class TestTable2:
    def test_every_edge_skyline_matches(self, example):
        graph, result = example
        assert result.ecs is not None
        for eid, (u, v, t) in enumerate(graph.edges):
            lu, lv = graph.label_of(u), graph.label_of(v)
            published = PAPER_ECS_K2.get((lu, lv, t)) or PAPER_ECS_K2.get((lv, lu, t))
            assert published is not None, f"edge ({lu}, {lv}, {t}) missing"
            assert result.ecs.windows_of(eid) == published

    def test_ecs_size(self, example):
        _, result = example
        assert result.ecs.size() == sum(len(w) for w in PAPER_ECS_K2.values())

    def test_example4_minimal_window(self, example):
        """(v2, v9) has the single minimal core window [1, 4]."""
        graph, result = example
        eid = next(
            i for i, (u, v, t) in enumerate(graph.edges)
            if {graph.label_of(u), graph.label_of(v)} == {"v2", "v9"}
        )
        assert result.ecs.windows_of(eid) == ((1, 4),)

    def test_skyline_invariant(self, example):
        _, result = example
        result.ecs.check_skyline_invariant()


class TestFigure2:
    def test_temporal_2cores_of_range_1_4(self, example):
        graph, _ = example
        result = enumerate_temporal_kcores(graph, 2, 1, 4)
        computed = {
            core.tti: canonical_triples(graph, core) for core in result
        }
        expected = {
            tti: frozenset(edges)
            for tti, edges in PAPER_CORES_RANGE_1_4_K2.items()
        }
        assert computed == expected

    def test_example9_range_1_6(self, example):
        """Example 9 enumerates range [1, 6]; spot-check TTI set."""
        graph, _ = example
        result = enumerate_temporal_kcores(graph, 2, 1, 6)
        oracle = enumerate_bruteforce(graph, 2, 1, 6)
        assert set(result.by_tti()) == set(oracle.by_tti())
        # The [1, 4] and [2, 3] cores survive; [2, 6] appears as well.
        assert {(1, 4), (2, 3), (2, 6)} <= set(result.by_tti())

    def test_full_span_count(self, example):
        graph, _ = example
        result = enumerate_temporal_kcores(graph, 2)
        oracle = enumerate_bruteforce(graph, 2)
        assert result.edge_sets() == oracle.edge_sets()
