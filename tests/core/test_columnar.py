"""Columnar serving path vs the seed list-based oracle.

The native VCT/ECS representation is offset-indexed flat arrays with
vectorised per-query answering (``restricted_to`` /
``active_window_arrays`` / ``core_members`` / ``query_batch``).  These
property tests re-implement the seed list-of-tuples semantics verbatim
— per-edge window scans, per-edge activation loops, per-vertex bisect
membership — and assert the vectorised paths return identical answers
over randomised graphs, ``k`` values and query windows, including
degenerate (empty-result) and full-span windows, plus a store round
trip of the native representation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.batch import run_mixed_batch, run_query_batch
from repro.core.coretime import compute_core_times
from repro.core.index import CoreIndex, CoreIndexRegistry
from repro.core.query import TimeRangeCoreQuery
from repro.graph.generators import uniform_random_temporal
from repro.store.index_store import IndexStore


# ----------------------------------------------------------------------
# Seed list-based oracle (pre-columnar semantics, kept verbatim)
# ----------------------------------------------------------------------

def oracle_restricted(skyline, ts: int, te: int) -> list[tuple[tuple[int, int], ...]]:
    """The seed ``EdgeCoreSkyline.restricted_to``: a per-edge Python scan."""
    return [
        tuple(w for w in skyline.windows_of(eid) if ts <= w[0] and w[1] <= te)
        for eid in range(skyline.num_edges)
    ]


def oracle_active_windows(
    windows_by_edge: list[tuple[tuple[int, int], ...]], ts_lo: int
) -> list[tuple[int, int, int, int]]:
    """The seed ``build_active_windows``: per-edge activation chaining.

    Returns ``(eid, start, end, active)`` tuples in per-edge order —
    the same order the columnar arrays use (edge-major, ascending
    start).
    """
    out: list[tuple[int, int, int, int]] = []
    for eid, windows in enumerate(windows_by_edge):
        previous_start: int | None = None
        for t1, t2 in windows:
            active = ts_lo if previous_start is None else previous_start + 1
            out.append((eid, t1, t2, active))
            previous_start = t1
    return out


def oracle_historical(vct, num_vertices: int, ts: int, te: int) -> set[int]:
    """The seed ``historical_core``: a per-vertex membership loop."""
    return {u for u in range(num_vertices) if vct.in_core(u, ts, te)}


def query_windows(tmax: int) -> list[tuple[int, int]]:
    """Full span, single instants, boundaries and interior sub-ranges."""
    windows = [
        (1, tmax),
        (1, 1),
        (tmax, tmax),
        (1, max(1, tmax - 1)),
        (2, tmax),
        (2, max(2, tmax - 2)),
        (max(1, tmax // 2), tmax),
        (max(1, tmax // 3), max(1, 2 * tmax // 3)),
    ]
    return sorted({(ts, te) for ts, te in windows if ts <= te})


@pytest.fixture(params=range(4))
def columnar_graph(request):
    """Seeded random multigraphs sized for exhaustive window sweeps."""
    return uniform_random_temporal(13, 90, tmax=15, seed=4000 + request.param)


class TestRestrictedToOracle:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_seed_scan_on_all_windows(self, columnar_graph, k):
        skyline = compute_core_times(columnar_graph, k).ecs
        for ts, te in query_windows(columnar_graph.tmax):
            narrowed = skyline.restricted_to(ts, te)
            expected = oracle_restricted(skyline, ts, te)
            assert narrowed.span == (ts, te)
            for eid in range(skyline.num_edges):
                assert narrowed.windows_of(eid) == expected[eid], (k, ts, te, eid)
            narrowed.check_skyline_invariant()

    def test_restriction_of_restriction(self, columnar_graph):
        skyline = compute_core_times(columnar_graph, 2).ecs
        tmax = columnar_graph.tmax
        once = skyline.restricted_to(2, tmax - 1)
        twice = once.restricted_to(3, tmax - 2)
        expected = oracle_restricted(skyline, 3, tmax - 2)
        for eid in range(skyline.num_edges):
            assert twice.windows_of(eid) == expected[eid]

    def test_empty_skyline(self, columnar_graph):
        """k above any degree: every window restriction is empty."""
        skyline = compute_core_times(columnar_graph, 40).ecs
        assert skyline.size() == 0
        narrowed = skyline.restricted_to(2, columnar_graph.tmax - 1)
        assert narrowed.size() == 0
        assert all(
            narrowed.windows_of(eid) == () for eid in range(narrowed.num_edges)
        )


class TestActiveWindowArraysOracle:
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_seed_activation(self, columnar_graph, k):
        skyline = compute_core_times(columnar_graph, k).ecs
        for ts, te in query_windows(columnar_graph.tmax):
            eids, starts, ends, actives = skyline.active_window_arrays(ts, te)
            expected = oracle_active_windows(oracle_restricted(skyline, ts, te), ts)
            got = list(
                zip(eids.tolist(), starts.tolist(), ends.tolist(), actives.tolist())
            )
            assert got == expected, (k, ts, te)

    def test_activation_bounds(self, columnar_graph):
        skyline = compute_core_times(columnar_graph, 2).ecs
        ts, te = 2, columnar_graph.tmax - 1
        _eids, starts, _ends, actives = skyline.active_window_arrays(ts, te)
        assert np.all(actives >= ts)
        assert np.all(actives <= starts)


class TestHistoricalCoreOracle:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_per_vertex_loop(self, columnar_graph, k):
        index = CoreIndex(columnar_graph, k)
        n = columnar_graph.num_vertices
        for ts, te in query_windows(columnar_graph.tmax):
            expected = oracle_historical(index.vct, n, ts, te)
            assert index.historical_core(ts, te) == expected, (k, ts, te)

    def test_members_are_plain_ints(self, columnar_graph):
        members = CoreIndex(columnar_graph, 2).historical_core(
            1, columnar_graph.tmax
        )
        assert all(type(u) is int for u in members)

    def test_empty_vct(self, columnar_graph):
        index = CoreIndex(columnar_graph, 40)
        assert index.historical_core(1, columnar_graph.tmax) == set()


class TestBatchOracle:
    def test_query_batch_matches_enum_engine(self, columnar_graph):
        index = CoreIndex(columnar_graph, 2)
        ranges = query_windows(columnar_graph.tmax)
        results = index.query_batch(ranges, collect=True)
        for (ts, te), got in zip(ranges, results):
            fresh = TimeRangeCoreQuery(
                columnar_graph, 2, time_range=(ts, te), engine="enum"
            ).run()
            assert got.edge_sets() == fresh.edge_sets(), (ts, te)
            assert got.num_results == fresh.num_results
            assert got.total_edges == fresh.total_edges

    def test_run_query_batch_counts(self, columnar_graph):
        ranges = query_windows(columnar_graph.tmax)
        registry = CoreIndexRegistry(capacity=2)
        answers = run_query_batch(columnar_graph, 2, ranges, registry=registry)
        for (ts, te), answer in zip(ranges, answers):
            fresh = TimeRangeCoreQuery(
                columnar_graph, 2, time_range=(ts, te), engine="enum", collect=False
            ).run()
            assert answer.time_range == (ts, te)
            assert answer.num_results == fresh.num_results
            assert answer.total_edges == fresh.total_edges

    def test_mixed_batch_matches_per_query(self, columnar_graph):
        other = uniform_random_temporal(10, 60, tmax=12, seed=4999)
        queries = []
        for graph in (columnar_graph, other):
            for k in (2, 3):
                for ts, te in query_windows(graph.tmax)[:4]:
                    queries.append((graph, k, (ts, te)))
        registry = CoreIndexRegistry(capacity=8)
        answers = run_mixed_batch(queries, registry=registry)
        assert len(answers) == len(queries)
        for (graph, k, (ts, te)), answer in zip(queries, answers):
            fresh = TimeRangeCoreQuery(
                graph, k, time_range=(ts, te), engine="enum", collect=False
            ).run()
            assert answer.k == k
            assert answer.num_results == fresh.num_results
            assert answer.total_edges == fresh.total_edges

    def test_empty_batch(self, columnar_graph):
        assert CoreIndex(columnar_graph, 2).query_batch([]) == []

    def test_query_batch_rejects_range_outside_subspan_index(self, columnar_graph):
        """A sub-span index must reject out-of-span batch ranges like query()."""
        from repro.core.coretime import CoreTimeResult  # noqa: F401
        from repro.errors import InvalidParameterError

        tmax = columnar_graph.tmax
        result = compute_core_times(columnar_graph, 2, 4, tmax - 3)
        index = CoreIndex.from_core_times(columnar_graph, 2, result)
        with pytest.raises(InvalidParameterError):
            index.query_batch([(2, tmax - 1)])
        with pytest.raises(InvalidParameterError):
            index.query_batch([(5, 6), (4, tmax - 2)])
        # In-span ranges still answer, identically to query().
        inside = (5, tmax - 4)
        batch = index.query_batch([inside], collect=True)
        assert batch[0].edge_sets() == index.query(*inside).edge_sets()


class TestStoreRoundTripNative:
    """In-memory and on-disk layouts coincide: round trips are exact."""

    def test_flat_parts_survive_round_trip(self, tmp_path, columnar_graph):
        store = IndexStore(tmp_path / "store")
        index = CoreIndex(columnar_graph, 2)
        store.save_index(index)
        loaded = store.load_index(columnar_graph, 2)
        assert loaded is not None
        for built, reopened in (
            (index.vct.flat_parts(), loaded.vct.flat_parts()),
            (index.ecs.flat_parts(), loaded.ecs.flat_parts()),
        ):
            for a, b in zip(built, reopened):
                assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_loaded_index_serves_vectorised_queries(self, tmp_path, columnar_graph):
        store = IndexStore(tmp_path / "store")
        index = CoreIndex(columnar_graph, 2)
        store.save_index(index)
        loaded = store.load_index(columnar_graph, 2)
        assert loaded is not None
        for ts, te in query_windows(columnar_graph.tmax):
            assert (
                loaded.query(ts, te).edge_sets()
                == index.query(ts, te).edge_sets()
            )
            assert loaded.historical_core(ts, te) == index.historical_core(ts, te)
        narrowed = loaded.ecs.restricted_to(2, columnar_graph.tmax - 1)
        expected = oracle_restricted(index.ecs, 2, columnar_graph.tmax - 1)
        for eid in range(loaded.ecs.num_edges):
            assert narrowed.windows_of(eid) == expected[eid]

    def test_multik_build_round_trips_identically(self, tmp_path, columnar_graph):
        from repro.core.multik import build_core_indexes

        store = IndexStore(tmp_path / "store")
        built = build_core_indexes(columnar_graph, [2, 3])
        for index in built.values():
            store.save_index(index)
        for k, index in built.items():
            loaded = store.load_index(columnar_graph, k)
            assert loaded is not None
            for a, b in zip(index.ecs.flat_parts(), loaded.ecs.flat_parts()):
                assert np.array_equal(np.asarray(a), np.asarray(b))


class TestEvictionSpill:
    def test_evicted_index_spills_to_store(self, tmp_path, columnar_graph):
        store = IndexStore(tmp_path / "store")
        registry = CoreIndexRegistry(capacity=1, store=store)
        registry.get(columnar_graph, 2)
        assert store.has_index(columnar_graph, 2) is False
        registry.get(columnar_graph, 3)  # evicts k=2 -> spill
        assert registry.stats()["evict_spills"] == 1
        assert store.has_index(columnar_graph, 2) is True
        spilled = store.load_index(columnar_graph, 2)
        assert spilled is not None
        full = columnar_graph.tmax
        assert (
            spilled.query(1, full).edge_sets()
            == CoreIndex(columnar_graph, 2).query(1, full).edge_sets()
        )

    def test_already_persisted_eviction_is_not_recounted(
        self, tmp_path, columnar_graph
    ):
        store = IndexStore(tmp_path / "store")
        store.save_index(CoreIndex(columnar_graph, 2))
        registry = CoreIndexRegistry(capacity=1, store=store)
        registry.get(columnar_graph, 2)  # store hit
        registry.get(columnar_graph, 3)  # evicts k=2, already on disk
        assert registry.stats()["evict_spills"] == 0

    def test_eviction_without_store_is_silent(self, columnar_graph):
        registry = CoreIndexRegistry(capacity=1)
        registry.get(columnar_graph, 2)
        registry.get(columnar_graph, 3)
        assert registry.stats()["evict_spills"] == 0
        assert len(registry) == 1

    def test_repeated_thrash_spills_each_key_once(self, tmp_path, columnar_graph):
        """Capacity thrash re-evicts the same keys; each is persisted once."""
        store = IndexStore(tmp_path / "store")
        registry = CoreIndexRegistry(capacity=1, store=store)
        for _ in range(3):
            for k in (2, 3):
                registry.get(columnar_graph, k)
        assert registry.stats()["evict_spills"] == 2
        assert store.stored_ks(store.find(columnar_graph)) == [2, 3]

    def test_unpersistable_graph_spill_is_swallowed(self, tmp_path):
        from repro.graph.temporal_graph import TemporalGraph

        # Tuple labels cannot be persisted; the spill must not raise.
        graph = TemporalGraph(
            [(("a", 0), ("b", 0), 1), (("b", 0), ("c", 0), 1), (("a", 0), ("c", 0), 2)]
        )
        store = IndexStore(tmp_path / "store")
        registry = CoreIndexRegistry(capacity=1, store=store)
        registry.get(graph, 1)
        registry.get(graph, 2)
        assert registry.stats()["evict_spills"] == 0


class TestSpillPolicy:
    """Configurable eviction spill: always / never / build-cost threshold."""

    def test_parse_accepts_strings_policies_and_thresholds(self):
        from repro.core.index import SpillPolicy
        from repro.errors import InvalidParameterError

        assert SpillPolicy.parse("never").mode == "never"
        assert SpillPolicy.parse(SpillPolicy("cost", 2.0)).min_build_seconds == 2.0
        parsed = SpillPolicy.parse(0.5)
        assert parsed.mode == "cost" and parsed.min_build_seconds == 0.5
        with pytest.raises(InvalidParameterError):
            SpillPolicy.parse("sometimes")
        with pytest.raises(InvalidParameterError):
            SpillPolicy("cost", -1.0)
        with pytest.raises(InvalidParameterError):
            SpillPolicy.parse(None)

    def test_never_policy_drops_instead_of_spilling(self, tmp_path, columnar_graph):
        store = IndexStore(tmp_path / "store")
        registry = CoreIndexRegistry(
            capacity=1, store=store, spill_policy="never"
        )
        registry.get(columnar_graph, 2)
        registry.get(columnar_graph, 3)  # evicts k=2
        stats = registry.stats()
        assert stats["evict_spills"] == 0
        assert stats["evict_drops"] == 1
        assert stats["spill_policy"] == "never"
        assert store.has_index(columnar_graph, 2) is False

    def test_cost_threshold_vetoes_cheap_builds(self, tmp_path, columnar_graph):
        store = IndexStore(tmp_path / "store")
        registry = CoreIndexRegistry(
            capacity=1, store=store, spill_policy=3600.0
        )
        registry.get(columnar_graph, 2)  # tiny build, far below an hour
        registry.get(columnar_graph, 3)
        stats = registry.stats()
        assert stats["evict_spills"] == 0
        assert stats["evict_drops"] == 1
        assert stats["spill_policy"] == "cost>=3600s"

    def test_cost_threshold_spills_expensive_builds(self, tmp_path, columnar_graph):
        store = IndexStore(tmp_path / "store")
        registry = CoreIndexRegistry(
            capacity=1, store=store, spill_policy=0.0
        )
        registry.get(columnar_graph, 2)
        registry.get(columnar_graph, 3)
        stats = registry.stats()
        assert stats["evict_spills"] == 1
        assert stats["evict_drops"] == 0
        assert store.has_index(columnar_graph, 2) is True

    def test_build_seconds_recorded_on_every_construction_path(
        self, tmp_path, columnar_graph
    ):
        from repro.core.multik import build_core_indexes

        direct = CoreIndex(columnar_graph, 2)
        assert direct.build_seconds > 0.0
        built = build_core_indexes(columnar_graph, [2, 3])
        assert all(index.build_seconds > 0.0 for index in built.values())
        store = IndexStore(tmp_path / "store")
        store.save_index(direct)
        loaded = store.load_index(columnar_graph, 2)
        assert loaded is not None
        assert loaded.build_seconds == 0.0  # disk loads are free to re-lose

    def test_store_loaded_entries_never_respill(self, tmp_path, columnar_graph):
        store = IndexStore(tmp_path / "store")
        store.save_index(CoreIndex(columnar_graph, 2))
        registry = CoreIndexRegistry(
            capacity=1, store=store, spill_policy=0.0
        )
        registry.get(columnar_graph, 2)  # store hit
        registry.get(columnar_graph, 3)  # evicts the store-loaded k=2
        stats = registry.stats()
        assert stats["evict_spills"] == 0
        assert stats["evict_drops"] == 0  # known-persisted: policy not consulted
