"""Vertex core times: reference equivalence, monotonicity, index lookups."""

from __future__ import annotations

import pytest

from repro.core.coretime import (
    VertexCoreTimeIndex,
    compute_core_times,
    compute_vertex_core_times,
    core_time_by_rescan,
)
from repro.errors import InvalidParameterError
from repro.graph.snapshot import Snapshot
from repro.graph.static_core import snapshot_k_core
from repro.graph.temporal_graph import TemporalGraph


def brute_force_core_time(graph, k, ts, u):
    """Reference CT_ts(u): scan end times and peel every window."""
    for te in range(ts, graph.tmax + 1):
        members = snapshot_k_core(Snapshot.from_graph(graph, ts, te), k)
        if u in members:
            return te
    return None


class TestAgainstBruteForce:
    @pytest.mark.parametrize("k", [2, 3])
    def test_all_core_times_match(self, random_graph, k):
        vct = compute_vertex_core_times(random_graph, k)
        for ts in range(1, random_graph.tmax + 1):
            for u in range(random_graph.num_vertices):
                expected = brute_force_core_time(random_graph, k, ts, u)
                assert vct.core_time(u, ts) == expected, (u, ts)

    def test_rescan_matches_index(self, random_graph):
        vct = compute_vertex_core_times(random_graph, 2)
        for ts in (1, random_graph.tmax // 2, random_graph.tmax):
            rescan = core_time_by_rescan(random_graph, 2, ts, random_graph.tmax)
            for u in range(random_graph.num_vertices):
                assert rescan.get(u) == vct.core_time(u, ts)


class TestStructure:
    def test_monotone_in_start_time(self, random_graph):
        vct = compute_vertex_core_times(random_graph, 2)
        for u in range(random_graph.num_vertices):
            series = [
                vct.core_time(u, ts) for ts in range(1, random_graph.tmax + 1)
            ]
            for earlier, later in zip(series, series[1:]):
                if earlier is None:
                    assert later is None  # infinity is absorbing
                elif later is not None:
                    assert later >= earlier

    def test_core_time_at_least_start(self, random_graph):
        vct = compute_vertex_core_times(random_graph, 2)
        for u in range(random_graph.num_vertices):
            for ts, ct in vct.entries_of(u):
                assert ct is None or ct >= ts

    def test_entries_strictly_increasing_starts(self, random_graph):
        vct = compute_vertex_core_times(random_graph, 2)
        for u in range(random_graph.num_vertices):
            starts = [s for s, _ in vct.entries_of(u)]
            assert starts == sorted(set(starts))

    def test_entry_values_change_at_each_transition(self, random_graph):
        vct = compute_vertex_core_times(random_graph, 2)
        for u in range(random_graph.num_vertices):
            values = [c for _, c in vct.entries_of(u)]
            for a, b in zip(values, values[1:]):
                assert a != b

    def test_in_core_predicate(self, paper_graph):
        vct = compute_vertex_core_times(paper_graph, 2)
        v1 = paper_graph.id_of("v1")
        assert vct.in_core(v1, 1, 3)
        assert not vct.in_core(v1, 1, 2)
        assert vct.in_core(v1, 3, 5)
        assert not vct.in_core(v1, 7, 7)

    def test_size_counts_entries(self, paper_graph):
        vct = compute_vertex_core_times(paper_graph, 2)
        assert vct.size() == sum(
            len(vct.entries_of(u)) for u in range(paper_graph.num_vertices)
        )


class TestSubrangeAndEdgeCases:
    def test_subrange_computation(self, paper_graph):
        vct = compute_vertex_core_times(paper_graph, 2, 2, 5)
        v1 = paper_graph.id_of("v1")
        # Within [2, 5]: CT_2(v1) = 3 still holds (window [2,3] core).
        assert vct.core_time(v1, 2) == 3
        # CT_4(v1) within span ending at 5: the v1 core at [4..5] needs
        # the t=5 triangle, so core time is 5.
        assert vct.core_time(v1, 4) == 5

    def test_query_outside_span_raises(self, paper_graph):
        vct = compute_vertex_core_times(paper_graph, 2, 2, 5)
        with pytest.raises(InvalidParameterError):
            vct.core_time(0, 1)
        with pytest.raises(InvalidParameterError):
            vct.core_time(0, 6)

    def test_k_too_large_gives_empty_index(self, paper_graph):
        vct = compute_vertex_core_times(paper_graph, 5)
        assert vct.size() == 0
        assert vct.core_time(0, 1) is None

    def test_invalid_k_raises(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            compute_vertex_core_times(paper_graph, 0)

    def test_single_timestamp_span(self):
        g = TemporalGraph([("a", "b", 1), ("b", "c", 1), ("a", "c", 1)])
        vct = compute_vertex_core_times(g, 2)
        for label in "abc":
            assert vct.core_time(g.id_of(label), 1) == 1

    def test_vertex_never_in_core_has_no_entries(self, paper_graph):
        # k=4: nothing in the example reaches a 4-core.
        vct = compute_vertex_core_times(paper_graph, 4)
        for u in range(paper_graph.num_vertices):
            assert vct.entries_of(u) == []

    def test_multi_edge_pair_counts_once(self):
        # Parallel (a, b) edges never satisfy k=2 alone: degree counts
        # distinct neighbours.
        g = TemporalGraph([("a", "b", 1), ("a", "b", 2), ("a", "b", 3)])
        vct = compute_vertex_core_times(g, 2)
        assert vct.size() == 0

    def test_multi_edge_triangle(self):
        # Triangle completed at t=3; repeats of (a,b) shouldn't distort.
        g = TemporalGraph(
            [("a", "b", 1), ("a", "b", 2), ("b", "c", 2), ("a", "c", 3)]
        )
        vct = compute_vertex_core_times(g, 2)
        for label in "abc":
            assert vct.core_time(g.id_of(label), 1) == 3

    def test_with_skyline_flag_off(self, paper_graph):
        result = compute_core_times(paper_graph, 2, with_skyline=False)
        assert result.ecs is None
        assert result.vct.size() > 0

    def test_index_type(self, paper_graph):
        result = compute_core_times(paper_graph, 2)
        assert isinstance(result.vct, VertexCoreTimeIndex)
        assert result.vct.k == 2
        assert result.vct.span == (1, 7)
