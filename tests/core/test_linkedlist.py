"""WindowList (the doubly linked L_ts) unit tests."""

from __future__ import annotations

import pytest

from repro.core.linkedlist import WindowList
from repro.core.windows import ActiveWindow


def _w(start, end, edge_id=0, active=1):
    return ActiveWindow(start, end, edge_id, active)


class TestWindowList:
    def test_empty(self):
        lst = WindowList()
        assert lst.is_empty()
        assert lst.first is None
        assert lst.to_list() == []

    def test_insert_sorted_batch_into_empty(self):
        lst = WindowList()
        batch = [_w(1, 2), _w(1, 4), _w(2, 5)]
        lst.insert_sorted_batch(batch)
        assert [w.end for w in lst] == [2, 4, 5]

    def test_interleaved_batches_stay_sorted(self):
        lst = WindowList()
        lst.insert_sorted_batch([_w(1, 2), _w(1, 6)])
        lst.insert_sorted_batch([_w(2, 1), _w(2, 4), _w(2, 9)])
        assert [w.end for w in lst] == [1, 2, 4, 6, 9]
        lst.check_sorted()

    def test_equal_end_times_coexist(self):
        lst = WindowList()
        lst.insert_sorted_batch([_w(1, 3), _w(2, 3)])
        lst.insert_sorted_batch([_w(3, 3)])
        assert [w.end for w in lst] == [3, 3, 3]

    def test_delete_middle(self):
        lst = WindowList()
        a, b, c = _w(1, 1), _w(1, 2), _w(1, 3)
        lst.insert_sorted_batch([a, b, c])
        lst.delete(b)
        assert lst.to_list() == [a, c]
        assert a.next is c and c.prev is a

    def test_delete_head_and_tail(self):
        lst = WindowList()
        a, b, c = _w(1, 1), _w(1, 2), _w(1, 3)
        lst.insert_sorted_batch([a, b, c])
        lst.delete(a)
        lst.delete(c)
        assert lst.to_list() == [b]

    def test_delete_only_element(self):
        lst = WindowList()
        a = _w(1, 1)
        lst.insert_sorted_batch([a])
        lst.delete(a)
        assert lst.is_empty()

    def test_delete_unlinked_raises(self):
        lst = WindowList()
        with pytest.raises(ValueError):
            lst.delete(_w(1, 1))

    def test_deleted_node_is_detached(self):
        lst = WindowList()
        a, b = _w(1, 1), _w(1, 2)
        lst.insert_sorted_batch([a, b])
        lst.delete(a)
        assert a.prev is None and a.next is None

    def test_check_sorted_catches_violation(self):
        lst = WindowList()
        a, b = _w(1, 5), _w(1, 2)
        # Force a bad order through the low-level primitive.
        lst.insert_sorted_batch([a])
        lst.insert_after(b, a)
        with pytest.raises(AssertionError):
            lst.check_sorted()

    def test_reinsert_after_delete(self):
        lst = WindowList()
        a, b = _w(1, 1), _w(1, 3)
        lst.insert_sorted_batch([a, b])
        lst.delete(a)
        lst.insert_sorted_batch([_w(2, 2)])
        assert [w.end for w in lst] == [2, 3]
