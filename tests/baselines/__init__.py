"""Test package."""
