"""PruneRegistry: PoU/PoL box registration and per-start queries."""

from __future__ import annotations

import pytest

from repro.baselines.pruning import PruneRegistry


class TestRegistry:
    def test_no_rules_no_pruning(self):
        registry = PruneRegistry((1, 10))
        assert registry.pruned_ends_for(3) == []

    def test_pou_box(self):
        registry = PruneRegistry((1, 10))
        # Core at window [2, 9] with TTI [4, 7]: PoU prunes starts 3..4,
        # ends 7..9; PoL prunes starts 5.., ends 8..9.
        registry.register_from_tti((2, 9), (4, 7))
        assert registry.pruned_ends_for(3) == [(7, 9)]
        assert registry.pruned_ends_for(4) == [(7, 9)]

    def test_pol_box(self):
        registry = PruneRegistry((1, 10))
        registry.register_from_tti((2, 9), (4, 7))
        assert registry.pruned_ends_for(5) == [(8, 9)]
        # At start 10 the PoL ends (8..9) lie before the start: clamped away.
        assert registry.pruned_ends_for(10) == []

    def test_tti_equal_window_registers_nothing(self):
        registry = PruneRegistry((1, 10))
        registry.register_from_tti((2, 9), (2, 9))
        assert registry.num_rules_live == 0

    def test_tti_same_start_no_pou(self):
        registry = PruneRegistry((1, 10))
        # ts' == a: neither PoU nor PoL applies (PoR is handled locally).
        registry.register_from_tti((2, 9), (2, 5))
        assert registry.pruned_ends_for(3) == []

    def test_intervals_merge(self):
        registry = PruneRegistry((1, 20))
        registry.register_from_tti((1, 10), (3, 6))
        registry.register_from_tti((1, 12), (3, 8))
        merged = registry.pruned_ends_for(2)
        assert merged == [(6, 12)]

    def test_expired_rules_dropped(self):
        registry = PruneRegistry((1, 10))
        registry.register_from_tti((2, 9), (4, 7))  # PoU expires after 4
        registry.pruned_ends_for(6)
        # Only the PoL rule (starts 5..10) should remain live.
        assert registry.num_rules_live == 1

    def test_ends_clamped_to_start(self):
        registry = PruneRegistry((1, 10))
        registry.register_from_tti((2, 9), (4, 3 + 1))  # TTI [4, 4]
        intervals = registry.pruned_ends_for(4)
        assert all(lo >= 4 for lo, _ in intervals)

    def test_bad_nesting_rejected(self):
        registry = PruneRegistry((1, 10))
        with pytest.raises(ValueError):
            registry.register_from_tti((5, 6), (4, 6))
