"""OTCD: oracle equivalence, pruning behaviour, state mechanics."""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.baselines.otcd import _CoreState, enumerate_otcd
from repro.errors import InvalidParameterError
from repro.obs.timing import Deadline


class TestEquivalence:
    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("use_pruning", [True, False])
    def test_matches_oracle(self, random_graph, k, use_pruning):
        otcd = enumerate_otcd(random_graph, k, use_pruning=use_pruning)
        oracle = enumerate_bruteforce(random_graph, k)
        assert otcd.edge_sets() == oracle.edge_sets()
        assert set(otcd.by_tti()) == set(oracle.by_tti())

    def test_paper_example_range(self, paper_graph):
        result = enumerate_otcd(paper_graph, 2, 1, 4)
        assert set(result.by_tti()) == {(1, 4), (2, 3)}

    def test_no_duplicates(self, random_graph):
        result = enumerate_otcd(random_graph, 2)
        assert len(result.edge_sets()) == result.num_results

    def test_pruning_and_unpruned_identical(self, random_graph):
        pruned = enumerate_otcd(random_graph, 2)
        unpruned = enumerate_otcd(random_graph, 2, use_pruning=False)
        assert pruned.edge_sets() == unpruned.edge_sets()


class TestBehaviour:
    def test_streaming_counts(self, random_graph):
        collected = enumerate_otcd(random_graph, 2)
        streamed = enumerate_otcd(random_graph, 2, collect=False)
        assert streamed.num_results == collected.num_results
        assert streamed.total_edges == collected.total_edges

    def test_deadline(self, random_graph):
        result = enumerate_otcd(random_graph, 2, deadline=Deadline(0.0))
        assert not result.completed

    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            enumerate_otcd(paper_graph, 0)

    def test_empty_when_k_too_large(self, paper_graph):
        result = enumerate_otcd(paper_graph, 9)
        assert result.num_results == 0

    def test_algorithm_labels(self, paper_graph):
        assert enumerate_otcd(paper_graph, 2).algorithm == "otcd"
        assert (
            enumerate_otcd(paper_graph, 2, use_pruning=False).algorithm
            == "otcd-nopruning"
        )


class TestCoreState:
    def test_initial_state_is_peeled_core(self, paper_graph):
        state = _CoreState.initial(paper_graph, 2, 1, 4)
        assert state.num_edges == 6
        assert state.tti() == (1, 4)

    def test_shrink_end_reaches_inner_core(self, paper_graph):
        state = _CoreState.initial(paper_graph, 2, 1, 4)
        state.shrink_end_to(3, 4)
        assert state.tti() == (2, 3)
        assert state.num_edges == 3

    def test_shrink_to_empty(self, paper_graph):
        state = _CoreState.initial(paper_graph, 2, 1, 4)
        state.shrink_end_to(2, 4)
        assert state.is_empty()

    def test_remove_from_left(self, paper_graph):
        state = _CoreState.initial(paper_graph, 2, 1, 4)
        state.remove_edges_at(1, from_left=True)
        # Without (v2, v9, 1): the [2, 3] triangle core plus (v2,v3,2),
        # (v3,v9,4)... peeling drops v9/v3 leaves the triangle.
        assert state.tti() == (2, 3)
        assert state.num_edges == 3

    def test_copy_is_independent(self, paper_graph):
        state = _CoreState.initial(paper_graph, 2, 1, 4)
        clone = state.copy()
        clone.shrink_end_to(2, 4)
        assert clone.is_empty()
        assert state.num_edges == 6

    def test_tti_of_empty_core_raises(self, paper_graph):
        state = _CoreState.initial(paper_graph, 2, 1, 4)
        state.shrink_end_to(2, 4)
        with pytest.raises(ValueError):
            state.tti()

    def test_edge_ids_sorted(self, paper_graph):
        state = _CoreState.initial(paper_graph, 2, 1, 4)
        ids = state.edge_ids()
        assert ids == sorted(ids)
