"""Historical k-core queries and the multi-k PHC index."""

from __future__ import annotations

import pytest

from repro.baselines.historical import (
    PHCIndex,
    historical_core_edge_ids,
    historical_core_vertices,
)
from repro.core.coretime import compute_vertex_core_times
from repro.errors import InvalidParameterError
from repro.graph.snapshot import Snapshot
from repro.graph.static_core import snapshot_k_core
from repro.graph.validation import exact_core_edge_ids


class TestHistoricalQueries:
    def test_vertices_match_peeling_everywhere(self, random_graph):
        vct = compute_vertex_core_times(random_graph, 2)
        for ts in range(1, random_graph.tmax + 1):
            for te in (ts, (ts + random_graph.tmax) // 2, random_graph.tmax):
                expected = snapshot_k_core(
                    Snapshot.from_graph(random_graph, ts, te), 2
                )
                got = historical_core_vertices(random_graph, vct, ts, te)
                assert got == expected, (ts, te)

    def test_edges_match_peeling(self, paper_graph):
        vct = compute_vertex_core_times(paper_graph, 2)
        for ts, te in [(1, 4), (2, 3), (3, 5), (1, 7), (6, 7)]:
            got = set(historical_core_edge_ids(paper_graph, vct, ts, te))
            assert got == exact_core_edge_ids(paper_graph, 2, ts, te)

    def test_empty_core_window(self, paper_graph):
        vct = compute_vertex_core_times(paper_graph, 2)
        assert historical_core_vertices(paper_graph, vct, 7, 7) == set()
        assert historical_core_edge_ids(paper_graph, vct, 7, 7) == []


class TestPHCIndex:
    def test_max_k_inferred(self, paper_graph):
        index = PHCIndex(paper_graph)
        assert index.max_k == 2  # the example graph is a 2-core at best

    def test_queries_across_levels(self, paper_graph):
        index = PHCIndex(paper_graph)
        core2 = index.query(2, 1, 4)
        assert {paper_graph.label_of(u) for u in core2} == {
            "v1", "v2", "v3", "v4", "v9",
        }
        core1 = index.query(1, 1, 1)
        assert {paper_graph.label_of(u) for u in core1} == {"v2", "v9"}

    def test_levels_cached(self, paper_graph):
        index = PHCIndex(paper_graph)
        assert index.level(2) is index.level(2)

    def test_build_all_and_size(self, paper_graph):
        index = PHCIndex(paper_graph)
        index.build_all()
        assert index.size() >= index.level(2).size()

    def test_out_of_range_k(self, paper_graph):
        index = PHCIndex(paper_graph)
        with pytest.raises(InvalidParameterError):
            index.level(0)
        with pytest.raises(InvalidParameterError):
            index.level(3)

    def test_explicit_max_k(self, paper_graph):
        index = PHCIndex(paper_graph, max_k=1)
        assert index.max_k == 1

    def test_levels_match_peeling(self, random_graph):
        index = PHCIndex(random_graph)
        tmax = random_graph.tmax
        for k in range(1, index.max_k + 1):
            for ts, te in [(1, tmax), (2, tmax - 1)]:
                if ts > te:
                    continue
                expected = snapshot_k_core(
                    Snapshot.from_graph(random_graph, ts, te), k
                )
                assert index.query(k, ts, te) == expected
