"""The brute-force oracle's own sanity checks."""

from __future__ import annotations

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.graph.validation import (
    exact_core_edge_ids,
    is_k_core_subgraph,
    tightest_time_interval,
)
from repro.obs.timing import Deadline


class TestBruteForce:
    def test_paper_example_figure2(self, paper_graph):
        result = enumerate_bruteforce(paper_graph, 2, 1, 4)
        assert set(result.by_tti()) == {(1, 4), (2, 3)}

    def test_results_are_cohesive(self, random_graph):
        result = enumerate_bruteforce(random_graph, 2)
        for core in result:
            ts, te = core.tti
            assert is_k_core_subgraph(random_graph, set(core.edge_ids), 2, ts, te)

    def test_results_are_maximal(self, random_graph):
        result = enumerate_bruteforce(random_graph, 2)
        for core in result:
            ts, te = core.tti
            assert set(core.edge_ids) == exact_core_edge_ids(random_graph, 2, ts, te)

    def test_ttis_are_tight(self, random_graph):
        result = enumerate_bruteforce(random_graph, 2)
        for core in result:
            assert core.tti == tightest_time_interval(
                random_graph, set(core.edge_ids)
            )

    def test_no_duplicates(self, random_graph):
        result = enumerate_bruteforce(random_graph, 2)
        assert len(result.edge_sets()) == result.num_results

    def test_deadline(self, random_graph):
        assert not enumerate_bruteforce(
            random_graph, 2, deadline=Deadline(0.0)
        ).completed

    def test_streaming(self, paper_graph):
        streamed = enumerate_bruteforce(paper_graph, 2, collect=False)
        assert streamed.cores is None
        assert streamed.num_results == 13
