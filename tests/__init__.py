"""Test package."""
