"""Snapshot (window projection) behaviour."""

from __future__ import annotations

from repro.graph.snapshot import Snapshot
from repro.graph.temporal_graph import TemporalGraph


class TestSnapshot:
    def test_window_filtering(self, paper_graph):
        snap = Snapshot.from_graph(paper_graph, 2, 4)
        assert snap.num_static_edges == 6
        assert snap.window == (2, 4)

    def test_parallel_edges_collapse(self):
        g = TemporalGraph([("a", "b", 1), ("a", "b", 2), ("b", "c", 2)])
        snap = Snapshot.from_graph(g, 1, 2)
        assert snap.num_static_edges == 2
        a, b = g.id_of("a"), g.id_of("b")
        assert len(snap.temporal_edge_ids(a, b)) == 2

    def test_temporal_edge_ids_orderless(self):
        g = TemporalGraph([("a", "b", 1)])
        snap = Snapshot.from_graph(g, 1, 1)
        a, b = g.id_of("a"), g.id_of("b")
        assert snap.temporal_edge_ids(a, b) == snap.temporal_edge_ids(b, a)

    def test_degree_counts_distinct_neighbours(self):
        g = TemporalGraph([("a", "b", 1), ("a", "b", 2), ("a", "c", 1)])
        snap = Snapshot.from_graph(g, 1, 2)
        assert snap.degree(g.id_of("a")) == 2

    def test_isolated_vertex_has_empty_neighbours(self, paper_graph):
        snap = Snapshot.from_graph(paper_graph, 1, 1)
        assert snap.neighbours(paper_graph.id_of("v5")) == set()
        assert snap.degree(paper_graph.id_of("v5")) == 0

    def test_active_vertices(self, paper_graph):
        snap = Snapshot.from_graph(paper_graph, 1, 1)
        assert snap.num_active_vertices == 2  # only v2, v9 interact at t=1
        assert snap.num_vertices == 9

    def test_induced_temporal_edge_ids(self, paper_graph):
        snap = Snapshot.from_graph(paper_graph, 1, 4)
        members = {paper_graph.id_of(n) for n in ("v1", "v2", "v4")}
        ids = snap.induced_temporal_edge_ids(members)
        triples = {
            tuple(sorted((paper_graph.label_of(paper_graph.edges[e].u),
                          paper_graph.label_of(paper_graph.edges[e].v))))
            for e in ids
        }
        assert triples == {("v1", "v4"), ("v1", "v2"), ("v2", "v4")}

    def test_pairs_iteration_canonical(self, paper_graph):
        snap = Snapshot.from_graph(paper_graph, 1, 7)
        for u, v in snap.pairs():
            assert u < v

    def test_repr(self, paper_graph):
        snap = Snapshot.from_graph(paper_graph, 1, 4)
        assert "window=[1, 4]" in repr(snap)
