"""Synthetic generator behaviour: determinism, sizing, validation."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.graph.generators import (
    BurstyConfig,
    chung_lu_temporal,
    generate_bursty,
    planted_bursts,
    uniform_random_temporal,
)
from repro.graph.validation import check_graph_invariants


class TestChungLu:
    def test_edge_count_exact(self):
        triples = chung_lu_temporal(50, 400, tmax=100, seed=1)
        assert len(triples) == 400

    def test_no_self_loops(self):
        triples = chung_lu_temporal(20, 300, tmax=50, seed=2)
        assert all(u != v for u, v, _ in triples)

    def test_timestamps_in_range(self):
        triples = chung_lu_temporal(20, 300, tmax=50, seed=3)
        assert all(1 <= t <= 50 for _, _, t in triples)

    def test_deterministic_under_seed(self):
        a = chung_lu_temporal(30, 200, tmax=40, seed=9)
        b = chung_lu_temporal(30, 200, tmax=40, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = chung_lu_temporal(30, 200, tmax=40, seed=1)
        b = chung_lu_temporal(30, 200, tmax=40, seed=2)
        assert a != b

    def test_repeat_rate_produces_parallel_edges(self):
        triples = chung_lu_temporal(30, 500, tmax=60, seed=4, repeat_rate=0.6)
        pairs = {(min(u, v), max(u, v)) for u, v, _ in triples}
        assert len(pairs) < 500 * 0.8  # clear pair repetition

    def test_degree_skew(self):
        triples = chung_lu_temporal(200, 2000, tmax=100, seed=5, exponent=2.1)
        degree: dict[int, int] = {}
        for u, v, _ in triples:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        top = max(degree.values())
        mean = sum(degree.values()) / len(degree)
        assert top > 5 * mean  # heavy tail

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vertices": 1, "num_edges": 10, "tmax": 5},
            {"num_vertices": 10, "num_edges": 10, "tmax": 0},
            {"num_vertices": 10, "num_edges": 10, "tmax": 5, "repeat_rate": 1.0},
            {"num_vertices": 10, "num_edges": 10, "tmax": 5, "exponent": 1.0},
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            chung_lu_temporal(**{"seed": 0, **kwargs})


class TestPlantedBursts:
    def test_burst_edges_confined_to_group_and_window(self):
        triples = planted_bursts(
            100, tmax=50, num_bursts=1, burst_size=8, burst_width=5,
            edges_per_burst=40, seed=7,
        )
        vertices = {u for u, _, _ in triples} | {v for _, v, _ in triples}
        times = {t for _, _, t in triples}
        assert len(vertices) <= 8
        assert max(times) - min(times) < 5

    def test_burst_density_supports_core(self):
        # 60 samples over 8 vertices: expect a dense group with min
        # distinct degree >= 3.
        triples = planted_bursts(
            50, tmax=20, num_bursts=1, burst_size=8, burst_width=3,
            edges_per_burst=60, seed=8,
        )
        neighbours: dict[int, set[int]] = {}
        for u, v, _ in triples:
            neighbours.setdefault(u, set()).add(v)
            neighbours.setdefault(v, set()).add(u)
        assert min(len(s) for s in neighbours.values()) >= 3

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            planted_bursts(5, tmax=10, num_bursts=1, burst_size=6,
                           burst_width=2, edges_per_burst=5)
        with pytest.raises(InvalidParameterError):
            planted_bursts(50, tmax=10, num_bursts=1, burst_size=5,
                           burst_width=11, edges_per_burst=5)


class TestBurstyConfig:
    def test_total_edges(self):
        config = BurstyConfig(
            num_vertices=50, background_edges=100, tmax=40,
            num_bursts=3, edges_per_burst=20,
        )
        assert config.total_edges() == 160

    def test_generate_produces_valid_graph(self):
        config = BurstyConfig(
            num_vertices=60, background_edges=300, tmax=80,
            num_bursts=4, burst_size=8, burst_width=6, edges_per_burst=40,
            seed=12,
        )
        graph = generate_bursty(config)
        assert graph.num_edges == config.total_edges()
        check_graph_invariants(graph)

    def test_generation_deterministic(self):
        config = BurstyConfig(
            num_vertices=40, background_edges=150, tmax=30, num_bursts=2,
            seed=5,
        )
        assert generate_bursty(config).edges == generate_bursty(config).edges

    def test_background_only(self):
        config = BurstyConfig(num_vertices=30, background_edges=100, tmax=20)
        assert generate_bursty(config).num_edges == 100

    def test_bursts_only(self):
        config = BurstyConfig(
            num_vertices=30, background_edges=0, tmax=20,
            num_bursts=2, burst_size=6, burst_width=4, edges_per_burst=25,
        )
        assert generate_bursty(config).num_edges == 50


class TestUniformRandom:
    def test_shape_and_determinism(self):
        g1 = uniform_random_temporal(10, 50, tmax=8, seed=3)
        g2 = uniform_random_temporal(10, 50, tmax=8, seed=3)
        assert g1.num_edges == 50
        assert g1.edges == g2.edges
        check_graph_invariants(g1)
