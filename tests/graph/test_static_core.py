"""Static k-core engine vs networkx and hand-built cases."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph.generators import uniform_random_temporal
from repro.graph.snapshot import Snapshot
from repro.graph.static_core import (
    DecrementalCore,
    core_decomposition,
    kmax_of,
    peel_k_core,
    snapshot_k_core,
)


def _random_adjacency(seed: int, n: int = 30, m: int = 120) -> dict[int, set[int]]:
    graph = uniform_random_temporal(n, m, tmax=5, seed=seed)
    adjacency: dict[int, set[int]] = {}
    for u, v, _ in graph.edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    return adjacency


def _as_networkx(adjacency: dict[int, set[int]]) -> nx.Graph:
    g = nx.Graph()
    for u, neigh in adjacency.items():
        for v in neigh:
            g.add_edge(u, v)
    return g


class TestPeel:
    def test_triangle_is_2core(self):
        adjacency = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}
        assert peel_k_core(adjacency, 2) == {0, 1, 2}
        assert peel_k_core(adjacency, 3) == set()

    def test_pendant_vertex_removed(self):
        adjacency = {0: {1, 2}, 1: {0, 2}, 2: {0, 1, 3}, 3: {2}}
        assert peel_k_core(adjacency, 2) == {0, 1, 2}

    def test_cascade_removal(self):
        # A path: peeling k=2 unravels completely.
        adjacency = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
        assert peel_k_core(adjacency, 2) == set()

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            peel_k_core({}, 0)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_networkx(self, seed, k):
        adjacency = _random_adjacency(seed)
        expected = set(nx.k_core(_as_networkx(adjacency), k).nodes())
        assert peel_k_core(adjacency, k) == expected

    def test_every_member_has_k_members_neighbours(self):
        adjacency = _random_adjacency(3)
        members = peel_k_core(adjacency, 3)
        for u in members:
            assert len(adjacency[u] & members) >= 3


class TestCoreDecomposition:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_core_number(self, seed):
        adjacency = _random_adjacency(seed)
        expected = nx.core_number(_as_networkx(adjacency))
        assert core_decomposition(adjacency) == expected

    def test_empty(self):
        assert core_decomposition({}) == {}
        assert kmax_of({}) == 0

    def test_kmax_of_triangle(self):
        assert kmax_of({0: {1, 2}, 1: {0, 2}, 2: {0, 1}}) == 2

    def test_star_core_numbers(self):
        adjacency = {0: {1, 2, 3}, 1: {0}, 2: {0}, 3: {0}}
        assert core_decomposition(adjacency) == {0: 1, 1: 1, 2: 1, 3: 1}


class TestSnapshotCore:
    def test_snapshot_core(self, paper_graph):
        snapshot = Snapshot.from_graph(paper_graph, 1, 4)
        assert snapshot_k_core(snapshot, 2) == {
            paper_graph.id_of(n) for n in ("v1", "v2", "v3", "v4", "v9")
        }

    def test_empty_window_core(self, paper_graph):
        snapshot = Snapshot.from_graph(paper_graph, 7, 7)
        assert snapshot_k_core(snapshot, 2) == set()


class TestDecrementalCore:
    def _triangle_plus(self):
        # Triangle 0-1-2 plus vertex 3 hanging on 0 and 1.
        return {0: {1, 2, 3}, 1: {0, 2, 3}, 2: {0, 1}, 3: {0, 1}}

    def test_rejects_unpeeled_seed(self):
        with pytest.raises(ValueError):
            DecrementalCore({0: {1}, 1: {0}}, 2)

    def test_delete_cascades(self):
        evicted_order: list[int] = []
        core = DecrementalCore(self._triangle_plus(), 2, on_evict=evicted_order.append)
        # Deleting 0-2 drops 2 (degree 1), leaving 0,1,3 as a triangle.
        assert set(core.delete_pair(0, 2)) == {2}
        assert core.members == {0, 1, 3}
        assert evicted_order == [2]

    def test_delete_collapse(self):
        core = DecrementalCore(self._triangle_plus(), 2)
        core.delete_pair(0, 2)
        evicted = core.delete_pair(0, 3)
        assert set(evicted) == {0, 1, 3}
        assert len(core) == 0

    def test_delete_absent_pair_is_noop(self):
        core = DecrementalCore(self._triangle_plus(), 2)
        assert core.delete_pair(0, 9) == []
        assert core.delete_pair(9, 10) == []
        assert len(core) == 4

    def test_delete_pairs_bulk(self):
        core = DecrementalCore(self._triangle_plus(), 2)
        evicted = core.delete_pairs([(0, 2), (0, 3)])
        assert set(evicted) == {0, 1, 2, 3}

    def test_contains_protocol(self):
        core = DecrementalCore(self._triangle_plus(), 2)
        assert 0 in core
        core.delete_pair(0, 2)
        assert 2 not in core
