"""Unit tests for the temporal graph store."""

from __future__ import annotations

import pytest

from repro.errors import EmptyGraphError, GraphFormatError, InvalidParameterError
from repro.graph.temporal_graph import TemporalEdge, TemporalGraph
from repro.graph.validation import check_graph_invariants


class TestConstruction:
    def test_basic_counts(self):
        g = TemporalGraph([("a", "b", 5), ("b", "c", 9), ("a", "c", 5)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert len(g) == 3

    def test_timestamps_normalised_dense(self):
        g = TemporalGraph([("a", "b", 100), ("b", "c", 5000), ("a", "c", 100)])
        assert g.tmax == 2
        assert {e.t for e in g.edges} == {1, 2}

    def test_normalisation_preserves_order(self):
        g = TemporalGraph([("a", "b", 30), ("b", "c", 10), ("c", "d", 20)])
        by_label = {(g.label_of(e.u), g.label_of(e.v)): e.t for e in g.edges}
        assert by_label[("b", "c")] < by_label[("c", "d")] < by_label[("a", "b")]

    def test_raw_time_round_trip(self):
        raw = [("a", "b", 7), ("b", "c", 42), ("a", "c", 1000)]
        g = TemporalGraph(raw)
        for t in range(1, g.tmax + 1):
            assert g.normalized_time_of(g.raw_time_of(t)) == t

    def test_unknown_raw_time_raises(self):
        g = TemporalGraph([("a", "b", 7)])
        with pytest.raises(KeyError):
            g.normalized_time_of(8)

    def test_edges_sorted_by_time(self):
        g = TemporalGraph([("a", "b", 9), ("c", "d", 1), ("e", "f", 5)])
        times = [e.t for e in g.edges]
        assert times == sorted(times)

    def test_canonical_endpoint_order(self):
        g = TemporalGraph([("x", "a", 1)])
        edge = g.edges[0]
        assert edge.u < edge.v

    def test_self_loops_dropped_and_counted(self):
        g = TemporalGraph([("a", "a", 1), ("a", "b", 2), ("b", "b", 3)])
        assert g.num_edges == 1
        assert g.num_dropped_self_loops == 2

    def test_deduplicate_collapses_exact_duplicates(self):
        edges = [("a", "b", 1), ("b", "a", 1), ("a", "b", 2)]
        assert TemporalGraph(edges).num_edges == 3
        assert TemporalGraph(edges, deduplicate=True).num_edges == 2

    def test_multi_edges_kept_by_default(self):
        g = TemporalGraph([("a", "b", 1), ("a", "b", 2), ("a", "b", 3)])
        assert g.num_edges == 3
        assert g.degree_statistics()["num_pairs"] == 1

    def test_no_normalisation_mode(self):
        g = TemporalGraph([("a", "b", 3), ("b", "c", 7)], normalize_time=False)
        assert g.tmax == 7
        assert g.raw_time_of(3) == 3

    def test_no_normalisation_rejects_nonpositive(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph([("a", "b", 0)], normalize_time=False)

    def test_bad_triple_shape_raises(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph([("a", "b")])

    def test_non_integer_timestamp_raises(self):
        with pytest.raises(GraphFormatError):
            TemporalGraph([("a", "b", "noon")])

    def test_empty_graph(self):
        g = TemporalGraph([])
        assert g.num_edges == 0
        assert g.tmax == 0

    def test_integer_labels_supported(self):
        g = TemporalGraph([(10, 20, 1), (20, 30, 2)])
        assert g.num_vertices == 3
        assert g.label_of(g.id_of(10)) == 10

    def test_invariants_hold(self, paper_graph):
        check_graph_invariants(paper_graph)


class TestAccessors:
    def test_label_id_round_trip(self, paper_graph):
        for name in [f"v{i}" for i in range(1, 10)]:
            assert paper_graph.label_of(paper_graph.id_of(name)) == name

    def test_unknown_label_raises(self, paper_graph):
        with pytest.raises(KeyError):
            paper_graph.id_of("nope")

    def test_edge_ids_at(self, paper_graph):
        at5 = paper_graph.edge_ids_at(5)
        assert len(at5) == 4
        assert all(paper_graph.edges[eid].t == 5 for eid in at5)

    def test_edge_ids_at_out_of_range_is_empty(self, paper_graph):
        assert paper_graph.edge_ids_at(0) == ()
        assert paper_graph.edge_ids_at(99) == ()

    def test_window_edges(self, paper_graph):
        window = list(paper_graph.window_edges(2, 4))
        assert len(window) == 6
        assert all(2 <= e.t <= 4 for e in window)

    def test_window_edge_ids_ordered_by_time(self, paper_graph):
        ids = list(paper_graph.window_edge_ids(1, 7))
        times = [paper_graph.edges[eid].t for eid in ids]
        assert times == sorted(times)

    def test_check_window_rejects_inverted(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            paper_graph.check_window(4, 2)

    def test_check_window_rejects_outside_span(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            paper_graph.check_window(0, 3)
        with pytest.raises(InvalidParameterError):
            paper_graph.check_window(1, 8)

    def test_check_window_on_empty_graph(self):
        with pytest.raises(EmptyGraphError):
            TemporalGraph([]).check_window(1, 1)

    def test_adjacency_symmetric(self, paper_graph):
        adjacency = paper_graph.adjacency()
        for u, entries in enumerate(adjacency):
            for v, t, eid in entries:
                assert any(
                    x == u and t2 == t and eid2 == eid
                    for x, t2, eid2 in adjacency[v]
                )

    def test_adjacency_cached(self, paper_graph):
        assert paper_graph.adjacency() is paper_graph.adjacency()

    def test_degree_statistics(self, paper_graph):
        stats = paper_graph.degree_statistics()
        assert stats["max"] == 6  # v1 touches v2..v7 minus none: check below
        assert stats["num_pairs"] == 14  # the example has no repeated pairs
        assert stats["avg"] == pytest.approx(2 * 14 / 9)

    def test_subgraph_in_window_renormalises(self, paper_graph):
        sub = paper_graph.subgraph_in_window(2, 4)
        assert sub.num_edges == 6
        assert sub.tmax == 3  # timestamps 2,3,4 -> 1,2,3

    def test_repr(self, paper_graph):
        assert "n=9" in repr(paper_graph)
        assert "m=14" in repr(paper_graph)

    def test_named_tuple_edge_fields(self):
        edge = TemporalEdge(1, 2, 3)
        assert (edge.u, edge.v, edge.t) == (1, 2, 3)
