"""CompiledGraph: flat-array invariants against the naive structures."""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.graph.csr import CompiledGraph, compile_graph
from repro.graph.generators import uniform_random_temporal
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture(params=range(3))
def compiled_pair(request):
    graph = uniform_random_temporal(10, 60, tmax=12, seed=100 + request.param)
    return graph, graph.compiled()


class TestCaching:
    def test_compiled_is_cached(self, paper_graph):
        assert paper_graph.compiled() is paper_graph.compiled()

    def test_compile_graph_builds_fresh(self, paper_graph):
        assert compile_graph(paper_graph) is not paper_graph.compiled()

    def test_repr_mentions_sizes(self, paper_graph):
        cg = paper_graph.compiled()
        assert f"m={paper_graph.num_edges}" in repr(cg)
        assert cg.nbytes() > 0


class TestTimeOffsets:
    def test_window_ranges_match_edge_times(self, compiled_pair):
        graph, cg = compiled_pair
        for ts in range(1, graph.tmax + 1):
            for te in range(ts, graph.tmax + 1):
                ids = list(cg.window_edge_range(ts, te))
                expected = [
                    eid for eid, e in enumerate(graph.edges) if ts <= e.t <= te
                ]
                assert ids == expected, (ts, te)

    def test_window_range_clamps(self, compiled_pair):
        graph, cg = compiled_pair
        assert list(cg.window_edge_range(-5, graph.tmax + 5)) == list(
            range(graph.num_edges)
        )
        assert list(cg.window_edge_range(graph.tmax + 1, graph.tmax + 9)) == []
        assert list(cg.window_edge_range(3, 2)) == []


class TestAdjacency:
    def test_neighbours_sorted_and_complete(self, compiled_pair):
        graph, cg = compiled_pair
        expected: list[set[int]] = [set() for _ in range(graph.num_vertices)]
        for u, v, _ in graph.edges:
            expected[u].add(v)
            expected[v].add(u)
        for u in range(graph.num_vertices):
            neighbours = cg.neighbours_of(u)
            assert neighbours == sorted(expected[u])
            assert cg.full_degree[u] == len(expected[u])

    def test_pair_times_match_multigraph(self, compiled_pair):
        graph, cg = compiled_pair
        expected: dict[tuple[int, int], list[int]] = defaultdict(list)
        for u, v, t in graph.edges:
            expected[(u, v)].append(t)
        for (u, v), times in expected.items():
            assert cg.pair_times_of(u, v) == sorted(times)
            assert cg.pair_times_of(v, u) == sorted(times)
        assert cg.pair_times_of(0, 0) == []

    def test_slot_slices_shared_between_directions(self, compiled_pair):
        _, cg = compiled_pair
        for s in range(cg.num_slots):
            assert cg.slot_count[s] == cg.slot_times_end[s] - cg.slot_times_start[s]
            assert cg.slot_count[s] >= 1
        # Total flat timestamp storage is one entry per temporal edge.
        assert len(cg.pair_times) == cg.num_edges
        assert cg.num_slots == 2 * cg.num_pairs

    def test_edge_slot_round_trip(self, compiled_pair):
        graph, cg = compiled_pair
        for eid, (u, v, t) in enumerate(graph.edges):
            su = cg.edge_slot_u[eid]
            sv = cg.edge_slot_v[eid]
            assert cg.adj_offsets[u] <= su < cg.adj_offsets[u + 1]
            assert cg.adj_offsets[v] <= sv < cg.adj_offsets[v + 1]
            assert cg.adj_neighbour[su] == v
            assert cg.adj_neighbour[sv] == u
            times = cg.pair_times[cg.slot_times_start[su] : cg.slot_times_end[su]]
            assert t in times


class TestIncidentCsr:
    def test_ascending_times_and_degrees(self, compiled_pair):
        graph, cg = compiled_pair
        inc_degree = [0] * graph.num_vertices
        for u, v, _ in graph.edges:
            inc_degree[u] += 1
            inc_degree[v] += 1
        for u in range(graph.num_vertices):
            lo, hi = cg.inc_offsets[u], cg.inc_offsets[u + 1]
            assert hi - lo == inc_degree[u]
            times = cg.np_inc_time[lo:hi].tolist()
            assert times == sorted(times)
            for i in range(lo, hi):
                eid = int(cg.np_inc_eid[i])
                edge = graph.edges[eid]
                assert edge.t == int(cg.np_inc_time[i])
                assert {edge.u, edge.v} == {u, int(cg.np_inc_other[i])}

    def test_first_times_per_slot(self, compiled_pair):
        _, cg = compiled_pair
        for s in range(cg.num_slots):
            assert int(cg.np_slot_first_time[s]) == cg.pair_times[cg.slot_times_start[s]]


class TestDegenerate:
    def test_single_edge(self):
        graph = TemporalGraph([("a", "b", 7)])
        cg = graph.compiled()
        assert cg.num_pairs == 1
        assert cg.pair_times_of(0, 1) == [1]  # normalised timestamp
        assert list(cg.window_edge_range(1, 1)) == [0]

    def test_multi_edges_one_pair(self):
        graph = TemporalGraph([("a", "b", 1), ("a", "b", 3), ("a", "b", 2)])
        cg = graph.compiled()
        assert cg.num_pairs == 1
        assert cg.num_edges == 3
        assert cg.pair_times_of(0, 1) == [1, 2, 3]
