"""Validation helpers (the referees used across the suite)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.graph.validation import (
    check_graph_invariants,
    exact_core_edge_ids,
    is_k_core_subgraph,
    tightest_time_interval,
)


class TestExactCore:
    def test_paper_core_1_4(self, paper_graph):
        ids = exact_core_edge_ids(paper_graph, 2, 1, 4)
        assert len(ids) == 6  # Figure 2's larger temporal 2-core

    def test_paper_core_2_3(self, paper_graph):
        ids = exact_core_edge_ids(paper_graph, 2, 2, 3)
        assert len(ids) == 3  # Figure 2's triangle core

    def test_no_core_in_singleton_window(self, paper_graph):
        assert exact_core_edge_ids(paper_graph, 2, 1, 1) == set()

    def test_single_timestamp_core(self, paper_graph):
        # t=5 contains the v1-v6-v7 triangle.
        ids = exact_core_edge_ids(paper_graph, 2, 5, 5)
        labels = {
            frozenset((paper_graph.label_of(paper_graph.edges[e].u),
                       paper_graph.label_of(paper_graph.edges[e].v)))
            for e in ids
        }
        assert labels == {
            frozenset(("v1", "v6")), frozenset(("v1", "v7")),
            frozenset(("v6", "v7")),
        }


class TestIsKCoreSubgraph:
    def test_valid_subgraph(self, paper_graph):
        ids = exact_core_edge_ids(paper_graph, 2, 1, 4)
        assert is_k_core_subgraph(paper_graph, ids, 2, 1, 4)

    def test_edge_outside_window_rejected(self, paper_graph):
        ids = exact_core_edge_ids(paper_graph, 2, 1, 4)
        assert not is_k_core_subgraph(paper_graph, ids, 2, 2, 4)

    def test_insufficient_degree_rejected(self, paper_graph):
        # A single edge can never satisfy k=2.
        assert not is_k_core_subgraph(paper_graph, {0}, 2, 1, 7)


class TestTTI:
    def test_tti_of_core(self, paper_graph):
        ids = exact_core_edge_ids(paper_graph, 2, 1, 4)
        assert tightest_time_interval(paper_graph, ids) == (1, 4)

    def test_tti_can_be_tighter_than_window(self, paper_graph):
        ids = exact_core_edge_ids(paper_graph, 2, 1, 3)
        assert tightest_time_interval(paper_graph, ids) == (2, 3)

    def test_empty_set_raises(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            tightest_time_interval(paper_graph, set())


class TestGraphInvariantChecks:
    def test_valid_graph_passes(self, paper_graph):
        check_graph_invariants(paper_graph)

    def test_random_graphs_pass(self, random_graph):
        check_graph_invariants(random_graph)

    def test_catches_broken_canonical_order(self):
        g = TemporalGraph([("a", "b", 1), ("b", "c", 2)])
        # Forge a non-canonical edge to ensure the check bites.
        broken = list(g.edges)
        from repro.graph.temporal_graph import TemporalEdge

        broken[0] = TemporalEdge(broken[0].v, broken[0].u, broken[0].t)
        g._edges = tuple(broken)  # type: ignore[attr-defined]
        with pytest.raises(AssertionError):
            check_graph_invariants(g)
