"""Temporal metrics: burstiness, distinctness, histograms."""

from __future__ import annotations

import pytest

from repro.datasets.registry import load_dataset
from repro.graph.metrics import (
    activity_profile,
    burstiness,
    compute_temporal_metrics,
    degree_histogram,
    timestamp_histogram,
)
from repro.graph.temporal_graph import TemporalGraph


class TestBurstiness:
    def test_regular_stream_is_negative(self):
        # Perfectly regular gaps: sigma = 0 -> B = -1.
        assert burstiness([5.0] * 10) == -1.0

    def test_bursty_stream_is_positive(self):
        gaps = [0.0] * 50 + [1000.0]
        assert burstiness(gaps) > 0.5

    def test_degenerate_inputs(self):
        assert burstiness([]) == 0.0
        assert burstiness([1.0]) == 0.0
        assert burstiness([0.0, 0.0]) == 0.0


class TestMetrics:
    def test_paper_example(self, paper_graph):
        metrics = compute_temporal_metrics(paper_graph)
        assert metrics.distinctness == 7 / 14
        assert metrics.mean_edges_per_timestamp == 2.0
        assert metrics.max_edges_per_timestamp == 4  # t=5 has four edges
        assert metrics.pair_multiplicity == 1.0  # no repeated pairs

    def test_multigraph_multiplicity(self):
        g = TemporalGraph([("a", "b", 1), ("a", "b", 2), ("a", "c", 3)])
        metrics = compute_temporal_metrics(g)
        assert metrics.pair_multiplicity == 1.5

    def test_empty_graph(self):
        metrics = compute_temporal_metrics(TemporalGraph([]))
        assert metrics.distinctness == 0.0

    def test_few_timestamp_datasets_have_low_distinctness(self):
        dense = compute_temporal_metrics(load_dataset("PL"))
        sparse = compute_temporal_metrics(load_dataset("CM"))
        assert dense.distinctness < 0.01 < sparse.distinctness

    def test_bursty_recipes_are_bursty(self):
        metrics = compute_temporal_metrics(load_dataset("CM"))
        assert metrics.burstiness > 0.0  # planted bursts shape the gaps


class TestHistograms:
    def test_timestamp_histogram(self, paper_graph):
        histogram = timestamp_histogram(paper_graph)
        assert sum(histogram) == 14
        assert histogram[5] == 4
        assert histogram[0] == 0

    def test_degree_histogram(self, paper_graph):
        histogram = degree_histogram(paper_graph)
        assert sum(histogram.values()) == 9
        assert histogram[6] == 1  # v1 is the hub
        assert list(histogram) == sorted(histogram)

    def test_activity_profile_sums_to_edges(self, paper_graph):
        profile = activity_profile(paper_graph, num_buckets=3)
        assert sum(profile) == 14
        assert len(profile) == 3

    def test_activity_profile_validation(self, paper_graph):
        with pytest.raises(ValueError):
            activity_profile(paper_graph, num_buckets=0)

    def test_activity_profile_empty_graph(self):
        assert activity_profile(TemporalGraph([]), 4) == [0, 0, 0, 0]
