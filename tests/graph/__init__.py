"""Test package."""
