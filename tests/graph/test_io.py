"""Edge-list I/O: SNAP/KONECT layouts, comments, gzip, round trips."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graph.io import (
    dump_edge_list,
    iter_edge_lines,
    load_edge_list,
    loads_edge_list,
)
from repro.graph.temporal_graph import TemporalGraph

SNAP_TEXT = """\
# comment line
1 2 1082040961
2 3 1082155839

3 1 1082414391
"""

KONECT_TEXT = """\
% konect style
1 2 1 1082040961
2 3 1 1082155839
3 1 1082414391
"""


class TestParsing:
    def test_snap_layout(self):
        g = loads_edge_list(SNAP_TEXT)
        assert g.num_edges == 3
        assert g.tmax == 3  # three distinct raw timestamps, normalised

    def test_konect_layout_with_and_without_weight(self):
        g = TemporalGraph(iter_edge_lines(KONECT_TEXT.splitlines(), layout="konect"))
        assert g.num_edges == 3

    def test_comments_and_blanks_skipped(self):
        g = loads_edge_list("# a\n\n% b\n1 2 10\n")
        assert g.num_edges == 1

    def test_scientific_timestamp(self):
        g = loads_edge_list("1 2 1.08204e9\n")
        assert g.raw_time_of(1) == 1082040000

    def test_wrong_field_count_raises(self):
        with pytest.raises(GraphFormatError):
            loads_edge_list("1 2\n")
        with pytest.raises(GraphFormatError):
            loads_edge_list("1 2 3 4\n")

    def test_konect_wrong_field_count_raises(self):
        with pytest.raises(GraphFormatError):
            list(iter_edge_lines(["1 2"], layout="konect"))

    def test_bad_timestamp_raises(self):
        with pytest.raises(GraphFormatError):
            loads_edge_list("1 2 yesterday\n")

    def test_unknown_layout_raises(self):
        with pytest.raises(GraphFormatError):
            list(iter_edge_lines([], layout="csv"))

    def test_labels_stay_strings(self):
        g = loads_edge_list("007 08 1\n")
        labels = {g.label_of(u) for u in range(g.num_vertices)}
        assert labels == {"007", "08"}


class TestFiles:
    def test_round_trip_raw_timestamps(self, tmp_path, paper_graph):
        path = tmp_path / "graph.txt"
        dump_edge_list(paper_graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_edges == paper_graph.num_edges
        assert loaded.tmax == paper_graph.tmax

    def test_round_trip_normalised_timestamps(self, tmp_path, paper_graph):
        path = tmp_path / "graph.txt"
        dump_edge_list(paper_graph, path, raw_timestamps=False)
        loaded = load_edge_list(path)
        assert [e.t for e in loaded.edges] == [e.t for e in paper_graph.edges]

    def test_gzip_input(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(SNAP_TEXT)
        g = load_edge_list(path)
        assert g.num_edges == 3

    def test_deduplicate_flag(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2 10\n1 2 10\n1 2 20\n")
        assert load_edge_list(path).num_edges == 3
        assert load_edge_list(path, deduplicate=True).num_edges == 2
