"""The docs tree stays healthy: links resolve, markdown doctests pass.

Runs the same checks as ``tools/check_docs.py`` (the CI docs job) so a
broken internal link or a stale ``>>>`` example in README/docs fails
the tier-1 suite locally too.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

import check_docs  # noqa: E402


@pytest.fixture(params=check_docs.doc_files(), ids=lambda p: p.name)
def doc_file(request) -> pathlib.Path:
    return request.param


def test_doc_file_exists(doc_file):
    assert doc_file.exists(), f"missing documentation file: {doc_file}"


def test_internal_links_resolve(doc_file):
    assert check_docs.check_links(doc_file) == []


def test_markdown_doctests_pass(doc_file):
    attempted, failed, logs = check_docs.run_doctests(doc_file)
    assert failed == 0, "\n".join(logs)


def test_readme_has_doctest_examples():
    """The quickstart examples are executable, not decorative."""
    attempted, failed, _ = check_docs.run_doctests(
        check_docs.ROOT / "README.md"
    )
    assert attempted >= 2 and failed == 0


def test_cli_entry_point():
    assert check_docs.main() == 0
