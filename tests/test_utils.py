"""Utility module tests: ordering primitives, timers, deadlines."""

from __future__ import annotations

import pytest

from repro.utils.order import (
    counting_sort_by,
    interval_contains,
    kth_smallest,
    merge_intervals,
)
from repro.utils.timer import Deadline, Stopwatch, time_call


class TestTimerShim:
    """``repro.utils.timer`` is a deprecated re-export of ``repro.obs.timing``."""

    def test_shim_reexports_same_objects(self):
        from repro.obs import timing

        assert Deadline is timing.Deadline
        assert Stopwatch is timing.Stopwatch
        assert time_call is timing.time_call

    def test_shim_warns_on_import(self):
        import importlib

        import repro.utils.timer as shim

        with pytest.warns(DeprecationWarning, match="repro.obs.timing"):
            importlib.reload(shim)


class TestKthSmallest:
    def test_small_cases(self):
        values = [5, 1, 4, 2, 3]
        assert kth_smallest(values, 1) == 1
        assert kth_smallest(values, 3) == 3
        assert kth_smallest(values, 5) == 5

    def test_duplicates(self):
        assert kth_smallest([2, 2, 1, 2], 3) == 2

    def test_large_list_heap_path(self):
        values = list(range(1000, 0, -1))
        assert kth_smallest(values, 7) == 7

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            kth_smallest([1], 0)
        with pytest.raises(ValueError):
            kth_smallest([1], 2)


class TestCountingSort:
    def test_sorted_by_key(self):
        items = [(3, "c"), (1, "a"), (2, "b"), (1, "a2")]
        ordered = counting_sort_by(items, key=lambda x: x[0], lo=1, hi=3)
        assert [x[0] for x in ordered] == [1, 1, 2, 3]

    def test_stability(self):
        items = [(1, "first"), (1, "second")]
        ordered = counting_sort_by(items, key=lambda x: x[0], lo=1, hi=1)
        assert ordered == items

    def test_key_outside_range(self):
        with pytest.raises(ValueError):
            counting_sort_by([(5,)], key=lambda x: x[0], lo=1, hi=3)

    def test_empty_key_range(self):
        with pytest.raises(ValueError):
            counting_sort_by([], key=lambda x: x, lo=3, hi=2)


class TestIntervals:
    def test_merge_overlapping(self):
        assert merge_intervals([(1, 3), (2, 5), (7, 8)]) == [(1, 5), (7, 8)]

    def test_merge_adjacent(self):
        assert merge_intervals([(1, 2), (3, 4)]) == [(1, 4)]

    def test_merge_empty(self):
        assert merge_intervals([]) == []

    def test_merge_rejects_inverted(self):
        with pytest.raises(ValueError):
            merge_intervals([(3, 1)])

    def test_contains(self):
        intervals = [(1, 3), (7, 9)]
        assert interval_contains(intervals, 2)
        assert interval_contains(intervals, 7)
        assert not interval_contains(intervals, 5)
        assert not interval_contains(intervals, 10)
        assert not interval_contains([], 1)


class TestTimers:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        sw.start()
        sw.lap("early")
        total = sw.stop()
        assert total >= sw.laps["early"] >= 0
        sw.reset()
        assert sw.elapsed == 0.0

    def test_stopwatch_misuse(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_time_call(self):
        result, seconds = time_call(sum, range(100))
        assert result == 4950
        assert seconds >= 0

    def test_deadline(self):
        assert not Deadline(None).expired()
        assert Deadline(None).remaining is None
        expired = Deadline(0.0)
        assert expired.expired()
        assert expired.remaining == 0.0
        assert not Deadline(60.0).expired()


class TestCountingSortSparseFallback:
    """Both code paths of counting_sort_by: dense buckets vs timsort."""

    def test_sparse_span_falls_back_and_sorts(self):
        # Span far wider than the item count triggers the timsort path.
        items = [(1_000_000, "z"), (5, "a"), (700_000, "m"), (5, "b")]
        ordered = counting_sort_by(items, key=lambda x: x[0], lo=1, hi=1_000_000)
        assert [x[1] for x in ordered] == ["a", "b", "m", "z"]

    def test_sparse_path_is_stable(self):
        items = [(9, i) for i in range(20)]
        ordered = counting_sort_by(items, key=lambda x: x[0], lo=1, hi=10_000)
        assert ordered == items

    def test_sparse_path_validates_keys(self):
        with pytest.raises(ValueError):
            counting_sort_by([(0, "bad")], key=lambda x: x[0], lo=1, hi=1_000_000)

    def test_dense_and_sparse_agree(self):
        import random

        rng = random.Random(7)
        items = [(rng.randint(1, 40), i) for i in range(60)]
        dense = counting_sort_by(items, key=lambda x: x[0], lo=1, hi=40)
        # Widening the declared span flips to the sparse path; the order
        # must not change.
        sparse = counting_sort_by(items, key=lambda x: x[0], lo=1, hi=100_000)
        assert dense == sparse

    def test_generator_input_materialised_once(self):
        ordered = counting_sort_by(
            ((value, value) for value in [3, 1, 2]), key=lambda x: x[0], lo=1, hi=64
        )
        assert [x[0] for x in ordered] == [1, 2, 3]
