"""End-to-end smoke tests: every example script must run and self-check.

Each example contains its own assertions (planted structures must be
recovered), so a clean exit is a meaningful integration test of the
whole public API.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"


def test_quickstart_output_matches_paper():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "Temporal 2-cores in range [1, 4]: 2" in completed.stdout
    assert "All four engines" in completed.stdout
