"""Registry warm-up and store fallthrough: the daemon cold-start path."""

from __future__ import annotations

import threading

import pytest

import repro.core.index as index_module
from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.index import CoreIndex, CoreIndexRegistry, get_core_index
from repro.datasets.paper_example import paper_example_graph
from repro.errors import InvalidParameterError
from repro.store import IndexStore


@pytest.fixture()
def store(tmp_path):
    return IndexStore(tmp_path / "store")


@pytest.fixture()
def populated(store, paper_graph):
    store.save_index(CoreIndex(paper_graph, 2), name="paper")
    store.save_index(CoreIndex(paper_graph, 3), name="paper")
    return store


def _forbid_compute(monkeypatch, message):
    """Make any Algorithm-2 run fail the test loudly."""
    def explode(*args, **kwargs):
        raise AssertionError(message)

    monkeypatch.setattr(index_module, "compute_core_times", explode)


class TestStoreFallthrough:
    def test_get_with_store_computes_nothing(self, populated, monkeypatch):
        """Acceptance: a populated store answers with zero compute_core_times."""
        _forbid_compute(monkeypatch, "compute_core_times called on the warm path")
        registry = CoreIndexRegistry(capacity=4)
        fresh = paper_example_graph()  # equal content, different object
        index = registry.get(fresh, 2, store=populated)
        assert registry.stats()["store_hits"] == 1
        expected = enumerate_temporal_kcores(paper_example_graph(), 2, 1, 4).edge_sets()
        assert index.query(1, 4).edge_sets() == expected

    def test_attached_store_used_by_default(self, populated, monkeypatch):
        _forbid_compute(monkeypatch, "compute_core_times called on the warm path")
        registry = CoreIndexRegistry(capacity=4, store=populated)
        registry.get(paper_example_graph(), 3)
        assert registry.stats()["store_hits"] == 1

    def test_second_get_is_a_cache_hit(self, populated):
        registry = CoreIndexRegistry(capacity=4, store=populated)
        graph = paper_example_graph()
        first = registry.get(graph, 2)
        assert registry.get(graph, 2) is first
        stats = registry.stats()
        assert stats["hits"] == 1 and stats["store_hits"] == 1

    def test_absent_entry_falls_back_to_build(self, populated):
        registry = CoreIndexRegistry(capacity=4, store=populated)
        index = registry.get(paper_example_graph(), 5)  # k=5 never stored
        assert registry.stats()["store_hits"] == 0
        assert index.k == 5

    def test_helper_passes_store_through(self, populated, monkeypatch):
        _forbid_compute(monkeypatch, "compute_core_times called on the warm path")
        registry = CoreIndexRegistry(capacity=4)
        index = get_core_index(
            paper_example_graph(), 2, registry=registry, store=populated
        )
        assert index.k == 2


class TestWarm:
    def test_warm_preloads_every_entry(self, populated):
        registry = CoreIndexRegistry(capacity=8)
        assert registry.warm(populated) == 2
        assert len(registry) == 2

    def test_warm_requires_a_store(self):
        with pytest.raises(InvalidParameterError):
            CoreIndexRegistry().warm()

    def test_warm_respects_capacity(self, populated):
        registry = CoreIndexRegistry(capacity=1)
        registry.warm(populated)
        assert len(registry) == 1

    def test_warm_skips_corrupt_entries(self, populated, paper_graph):
        path = populated.root / "paper" / "k2.idx"
        path.write_bytes(path.read_bytes()[:-32])
        registry = CoreIndexRegistry(capacity=8)
        assert registry.warm(populated) == 1  # only k=3 loads

    def test_warmed_entries_serve_queries(self, populated, monkeypatch):
        registry = CoreIndexRegistry(capacity=8, store=populated)
        registry.warm()
        _forbid_compute(monkeypatch, "compute after warm")
        # A fresh equal graph (new identity) still resolves with zero
        # compute: the store fingerprint match backs the cache miss.
        index = registry.get(paper_example_graph(), 2)
        assert index.query(2, 6).num_results > 0


class TestThreadSafety:
    def test_concurrent_gets_are_safe(self, paper_graph, triangle_graph):
        """A warm-up thread plus serving threads is a supported pattern."""
        registry = CoreIndexRegistry(capacity=4)
        graphs = [paper_graph, triangle_graph]
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                for i in range(25):
                    graph = graphs[(worker + i) % 2]
                    index = registry.get(graph, 2)
                    assert index.graph is graph
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = registry.stats()
        assert stats["hits"] + stats["misses"] == 8 * 25

    def test_concurrent_warm_and_serve(self, populated):
        registry = CoreIndexRegistry(capacity=8, store=populated)
        errors: list[BaseException] = []

        def warm() -> None:
            try:
                registry.warm()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def serve() -> None:
            try:
                graph = paper_example_graph()
                for _ in range(10):
                    registry.get(graph, 2)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=warm), threading.Thread(target=serve)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
