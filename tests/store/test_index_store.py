"""IndexStore: manifests, fingerprint matching, corruption handling."""

from __future__ import annotations

import json

import pytest

from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.index import CoreIndex
from repro.errors import StoreError
from repro.store import IndexStore
from repro.store.index_store import GRAPH_FILE, MANIFEST_NAME


@pytest.fixture()
def store(tmp_path):
    return IndexStore(tmp_path / "store")


class TestSaving:
    def test_save_and_keys(self, store, paper_graph):
        key = store.save_index(CoreIndex(paper_graph, 2), name="paper")
        assert key == "paper"
        assert store.keys() == ["paper"]
        assert store.stored_ks("paper") == [2]

    def test_default_key_is_fingerprint_derived(self, store, paper_graph):
        key = store.save_graph(paper_graph)
        assert key.startswith("g")
        assert store.keys() == [key]

    def test_save_graph_idempotent(self, store, paper_graph):
        first = store.save_graph(paper_graph, name="paper")
        mtime = (store.root / "paper" / GRAPH_FILE).stat().st_mtime_ns
        assert store.save_graph(paper_graph, name="paper") == first
        assert (store.root / "paper" / GRAPH_FILE).stat().st_mtime_ns == mtime

    def test_multiple_ks_share_a_graph(self, store, paper_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        store.save_index(CoreIndex(paper_graph, 3), name="paper")
        assert store.stored_ks("paper") == [2, 3]
        files = {p.name for p in (store.root / "paper").iterdir()} - {".lock"}
        assert files == {MANIFEST_NAME, GRAPH_FILE, "k2.idx", "k3.idx"}

    def test_name_reuse_for_different_graph_resets(self, store, paper_graph,
                                                   triangle_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="g")
        store.save_graph(triangle_graph, name="g")
        # The old index described the old graph and must be gone.
        assert store.stored_ks("g") == []
        assert not (store.root / "g" / "k2.idx").exists()
        loaded = store.load_graph("g")
        assert loaded.num_edges == triangle_graph.num_edges

    def test_isomorphic_graphs_do_not_collide(self, store):
        """Same structure, different labels/raw times → distinct entries."""
        from repro.graph.temporal_graph import TemporalGraph

        a = TemporalGraph([("a", "b", 10), ("b", "c", 20), ("a", "c", 30)])
        b = TemporalGraph([("x", "y", 10), ("y", "z", 25), ("x", "z", 30)])
        key_a = store.save_graph(a)
        key_b = store.save_graph(b)
        assert key_a != key_b
        restored_a = store.load_graph(store.find(a))
        restored_b = store.load_graph(store.find(b))
        assert restored_a.label_of(0) == "a"
        assert restored_b.label_of(0) == "x"
        assert restored_b.raw_time_of(2) == 25

    def test_manifest_schema(self, store, paper_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        manifest = json.loads((store.root / "paper" / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == 1
        assert manifest["graph_file"] == GRAPH_FILE
        assert set(manifest["fingerprint"]) == {
            "num_vertices", "num_edges", "tmax", "raw_span",
            "edge_crc32", "label_crc32", "raw_time_crc32",
        }
        assert set(manifest["indexes"]) == {"2"}
        assert manifest["indexes"]["2"]["file"] == "k2.idx"
        assert manifest["indexes"]["2"]["ecs_size"] > 0


class TestLoading:
    def test_load_index_by_fingerprint(self, store, paper_graph):
        index = CoreIndex(paper_graph, 2)
        store.save_index(index, name="paper")
        loaded = store.load_index(paper_graph, 2)
        assert loaded is not None
        assert loaded.query(1, 7).edge_sets() == index.query(1, 7).edge_sets()

    def test_load_index_unknown_graph(self, store, paper_graph, triangle_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        assert store.load_index(triangle_graph, 2) is None

    def test_load_index_unknown_k(self, store, paper_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        assert store.load_index(paper_graph, 3) is None

    def test_load_graph_missing_key(self, store):
        with pytest.raises(StoreError):
            store.load_graph("nope")

    def test_iter_indexes(self, store, paper_graph, triangle_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        store.save_index(CoreIndex(paper_graph, 3), name="paper")
        store.save_index(CoreIndex(triangle_graph, 2), name="tri")
        seen = [(key, index.k) for key, _graph, index in store.iter_indexes()]
        assert sorted(seen) == [("paper", 2), ("paper", 3), ("tri", 2)]


class TestCorruption:
    def test_truncated_index_reads_as_absent(self, store, paper_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        path = store.root / "paper" / "k2.idx"
        path.write_bytes(path.read_bytes()[:-32])
        assert store.load_index(paper_graph, 2) is None

    def test_bit_flipped_index_reads_as_absent(self, store, paper_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        path = store.root / "paper" / "k2.idx"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.load_index(paper_graph, 2) is None

    def test_corrupt_index_is_rebuilt_not_served(self, store, paper_graph):
        """Acceptance: a truncated file is detected and rebuilt via the registry."""
        from repro.core.index import CoreIndexRegistry

        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        path = store.root / "paper" / "k2.idx"
        path.write_bytes(path.read_bytes()[:-32])

        registry = CoreIndexRegistry(capacity=2, store=store)
        index = registry.get(paper_graph, 2)  # falls back to a fresh build
        assert registry.stats()["store_hits"] == 0
        expected = enumerate_temporal_kcores(paper_graph, 2, 1, 4).edge_sets()
        assert index.query(1, 4).edge_sets() == expected
        # Re-saving overwrites the corrupt file; the next open is warm again.
        store.save_index(index, name="paper")
        assert store.load_index(paper_graph, 2) is not None

    def test_garbage_manifest_hides_directory(self, store, paper_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        (store.root / "paper" / MANIFEST_NAME).write_text("{not json")
        assert store.keys() == []
        assert store.load_index(paper_graph, 2) is None

    def test_stale_index_after_graph_swap(self, store, paper_graph, triangle_graph):
        """An index file left over for a different graph is never served."""
        store.save_index(CoreIndex(paper_graph, 2), name="g")
        manifest_path = store.root / "g" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        # Simulate a manifest whose fingerprint was tampered to match a
        # different graph: the blob-level fingerprint still protects us.
        from repro.store.codec import graph_fingerprint

        manifest["fingerprint"] = graph_fingerprint(triangle_graph)
        manifest_path.write_text(json.dumps(manifest))
        assert store.load_index(triangle_graph, 2) is None
