"""The crash-point matrix: SIGKILL a child at every registered point,
then prove recovery holds (tests of :mod:`repro.testing.harness`)."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.store import IndexStore
from repro.store.fsck import scrub_store
from repro.testing.crashpoints import registered_crashpoints
from repro.testing.harness import (
    CAMPAIGN_KEY,
    CAMPAIGN_SEGMENT_BYTES,
    audit_recovery,
    campaign_edges,
    campaign_store,
    run_campaign_point,
    run_crash_child,
)


def fail_report(audit) -> str:
    return (
        f"problems={audit.problems}\n"
        f"acked={len(audit.outcome.acked)} recovered={audit.recovered_count}\n"
        f"stderr tail:\n{audit.outcome.stderr[-1500:]}"
    )


class TestCampaignMatrix:
    @pytest.mark.parametrize("point", registered_crashpoints())
    def test_first_hit(self, tmp_path, point):
        """Crash at the very first time each point is reached."""
        audit = run_campaign_point(campaign_store(tmp_path), point)
        assert audit.ok, fail_report(audit)

    @pytest.mark.parametrize("point", [
        "wal.append.post-fsync:7",
        "wal.append.post-write.pre-fsync:13",
        "snapshot.post-graph.pre-indexes:2",
        "snapshot.post-indexes.pre-trim:3",
        "manifest.post-rename:4",
    ])
    def test_deep_hits(self, tmp_path, point):
        """Crash later in the run, after snapshots have already landed."""
        audit = run_campaign_point(campaign_store(tmp_path), point)
        assert audit.ok, fail_report(audit)

    def test_clean_run_satisfies_every_invariant(self, tmp_path):
        """An arm-count past the workload means the child runs to DONE —
        the invariants must hold for the undamaged store too."""
        audit = run_campaign_point(
            campaign_store(tmp_path), "wal.append.post-fsync:9999"
        )
        assert audit.ok, fail_report(audit)
        assert not audit.outcome.crashed
        assert audit.recovered_count == 40


class TestCrashThenResume:
    def test_killed_child_resumes_to_completion(self, tmp_path):
        """The real recovery story: crash mid-run, restart the *same*
        driver against the wreck, and it finishes the workload exactly —
        acknowledged appends are never re-sent, none are lost."""
        root = campaign_store(tmp_path)
        outcome = run_crash_child(root, "wal.append.post-fsync:15")
        assert outcome.crashed

        env = dict(os.environ)
        env.pop("REPRO_CRASHPOINT", None)
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.testing.crash_driver",
                "--store", str(root),
                "--key", CAMPAIGN_KEY,
                "--seed", "11", "--count", "40",
                "--snapshot-every", "10",
                "--segment-bytes", str(CAMPAIGN_SEGMENT_BYTES),
            ],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr[-1500:]
        assert "DONE" in proc.stdout
        resumed_acks = [
            int(line.split()[1])
            for line in proc.stdout.splitlines()
            if line.startswith("ACK ")
        ]
        # The resumed run picked up where the recovered store ended —
        # strictly after every append the first run acknowledged.
        if resumed_acks and outcome.acked:
            assert min(resumed_acks) > max(outcome.acked)
        assert resumed_acks[-1] == 39

        store = IndexStore(root)
        recovery = store.recover(
            CAMPAIGN_KEY, segment_bytes=CAMPAIGN_SEGMENT_BYTES
        )
        recovery.wal.close()
        total = (
            (recovery.graph.num_edges if recovery.graph is not None else 0)
            + len(recovery.events)
        )
        assert total == 40
        assert scrub_store(root).clean

    def test_audit_flags_lost_acknowledged_appends(self, tmp_path):
        """The harness itself must catch a durability hole: wreck the
        store behind its back and the audit must go red."""
        root = campaign_store(tmp_path)
        outcome = run_crash_child(root, "wal.append.post-fsync:20")
        assert outcome.crashed
        # Sabotage: delete the whole WAL — acknowledged appends vanish.
        for segment in (root / CAMPAIGN_KEY / "wal").glob("wal-*.seg"):
            segment.unlink()
        audit = audit_recovery(root, outcome)
        assert not audit.ok
        assert any("lost acknowledged" in p for p in audit.problems)


class TestWorkload:
    def test_campaign_edges_deterministic_and_ordered(self):
        a = campaign_edges(11, 40)
        b = campaign_edges(11, 40)
        assert a == b
        assert len(a) == 40
        times = [t for _, _, t in a]
        assert times == sorted(times)
        assert all(u != v for u, v, _ in a)

    def test_different_seeds_differ(self):
        assert campaign_edges(11, 40) != campaign_edges(12, 40)
