"""WriteAheadLog: framing, durability discipline, torn tails, rotation."""

from __future__ import annotations

import shutil
import threading

import pytest

from repro.errors import StoreCorruptionError
from repro.store.wal import (
    _HEADER,
    WriteAheadLog,
    scan_segment,
)


@pytest.fixture()
def wal_dir(tmp_path):
    return tmp_path / "wal"


def read_all(directory, **kwargs):
    """Open, replay and close — the recovery read path in one call."""
    with WriteAheadLog(directory, **kwargs) as wal:
        return wal.replay()


class TestAppendReplay:
    def test_lsns_are_dense_from_one(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            assert wal.append("a", "b", 1) == 1
            assert wal.append("b", "c", 2) == 2
            first, count = wal.append_edges([("c", "d", 3), ("d", "e", 3)])
            assert (first, count) == (3, 2)
            assert wal.last_lsn == 4
        events = read_all(wal_dir)
        assert [(e.lsn, e.u, e.v, e.t) for e in events] == [
            (1, "a", "b", 1), (2, "b", "c", 2),
            (3, "c", "d", 3), (4, "d", "e", 3),
        ]

    def test_replay_after_filters_by_lsn(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            for i in range(5):
                wal.append("a", "b", i + 1)
            assert [e.lsn for e in wal.replay(after=3)] == [4, 5]
            assert wal.pending_after(3) == 2
            assert wal.replay(after=5) == []

    def test_reopen_resumes_lsn_and_watermark(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.append("a", "b", 7)
            wal.append("b", "c", 9)
        with WriteAheadLog(wal_dir) as wal:
            assert wal.last_lsn == 2
            assert wal.last_event_time == 9
            assert wal.append("c", "d", 9) == 3

    def test_empty_wal(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            assert wal.last_lsn == 0
            assert wal.replay() == []

    def test_labels_roundtrip_types(self, wal_dir):
        """Int and str labels survive the JSON framing unchanged."""
        with WriteAheadLog(wal_dir) as wal:
            wal.append(0, 1, 5)
            wal.append("x", "y", 6)
        events = read_all(wal_dir)
        assert [(e.u, e.v) for e in events] == [(0, 1), ("x", "y")]

    def test_append_after_close_raises(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        wal.close()
        with pytest.raises(Exception):
            wal.append("a", "b", 1)
        wal.close()  # idempotent


class TestTokens:
    def test_dedupe_returns_original_lsn(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            first, count = wal.append_edges([("a", "b", 1)], token="t1")
            assert (first, count) == (1, 1)
            again, count = wal.append_edges([("a", "b", 1)], token="t1")
            assert (again, count) == (1, 1)
            assert wal.last_lsn == 1

    def test_tokens_survive_reopen(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.append_edges([("a", "b", 1), ("b", "c", 2)], token="batch-9")
        with WriteAheadLog(wal_dir) as wal:
            assert wal.lookup_token("batch-9") == (1, 2)
            first, count = wal.append_edges(
                [("a", "b", 1), ("b", "c", 2)], token="batch-9"
            )
            assert (first, count) == (1, 2)
            assert wal.last_lsn == 2


class TestRotationAndTrim:
    def test_rotation_seals_segments(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=256) as wal:
            for i in range(40):
                wal.append(f"n{i % 7}", f"n{(i + 1) % 7}", i + 1)
            assert len(wal.segment_paths()) > 1
            # Every segment file name carries its base LSN; they must be
            # strictly increasing and start at 1.
            bases = [
                int(p.name[len("wal-"):-len(".seg")])
                for p in wal.segment_paths()
            ]
            assert bases[0] == 1
            assert bases == sorted(bases)
        assert [e.lsn for e in read_all(wal_dir, segment_bytes=256)] == list(
            range(1, 41)
        )

    def test_trim_drops_only_covered_sealed_segments(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=256) as wal:
            for i in range(40):
                wal.append("a", "b", i + 1)
            before = len(wal.segment_paths())
            assert before > 2
            dropped = wal.trim(wal.last_lsn)
            # The live segment always survives a trim.
            assert len(wal.segment_paths()) >= 1
            assert dropped == before - len(wal.segment_paths())
            assert wal.replay(after=wal.last_lsn) == []
            # Appends after a trim carry on from the same LSN sequence.
            assert wal.append("x", "y", 99) == 41

    def test_trim_zero_is_noop(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=256) as wal:
            for i in range(20):
                wal.append("a", "b", i + 1)
            paths = wal.segment_paths()
            assert wal.trim(0) == 0
            assert wal.segment_paths() == paths


class TestGroupCommit:
    def test_batch_sync_mode_replays_complete(self, wal_dir):
        with WriteAheadLog(wal_dir, sync="batch") as wal:
            for i in range(10):
                wal.append("a", "b", i + 1)
            wal.flush()
        assert len(read_all(wal_dir)) == 10

    def test_concurrent_appends_assign_unique_lsns(self, wal_dir):
        wal = WriteAheadLog(wal_dir, sync="batch", segment_bytes=512)
        lsns: list[int] = []
        lock = threading.Lock()

        def worker(tag: int) -> None:
            for i in range(25):
                lsn = wal.append(f"u{tag}", f"v{i}", 1)
                with lock:
                    lsns.append(lsn)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wal.close()
        assert sorted(lsns) == list(range(1, 101))
        assert len(read_all(wal_dir, segment_bytes=512)) == 100

    def test_invalid_sync_mode_rejected(self, wal_dir):
        with pytest.raises(Exception):
            WriteAheadLog(wal_dir, sync="sometimes")


def segment_record_ends(path) -> list[int]:
    """Byte offsets at which each record of a segment ends."""
    scan = scan_segment(path)
    assert scan.error is None
    data = path.read_bytes()
    ends, offset = [], _HEADER.size
    import struct

    while offset < len(data):
        length = struct.unpack_from("<I", data, offset)[0]
        offset += 8 + length
        ends.append(offset)
    assert ends[-1] == len(data)
    return ends


class TestTornTail:
    """The property at the heart of recovery: truncate anywhere, replay
    exactly the longest valid record prefix — never less, never a
    resurrected suffix."""

    def test_truncation_at_every_byte_boundary(self, tmp_path):
        source = tmp_path / "source"
        with WriteAheadLog(source) as wal:
            for i in range(6):
                wal.append(f"n{i}", f"n{i + 1}", i + 1)
        (segment,) = list(source.glob("wal-*.seg"))
        data = segment.read_bytes()
        ends = segment_record_ends(segment)

        for cut in range(len(data) + 1):
            trial = tmp_path / f"cut{cut}"
            trial.mkdir()
            (trial / segment.name).write_bytes(data[:cut])
            expected = sum(1 for end in ends if end <= cut)
            events = read_all(trial)
            assert len(events) == expected, f"cut at byte {cut}"
            assert [e.lsn for e in events] == list(range(1, expected + 1))
            # Reopening truncated the tail: the file is now exactly the
            # valid prefix (or a fresh header when the cut beheaded it).
            size = (trial / segment.name).stat().st_size
            assert size == (ends[expected - 1] if expected else _HEADER.size)

    def test_flipped_byte_stops_at_damage_never_skips(self, tmp_path):
        """Mid-log damage must not be skipped: records *after* a flipped
        byte are unreachable even though they are individually valid."""
        source = tmp_path / "source"
        with WriteAheadLog(source) as wal:
            for i in range(6):
                wal.append(f"n{i}", f"n{i + 1}", i + 1)
        (segment,) = list(source.glob("wal-*.seg"))
        data = bytearray(segment.read_bytes())
        ends = segment_record_ends(segment)
        # Flip one payload byte inside the third record.
        target = ends[1] + 12
        data[target] ^= 0xFF
        segment.write_bytes(bytes(data))

        scan = scan_segment(segment)
        assert scan.error is not None
        assert len(scan.records) == 2

        events = read_all(source)
        assert [e.lsn for e in events] == [1, 2]

    def test_damage_in_sealed_segment_refuses_to_open(self, tmp_path):
        """Only the *last* segment may be torn; damage earlier in the
        log is corruption the WAL must refuse to paper over."""
        source = tmp_path / "wal"
        with WriteAheadLog(source, segment_bytes=256) as wal:
            for i in range(40):
                wal.append("a", "b", i + 1)
        segments = sorted(source.glob("wal-*.seg"))
        assert len(segments) > 2
        data = bytearray(segments[0].read_bytes())
        data[-3] ^= 0xFF
        segments[0].write_bytes(bytes(data))
        with pytest.raises(StoreCorruptionError):
            WriteAheadLog(source, segment_bytes=256)

    def test_bad_magic_scans_invalid(self, tmp_path):
        path = tmp_path / "wal-0000000000000001.seg"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 24)
        scan = scan_segment(path)
        assert scan.valid_bytes == 0
        assert "magic" in scan.error

    def test_torn_header_reopens_empty(self, tmp_path):
        source = tmp_path / "wal"
        with WriteAheadLog(source) as wal:
            wal.append("a", "b", 1)
        (segment,) = list(source.glob("wal-*.seg"))
        segment.write_bytes(segment.read_bytes()[:4])
        with WriteAheadLog(source) as wal:
            assert wal.last_lsn == 0
            assert wal.replay() == []
            # ... and is usable again.
            assert wal.append("a", "b", 1) == 1


class TestStats:
    def test_stats_shape(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.append("a", "b", 1)
            stats = wal.stats()
        assert stats["last_lsn"] == 1
        assert stats["segments"] == 1
        assert stats["appends"] >= 1
        assert stats["fsyncs"] >= 1

    def test_copy_of_wal_replays_identically(self, tmp_path):
        """A byte-level copy (backup) of the wal directory is as good as
        the original — nothing depends on inode state."""
        source = tmp_path / "a"
        with WriteAheadLog(source, segment_bytes=256) as wal:
            for i in range(30):
                wal.append("a", "b", i + 1)
        copy = tmp_path / "b"
        shutil.copytree(source, copy)
        assert [
            (e.lsn, e.t) for e in read_all(copy, segment_bytes=256)
        ] == [(i + 1, i + 1) for i in range(30)]
