"""Directory-lock hardening: owner metadata, dead writers, takeover."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.errors import StoreError
from repro.graph.temporal_graph import TemporalGraph
from repro.store.index_store import (
    LOCK_NAME,
    IndexStore,
    _pid_alive,
    _read_lock_owner,
)

fcntl = pytest.importorskip("fcntl")


def small_graph() -> TemporalGraph:
    return TemporalGraph([("a", "b", 1), ("b", "c", 2), ("a", "c", 3)])


def lock_path(store: IndexStore, key: str):
    return store.root / key / LOCK_NAME


class TestOwnerMetadata:
    def test_holder_records_pid_and_clears_on_release(self, tmp_path):
        store = IndexStore(tmp_path)
        observed: list[dict | None] = []

        original = store._write_manifest

        def spy(key, manifest):
            observed.append(store.lock_info(key))
            original(key, manifest)

        store._write_manifest = spy
        key = store.save_graph(small_graph())
        assert observed and observed[0] is not None
        assert observed[0]["pid"] == os.getpid()
        assert "acquired_at" in observed[0]
        # Released: the stamp is gone, nothing reads as an owner.
        assert store.lock_info(key) is None

    def test_lock_info_on_never_locked_key(self, tmp_path):
        store = IndexStore(tmp_path)
        assert store.lock_info("nope") is None

    def test_garbage_lock_file_reads_as_no_owner(self, tmp_path):
        store = IndexStore(tmp_path)
        key = store.save_graph(small_graph())
        lock_path(store, key).write_bytes(b"\x00not json")
        assert store.lock_info(key) is None
        # And a writer acquires over it without fuss.
        store.save_graph(small_graph())

    def test_pid_alive_probes(self):
        assert _pid_alive(os.getpid())
        assert not _pid_alive(-5)


class TestContention:
    def test_timeout_names_live_holder(self, tmp_path):
        store = IndexStore(tmp_path, lock_timeout=0.3)
        key = store.save_graph(small_graph())
        path = lock_path(store, key)
        with open(path, "a+b") as blocker:
            fcntl.flock(blocker.fileno(), fcntl.LOCK_EX)
            path.write_text(
                json.dumps({"pid": os.getpid(), "acquired_at": time.time()}),
                encoding="utf-8",
            )
            with pytest.raises(StoreError) as caught:
                store.save_graph(small_graph())
            assert f"pid {os.getpid()}" in str(caught.value)
        assert store.stale_takeovers == 0

    def test_waits_for_live_holder_without_takeover(self, tmp_path):
        """A live writer is waited on even if slow; no rotation happens."""
        store = IndexStore(tmp_path, lock_timeout=5.0)
        key = store.save_graph(small_graph())
        path = lock_path(store, key)
        holder = subprocess.Popen(
            [
                sys.executable,
                "-c",
                textwrap.dedent(
                    f"""
                    import fcntl, json, os, sys, time
                    handle = open({str(path)!r}, "a+b")
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                    handle.truncate(0)
                    handle.write(json.dumps(
                        {{"pid": os.getpid(), "acquired_at": time.time()}}
                    ).encode())
                    handle.flush()
                    print("locked", flush=True)
                    time.sleep(0.5)
                    handle.truncate(0)
                    sys.exit(0)
                    """
                ),
            ],
            stdout=subprocess.PIPE,
        )
        try:
            assert holder.stdout is not None
            assert holder.stdout.readline().strip() == b"locked"
            started = time.monotonic()
            store.save_graph(small_graph())  # blocks until the holder exits
            assert time.monotonic() - started > 0.1
            assert store.stale_takeovers == 0
        finally:
            holder.wait(timeout=10)


class TestCrashRecovery:
    def test_sigkilled_writer_does_not_block_the_store(self, tmp_path):
        """A writer SIGKILL'd mid-critical-section leaves a recoverable lock.

        The kernel drops the flock with the dead process, but its owner
        stamp survives on disk; the next writer must acquire promptly
        and replace the stamp with its own.
        """
        store = IndexStore(tmp_path, lock_timeout=10.0)
        key = store.save_graph(small_graph())
        path = lock_path(store, key)
        victim = subprocess.Popen(
            [
                sys.executable,
                "-c",
                textwrap.dedent(
                    f"""
                    import fcntl, json, os, time
                    handle = open({str(path)!r}, "a+b")
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                    handle.truncate(0)
                    handle.write(json.dumps(
                        {{"pid": os.getpid(), "acquired_at": time.time()}}
                    ).encode())
                    handle.flush()
                    print("locked", flush=True)
                    time.sleep(60)
                    """
                ),
            ],
            stdout=subprocess.PIPE,
        )
        try:
            assert victim.stdout is not None
            assert victim.stdout.readline().strip() == b"locked"
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=10)
            # Crash left the dead writer's stamp behind.
            owner = _read_lock_owner(path)
            assert owner is not None and owner["pid"] == victim.pid
            assert not _pid_alive(victim.pid)
            started = time.monotonic()
            store.save_graph(small_graph())
            assert time.monotonic() - started < 5.0
            assert store.lock_info(key) is None  # new writer cleaned up
        finally:
            if victim.poll() is None:  # pragma: no cover - defensive
                victim.kill()
                victim.wait(timeout=10)

    def test_dead_owner_holding_flock_is_rotated_out(self, tmp_path):
        """Dead recorded owner + still-held flock → lock file rotation.

        Real kernels release a dead process's flock, so the held-past-
        death state is simulated with a second descriptor in this
        process while the stamp names a pid that no longer exists.
        """
        store = IndexStore(tmp_path, lock_timeout=10.0)
        key = store.save_graph(small_graph())
        path = lock_path(store, key)
        # Find a dead pid: spawn-and-reap.
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait(timeout=10)
        dead_pid = probe.pid
        assert not _pid_alive(dead_pid)
        blocker = open(path, "a+b")
        try:
            fcntl.flock(blocker.fileno(), fcntl.LOCK_EX)
            path.write_text(
                json.dumps({"pid": dead_pid, "acquired_at": time.time()}),
                encoding="utf-8",
            )
            started = time.monotonic()
            store.save_graph(small_graph())  # must not wait out the timeout
            elapsed = time.monotonic() - started
            assert elapsed < 5.0
            assert store.stale_takeovers == 1
            # The blocker still flocks the *orphaned* inode; the live lock
            # file was rotated and is now owned/cleared by the new writer.
            assert store.lock_info(key) is None
        finally:
            blocker.close()

    def test_takeover_keeps_manifest_consistent(self, tmp_path):
        """After a takeover, writes land normally (manifest round-trips)."""
        store = IndexStore(tmp_path, lock_timeout=10.0)
        graph = small_graph()
        key = store.save_graph(graph)
        path = lock_path(store, key)
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait(timeout=10)
        blocker = open(path, "a+b")
        try:
            fcntl.flock(blocker.fileno(), fcntl.LOCK_EX)
            path.write_text(
                json.dumps({"pid": probe.pid, "acquired_at": time.time()}),
                encoding="utf-8",
            )
            from repro.core.index import CoreIndex

            store.save_index(CoreIndex(graph, 2))
        finally:
            blocker.close()
        assert store.stored_ks(key) == [2]
        assert store.load_index(graph, 2) is not None
