"""IndexStore.recover + StreamingCoreService WAL restore semantics."""

from __future__ import annotations

import pytest

from repro.core.maintenance import StreamingCoreService
from repro.errors import ReproError
from repro.store import IndexStore


EDGES = [
    ("a", "b", 1), ("b", "c", 1), ("a", "c", 2), ("c", "d", 3),
    ("b", "d", 3), ("a", "d", 4), ("d", "e", 5), ("c", "e", 5),
]


@pytest.fixture()
def store(tmp_path):
    return IndexStore(tmp_path / "store")


def canon(seq):
    return sorted((t, tuple(sorted((str(u), str(v))))) for u, v, t in seq)


def graph_triples(graph):
    return [
        (graph.label_of(u), graph.label_of(v), graph.raw_time_of(t))
        for u, v, t in graph.edges
    ]


class TestStoreRecover:
    def test_wal_only_key(self, store):
        with store.wal("s") as wal:
            for u, v, t in EDGES[:3]:
                wal.append(u, v, t)
        recovery = store.recover("s")
        try:
            assert recovery.graph is None
            assert recovery.snapshot_lsn == 0
            assert [(e.u, e.v, e.t) for e in recovery.events] == EDGES[:3]
            assert recovery.replayed == 3
        finally:
            recovery.wal.close()

    def test_snapshot_plus_tail(self, store):
        service = StreamingCoreService((2,), wal=store.wal("s"))
        for u, v, t in EDGES[:5]:
            service.append(u, v, t)
        service.snapshot(store, name="s")
        for u, v, t in EDGES[5:]:
            service.append(u, v, t)
        service.wal.close()

        recovery = store.recover("s")
        try:
            assert recovery.snapshot_lsn == 5
            assert recovery.graph is not None
            assert canon(graph_triples(recovery.graph)) == canon(EDGES[:5])
            assert [(e.u, e.v, e.t) for e in recovery.events] == EDGES[5:]
        finally:
            recovery.wal.close()

    def test_unknown_key_has_empty_recovery(self, store):
        recovery = store.recover("nothing")
        try:
            assert recovery.graph is None
            assert recovery.events == []
        finally:
            recovery.wal.close()

    def test_stream_lsn_roundtrip(self, store):
        service = StreamingCoreService((2,), wal=store.wal("s"))
        for u, v, t in EDGES:
            service.append(u, v, t)
        service.snapshot(store, name="s")
        service.wal.close()
        assert store.stream_lsn("s") == len(EDGES)


class TestServiceWal:
    def test_append_returns_lsn(self, store):
        service = StreamingCoreService((2,), wal=store.wal("s"))
        assert service.append("a", "b", 1) == 1
        assert service.append("b", "c", 2) == 2
        assert service.extend([("a", "c", 3), ("b", "d", 3)]) == 2
        service.wal.close()

    def test_dedupe_token_across_restart(self, store):
        service = StreamingCoreService((2,), wal=store.wal("s"))
        lsn = service.append("a", "b", 1, token="tok-1")
        service.wal.close()

        resumed = StreamingCoreService.restore(store, (2,), name="s", wal=True)
        # The retried append answers the original LSN and applies nothing.
        assert resumed.append("a", "b", 1, token="tok-1") == lsn
        assert resumed.num_edges == 1
        resumed.wal.close()

    def test_restore_replays_tail_and_serves(self, store):
        service = StreamingCoreService((2,), wal=store.wal("s"))
        for u, v, t in EDGES[:5]:
            service.append(u, v, t)
        service.snapshot(store, name="s")
        for u, v, t in EDGES[5:]:
            service.append(u, v, t)
        service.refresh()
        want = service.query(1, service.graph.tmax)
        service.wal.close()

        resumed = StreamingCoreService.restore(store, (2,), name="s", wal=True)
        assert resumed.num_edges == len(EDGES)
        resumed.refresh()
        got = resumed.query(1, resumed.graph.tmax)
        assert {frozenset(c.vertex_labels(resumed.graph)) for c in got.cores} \
            == {frozenset(c.vertex_labels(service.graph)) for c in want.cores}
        resumed.wal.close()

    def test_restore_without_wal_matches_plain_path(self, store, paper_graph):
        """wal='auto' on a store without segments behaves like before."""
        from repro.core.index import CoreIndex

        store.save_graph(paper_graph, name="p")
        store.save_index(CoreIndex(paper_graph, 2), name="p")
        service = StreamingCoreService.restore(store, (2,), name="p")
        assert service.wal is None
        assert service.num_edges == paper_graph.num_edges

    def test_wal_rejects_out_of_order_batch_before_writing(self, store):
        service = StreamingCoreService((2,), wal=store.wal("s"))
        service.append("a", "b", 5)
        with pytest.raises(ReproError):
            service.extend([("b", "c", 6), ("c", "d", 4)])
        # The invalid batch must not have been half-written to the log.
        assert service.wal.last_lsn == 1
        assert service.num_edges == 1
        service.wal.close()

    def test_snapshot_trims_wal(self, store):
        service = StreamingCoreService(
            (2,), wal=store.wal("s", segment_bytes=256)
        )
        for i in range(40):
            service.append(f"n{i % 6}", f"n{(i + 1) % 6}", i + 1)
        assert len(service.wal.segment_paths()) > 2
        service.snapshot(store, name="s")
        assert len(service.wal.segment_paths()) == 1
        # Everything lives in the snapshot now; replay past it is empty.
        assert service.wal.pending_after(store.stream_lsn("s")) == 0
        service.wal.close()

    def test_snapshot_then_restore_without_new_appends(self, store):
        service = StreamingCoreService((2,), wal=store.wal("s"))
        for u, v, t in EDGES:
            service.append(u, v, t)
        service.snapshot(store, name="s")
        service.wal.close()
        resumed = StreamingCoreService.restore(store, (2,), name="s", wal=True)
        assert resumed.num_edges == len(EDGES)
        assert resumed.num_pending == 0
        resumed.wal.close()


class TestCorruptBlobCounters:
    def test_corrupt_graph_read_is_counted_and_logged(self, store, paper_graph,
                                                      caplog):
        from repro.errors import StoreCorruptionError

        store.save_graph(paper_graph, name="g")
        path = store.root / "g" / "graph.bin"
        data = bytearray(path.read_bytes())
        data[-4] ^= 0xFF
        path.write_bytes(bytes(data))

        with caplog.at_level("WARNING", logger="repro.store"):
            with pytest.raises(StoreCorruptionError):
                store.load_graph("g")
        assert any("graph.bin" in r.message for r in caplog.records)
        text = store.metrics.render_prometheus()
        assert 'repro_store_corrupt_blobs_total' in text
        assert 'kind="graph"' in text
