"""IndexStore.build_all: one shared scan persists every missing k."""

from __future__ import annotations

import pytest

import repro.core.index as index_module
import repro.core.multik as multik_module
from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.index import CoreIndex
from repro.errors import InvalidParameterError
from repro.store import IndexStore


@pytest.fixture()
def store(tmp_path):
    return IndexStore(tmp_path / "store")


class TestBuildAll:
    def test_builds_and_persists_every_k(self, store, paper_graph):
        indexes = store.build_all(paper_graph, [2, 3, 5], name="paper")
        assert sorted(indexes) == [2, 3, 5]
        assert store.stored_ks("paper") == [2, 3, 5]

    def test_persisted_blobs_reload_and_answer(self, store, paper_graph):
        store.build_all(paper_graph, [2, 3], name="paper")
        reloaded = store.load_index(paper_graph, 3)
        assert reloaded is not None
        expected = enumerate_temporal_kcores(paper_graph, 3, 1, 7).edge_sets()
        assert reloaded.query(1, 7).edge_sets() == expected

    def test_idempotent_second_call_computes_nothing(
        self, store, paper_graph, monkeypatch
    ):
        store.build_all(paper_graph, [2, 3], name="paper")

        def explode(*args, **kwargs):
            raise AssertionError("build_all recomputed a stored index")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        monkeypatch.setattr(multik_module, "compute_core_times_multi", explode)
        indexes = store.build_all(paper_graph, [2, 3], name="paper")
        assert sorted(indexes) == [2, 3]

    def test_extends_existing_directory(self, store, paper_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        store.build_all(paper_graph, [2, 3, 4], name="paper")
        assert store.stored_ks("paper") == [2, 3, 4]

    def test_corrupt_entry_is_rebuilt(self, store, paper_graph):
        store.build_all(paper_graph, [2, 3], name="paper")
        path = store.root / "paper" / "k2.idx"
        path.write_bytes(path.read_bytes()[:-32])
        indexes = store.build_all(paper_graph, [2, 3], name="paper")
        assert indexes[2].query(1, 4).num_results == 2
        assert store.load_index(paper_graph, 2) is not None  # overwritten

    def test_multik_equals_per_k_saved_blobs(self, tmp_path, paper_graph):
        """The persisted multi-k blobs byte-match per-k saved ones."""
        one = IndexStore(tmp_path / "one")
        for k in (2, 3):
            one.save_index(CoreIndex(paper_graph, k), name="paper")
        many = IndexStore(tmp_path / "many")
        many.build_all(paper_graph, [2, 3], name="paper")
        for k in (2, 3):
            a = (one.root / "paper" / f"k{k}.idx").read_bytes()
            b = (many.root / "paper" / f"k{k}.idx").read_bytes()
            assert a == b, f"k={k} blob differs"

    def test_validation(self, store, paper_graph):
        with pytest.raises(InvalidParameterError):
            store.build_all(paper_graph, [])
        with pytest.raises(InvalidParameterError):
            store.build_all(paper_graph, [0, 2])

    def test_named_build_never_splits_directories(self, store, paper_graph):
        """All ks land under `name` even if a fingerprint key exists."""
        store.save_index(CoreIndex(paper_graph, 2))  # fingerprint-derived key
        derived = store.find(paper_graph)
        assert derived != "paper"
        store.build_all(paper_graph, [2, 3], name="paper")
        assert store.stored_ks("paper") == [2, 3]  # both, not just k=3
        assert store.stored_ks(derived) == [2]  # untouched

    def test_unnamed_build_reuses_existing_directory(self, store, paper_graph):
        store.save_index(CoreIndex(paper_graph, 2), name="paper")
        store.build_all(paper_graph, [2, 3])  # no name: same directory
        assert store.keys() == ["paper"]
        assert store.stored_ks("paper") == [2, 3]
