"""The binary blob container: round trips, integrity, versioning."""

from __future__ import annotations

import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.store.format import FORMAT_VERSION, MAGIC, read_blob, write_blob


@pytest.fixture()
def blob_path(tmp_path):
    return tmp_path / "test.bin"


class TestRoundTrip:
    def test_sections_and_meta_survive(self, blob_path):
        sections = {
            "a": [1, 2, 3],
            "b": [],
            "c": [-5, 1 << 40, 0],
        }
        write_blob(blob_path, "test-kind", {"x": 7, "name": "n"}, sections)
        blob = read_blob(blob_path)
        assert blob.kind == "test-kind"
        assert blob.meta == {"x": 7, "name": "n"}
        assert {name: list(view) for name, view in blob.sections.items()} == sections

    def test_empty_sections(self, blob_path):
        write_blob(blob_path, "k", {}, {})
        blob = read_blob(blob_path)
        assert blob.sections == {}

    def test_negative_and_large_values(self, blob_path):
        values = [-(1 << 62), -1, 0, 1, (1 << 62)]
        write_blob(blob_path, "k", {}, {"v": values})
        assert list(read_blob(blob_path).sections["v"]) == values

    def test_write_returns_file_size(self, blob_path):
        written = write_blob(blob_path, "k", {}, {"v": [1, 2]})
        assert written == blob_path.stat().st_size


class TestIntegrity:
    def test_not_a_blob(self, blob_path):
        blob_path.write_bytes(b"definitely not a store blob at all")
        with pytest.raises(StoreError):
            read_blob(blob_path)

    def test_unsupported_version(self, blob_path):
        write_blob(blob_path, "k", {}, {"v": [1]})
        raw = bytearray(blob_path.read_bytes())
        raw[8:12] = (FORMAT_VERSION + 1).to_bytes(4, "little")
        blob_path.write_bytes(bytes(raw))
        with pytest.raises(StoreError, match="version"):
            read_blob(blob_path)

    def test_truncation_detected(self, blob_path):
        write_blob(blob_path, "k", {}, {"v": list(range(64))})
        raw = blob_path.read_bytes()
        blob_path.write_bytes(raw[:-16])
        with pytest.raises(StoreCorruptionError, match="truncated"):
            read_blob(blob_path)

    def test_bit_flip_detected(self, blob_path):
        write_blob(blob_path, "k", {}, {"v": list(range(64))})
        raw = bytearray(blob_path.read_bytes())
        raw[-1] ^= 0xFF
        blob_path.write_bytes(bytes(raw))
        with pytest.raises(StoreCorruptionError, match="checksum"):
            read_blob(blob_path)

    def test_verify_false_skips_checksum(self, blob_path):
        write_blob(blob_path, "k", {}, {"v": list(range(64))})
        raw = bytearray(blob_path.read_bytes())
        raw[-1] ^= 0xFF
        blob_path.write_bytes(bytes(raw))
        blob = read_blob(blob_path, verify=False)
        assert len(blob.sections["v"]) == 64

    def test_verify_false_still_detects_truncation(self, blob_path):
        write_blob(blob_path, "k", {}, {"v": list(range(64))})
        raw = blob_path.read_bytes()
        blob_path.write_bytes(raw[:-16])
        with pytest.raises(StoreCorruptionError):
            read_blob(blob_path, verify=False)

    def test_magic_is_stable(self, blob_path):
        # The on-disk magic is a compatibility promise; changing it
        # breaks every existing store.
        write_blob(blob_path, "k", {}, {})
        assert blob_path.read_bytes()[:8] == MAGIC == b"RPROSTOR"

    def test_no_temp_file_left_behind(self, blob_path, tmp_path):
        write_blob(blob_path, "k", {}, {"v": [1]})
        assert [p.name for p in tmp_path.iterdir()] == ["test.bin"]
