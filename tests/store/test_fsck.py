"""Store scrubber: quarantine-never-delete, repair of rebuildables."""

from __future__ import annotations

import json

import pytest

from repro.core.index import CoreIndex
from repro.store import IndexStore, scrub_store
from repro.store.index_store import MANIFEST_NAME
from repro.store.wal import WriteAheadLog


@pytest.fixture()
def populated(tmp_path, paper_graph):
    """A store with one key: graph + k=2 index + a short WAL."""
    root = tmp_path / "store"
    store = IndexStore(root)
    store.save_graph(paper_graph, name="g")
    store.save_index(CoreIndex(paper_graph, 2), name="g")
    with store.wal("g") as wal:
        for i in range(4):
            wal.append("a", "b", i + 1)
    return root


def flip_byte(path, offset=-4):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCleanStore:
    def test_clean_report(self, populated):
        report = scrub_store(populated)
        assert report.clean
        assert report.issues == []
        assert report.scanned_files >= 3

    def test_render_and_dict(self, populated):
        report = scrub_store(populated)
        assert "clean" in report.render()
        payload = report.to_dict()
        assert payload["clean"] is True
        assert payload["issues"] == []

    def test_missing_root_rejected(self, tmp_path):
        from repro.errors import StoreError

        with pytest.raises(StoreError):
            scrub_store(tmp_path / "void")

    def test_empty_root_is_clean(self, tmp_path):
        (tmp_path / "empty").mkdir()
        assert scrub_store(tmp_path / "empty").clean

    def test_accepts_store_instance(self, populated):
        assert scrub_store(IndexStore(populated)).clean


class TestCorruptBlobs:
    def test_corrupt_index_quarantined_and_entry_dropped(self, populated):
        index_path = populated / "g" / "k2.idx"
        flip_byte(index_path)
        blob_bytes = index_path.read_bytes()

        report = scrub_store(populated)
        assert not report.clean
        kinds = {issue.kind for issue in report.issues}
        assert "index" in kinds
        # The damaged blob was moved aside byte-for-byte, never deleted.
        assert not index_path.exists()
        quarantined = populated / "g" / "k2.idx.corrupt"
        assert quarantined.read_bytes() == blob_bytes
        # The manifest no longer references it — the store reopens clean
        # and the index is simply rebuildable.
        store = IndexStore(populated)
        assert store.stored_ks("g") == []
        assert store.load_graph("g") is not None
        assert scrub_store(populated).clean

    def test_corrupt_graph_quarantined_not_deleted(self, populated):
        manifest = json.loads(
            (populated / "g" / MANIFEST_NAME).read_text()
        )
        graph_path = populated / "g" / manifest["graph_file"]
        flip_byte(graph_path)
        report = scrub_store(populated)
        assert any(
            issue.kind == "graph" and issue.action == "quarantined"
            for issue in report.issues
        )
        assert not graph_path.exists()
        assert graph_path.with_name(graph_path.name + ".corrupt").exists()

    def test_missing_index_entry_repaired(self, populated):
        (populated / "g" / "k2.idx").unlink()
        report = scrub_store(populated)
        assert any(
            issue.kind == "index" and issue.action == "repaired"
            for issue in report.issues
        )
        assert IndexStore(populated).stored_ks("g") == []

    def test_unparseable_manifest_quarantined(self, populated):
        (populated / "g" / MANIFEST_NAME).write_text("{nope")
        report = scrub_store(populated)
        assert any(
            issue.kind == "manifest" and issue.action == "quarantined"
            for issue in report.issues
        )
        assert (populated / "g" / (MANIFEST_NAME + ".corrupt")).exists()

    def test_quarantine_names_never_collide(self, populated):
        """Two scrub passes over twice-corrupted data keep both bodies."""
        index_path = populated / "g" / "k2.idx"
        flip_byte(index_path)
        scrub_store(populated)
        # Recreate a damaged file under the same name and scrub again —
        # requires a manifest entry pointing at it again.
        manifest_path = populated / "g" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest.setdefault("indexes", {})["2"] = {"file": "k2.idx"}
        manifest_path.write_text(json.dumps(manifest))
        index_path.write_bytes(b"garbage body")
        scrub_store(populated)
        assert (populated / "g" / "k2.idx.corrupt").exists()
        assert (populated / "g" / "k2.idx.corrupt.1").exists()


class TestWalScrub:
    def test_torn_tail_repaired(self, populated):
        (segment,) = sorted((populated / "g" / "wal").glob("wal-*.seg"))
        data = segment.read_bytes()
        segment.write_bytes(data[:-3])
        report = scrub_store(populated)
        assert any(
            issue.kind == "wal" and issue.action == "repaired"
            for issue in report.issues
        )
        # The torn bytes were preserved aside, the segment truncated to
        # its valid prefix, and the WAL reopens with the surviving records.
        quarantined = list((populated / "g" / "wal").glob("*.corrupt*"))
        assert quarantined
        with WriteAheadLog(populated / "g" / "wal") as wal:
            assert wal.last_lsn == 3
        assert scrub_store(populated).clean

    def test_midlog_damage_quarantines_segment(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        wal_dir = root / "g" / "wal"
        with WriteAheadLog(wal_dir, segment_bytes=256) as wal:
            for i in range(40):
                wal.append("a", "b", i + 1)
        segments = sorted(wal_dir.glob("wal-*.seg"))
        assert len(segments) > 2
        flip_byte(segments[0], offset=20)
        report = scrub_store(root)
        wal_issues = [i for i in report.issues if i.kind == "wal"]
        assert wal_issues
        # The damaged segment and everything after it (now untrustworthy)
        # were quarantined; nothing was deleted.
        assert not segments[0].exists()
        assert list(wal_dir.glob("*.corrupt*"))


class TestDryRun:
    def test_dry_run_touches_nothing(self, populated):
        index_path = populated / "g" / "k2.idx"
        flip_byte(index_path)
        snapshot = {
            p: p.read_bytes()
            for p in populated.rglob("*")
            if p.is_file() and p.name != ".lock"
        }
        report = scrub_store(populated, repair=False)
        assert not report.clean
        assert all(
            issue.action in ("would-quarantine", "would-repair", "reported")
            for issue in report.issues
        )
        after = {
            p: p.read_bytes()
            for p in populated.rglob("*")
            if p.is_file() and p.name != ".lock"
        }
        assert after == snapshot


class TestOrphans:
    def test_stray_tmp_reported_not_removed(self, populated):
        stray = populated / "g" / (MANIFEST_NAME + ".tmp.12345")
        stray.write_text("{}")
        report = scrub_store(populated)
        assert any(
            issue.kind == "orphan" and issue.action == "reported"
            for issue in report.issues
        )
        assert stray.exists()

    def test_quarantined_files_not_reflagged(self, populated):
        flip_byte(populated / "g" / "k2.idx")
        scrub_store(populated)
        report = scrub_store(populated)
        assert report.clean
