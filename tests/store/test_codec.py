"""Codec round trips: graphs and indexes are bit-identical after disk.

The property tests run over the shared seeded ``random_graph`` fixture
and compare the loaded structures against the seed reference kernel
(``coretime_ref``) — the same oracle the flat-kernel equivalence suite
uses — so a persistence bug cannot hide behind a kernel bug.
"""

from __future__ import annotations

import pytest

from repro.core.coretime_ref import compute_core_times_reference
from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.index import CoreIndex
from repro.errors import StoreError
from repro.graph.temporal_graph import TemporalGraph
from repro.store import codec
from repro.store.views import FlatEdgeSkyline, FlatVertexCoreTimes


class TestGraphRoundTrip:
    def test_exact_ids_labels_and_raw_times(self, tmp_path, paper_graph):
        path = tmp_path / "graph.bin"
        codec.dump_graph(path, paper_graph)
        loaded = codec.load_graph(path)
        assert loaded.edges == paper_graph.edges
        assert loaded.num_vertices == paper_graph.num_vertices
        for u in range(paper_graph.num_vertices):
            assert loaded.label_of(u) == paper_graph.label_of(u)
        for t in range(1, paper_graph.tmax + 1):
            assert loaded.raw_time_of(t) == paper_graph.raw_time_of(t)
            assert loaded.edge_ids_at(t) == paper_graph.edge_ids_at(t)
        assert loaded.time_offsets() == paper_graph.time_offsets()
        assert loaded.id_of("v1") == paper_graph.id_of("v1")

    def test_compiled_view_is_attached_and_equal(self, tmp_path, random_graph):
        path = tmp_path / "graph.bin"
        codec.dump_graph(path, random_graph)
        loaded = codec.load_graph(path)
        original, restored = random_graph.compiled(), loaded.compiled()
        for name in ("adj_offsets", "adj_neighbour", "pair_times", "slot_pid",
                     "edge_slot_u", "edge_slot_v", "inc_offsets", "full_degree"):
            assert list(getattr(restored, name)) == list(getattr(original, name)), name
        assert restored.np_inc_time.tolist() == original.np_inc_time.tolist()
        assert restored.np_slot_first_time.tolist() == original.np_slot_first_time.tolist()

    def test_kernel_runs_on_loaded_graph(self, tmp_path, random_graph):
        """Full Algorithm 2 over the mmap-backed arrays matches the oracle."""
        path = tmp_path / "graph.bin"
        codec.dump_graph(path, random_graph)
        loaded = codec.load_graph(path)
        reference = compute_core_times_reference(random_graph, 2)
        from repro.core.coretime import compute_core_times

        result = compute_core_times(loaded, 2)
        for u in range(random_graph.num_vertices):
            assert result.vct.entries_of(u) == reference.vct.entries_of(u)
        for eid in range(random_graph.num_edges):
            assert result.ecs.windows_of(eid) == reference.ecs.windows_of(eid)

    def test_fingerprint_matches_after_round_trip(self, tmp_path, paper_graph):
        path = tmp_path / "graph.bin"
        codec.dump_graph(path, paper_graph)
        loaded = codec.load_graph(path)
        assert codec.graph_fingerprint(loaded) == codec.graph_fingerprint(paper_graph)

    def test_unpersistable_labels_rejected(self, tmp_path):
        graph = TemporalGraph([(("tuple", 1), "b", 1), ("b", "c", 2), (("tuple", 1), "c", 3)])
        with pytest.raises(StoreError, match="label"):
            codec.dump_graph(tmp_path / "graph.bin", graph)

    def test_int_labels_survive_as_ints(self, tmp_path):
        graph = TemporalGraph([(10, 20, 1), (20, 30, 2), (10, 30, 3)])
        path = tmp_path / "graph.bin"
        codec.dump_graph(path, graph)
        loaded = codec.load_graph(path)
        assert loaded.id_of(10) == graph.id_of(10)
        assert isinstance(loaded.label_of(0), int)


class TestIndexRoundTrip:
    def test_bit_identical_vs_reference_oracle(self, tmp_path, random_graph):
        """dump → load equals the seed reference kernel, entry for entry."""
        index = CoreIndex(random_graph, 2)
        path = tmp_path / "k2.idx"
        codec.dump_index(path, index)
        loaded = codec.load_index(path, random_graph)
        reference = compute_core_times_reference(random_graph, 2)
        for u in range(random_graph.num_vertices):
            assert loaded.vct.entries_of(u) == reference.vct.entries_of(u)
        for eid in range(random_graph.num_edges):
            assert loaded.ecs.windows_of(eid) == reference.ecs.windows_of(eid)
        assert loaded.vct.size() == reference.vct.size()
        assert loaded.ecs.size() == reference.ecs.size()

    def test_loaded_index_answers_queries(self, tmp_path, paper_graph):
        index = CoreIndex(paper_graph, 2)
        path = tmp_path / "k2.idx"
        codec.dump_index(path, index)
        loaded = codec.load_index(path, paper_graph)
        assert isinstance(loaded.vct, FlatVertexCoreTimes)
        assert isinstance(loaded.ecs, FlatEdgeSkyline)
        tmax = paper_graph.tmax
        for ts in range(1, tmax + 1):
            for te in range(ts, tmax + 1):
                assert (
                    loaded.query(ts, te).edge_sets()
                    == enumerate_temporal_kcores(paper_graph, 2, ts, te).edge_sets()
                ), (ts, te)

    def test_flat_vct_lookups(self, tmp_path, random_graph):
        index = CoreIndex(random_graph, 2)
        path = tmp_path / "k2.idx"
        codec.dump_index(path, index)
        loaded = codec.load_index(path, random_graph)
        for ts in range(1, random_graph.tmax + 1):
            for u in range(random_graph.num_vertices):
                assert loaded.vct.core_time(u, ts) == index.vct.core_time(u, ts)

    def test_flat_skyline_restriction(self, tmp_path, random_graph):
        index = CoreIndex(random_graph, 2)
        path = tmp_path / "k2.idx"
        codec.dump_index(path, index)
        loaded = codec.load_index(path, random_graph)
        tmax = random_graph.tmax
        for ts, te in [(1, tmax), (2, tmax - 1), (tmax // 2, tmax)]:
            if ts > te:
                continue
            narrow, expected = loaded.ecs.restricted_to(ts, te), index.ecs.restricted_to(ts, te)
            for eid in range(random_graph.num_edges):
                assert narrow.windows_of(eid) == expected.windows_of(eid)

    def test_flat_skyline_invariant_checkable(self, tmp_path, paper_graph):
        index = CoreIndex(paper_graph, 2)
        path = tmp_path / "k2.idx"
        codec.dump_index(path, index)
        codec.load_index(path, paper_graph).ecs.check_skyline_invariant()

    def test_fingerprint_mismatch_rejected(self, tmp_path, paper_graph, triangle_graph):
        index = CoreIndex(paper_graph, 2)
        path = tmp_path / "k2.idx"
        codec.dump_index(path, index)
        with pytest.raises(StoreError, match="fingerprint"):
            codec.load_index(path, triangle_graph)

    def test_text_dump_works_from_flat_views(self, tmp_path, paper_graph):
        """The debug text format still renders from an mmap-backed index."""
        from repro.core.index import load_skyline, load_vct

        index = CoreIndex(paper_graph, 2)
        path = tmp_path / "k2.idx"
        codec.dump_index(path, index)
        loaded = codec.load_index(path, paper_graph)
        assert loaded.dumps_skyline() == index.dumps_skyline()
        assert loaded.dumps_vct() == index.dumps_vct()
        load_vct(loaded.dumps_vct())
        load_skyline(loaded.dumps_skyline())
