"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import paper_example_graph
from repro.graph.generators import uniform_random_temporal
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture()
def paper_graph() -> TemporalGraph:
    """The 9-vertex running example of the paper (Figure 1)."""
    return paper_example_graph()


@pytest.fixture()
def triangle_graph() -> TemporalGraph:
    """A minimal 2-core: one triangle spread over three timestamps."""
    return TemporalGraph([("a", "b", 1), ("b", "c", 2), ("a", "c", 3)])


@pytest.fixture(params=range(5))
def random_graph(request) -> TemporalGraph:
    """Five seeded random multigraphs, small enough for the oracle."""
    return uniform_random_temporal(12, 70, tmax=14, seed=request.param)


def canonical_triples(graph: TemporalGraph, core) -> frozenset:
    """Core edges as label triples with sorted endpoint order.

    Internal canonicalisation orders endpoints by first-seen vertex id,
    which differs from the paper's label order; tests compare against
    published data through this normalisation.
    """
    triples = set()
    for u, v, t in core.edge_triples(graph):
        a, b = sorted((str(u), str(v)))
        triples.add((a, b, t))
    return frozenset(triples)
