"""Tests for the one-shot text report over a metrics registry."""

from __future__ import annotations

from repro.obs import report
from repro.obs.metrics import MetricsRegistry


def test_empty_registry():
    assert report(MetricsRegistry()) == "no instruments registered\n"


def test_sections_and_rows():
    registry = MetricsRegistry()
    registry.counter("c_total", "events", ("k",)).labels("3").inc(5)
    registry.gauge("g_size").set(2)
    registry.histogram("h_seconds", "lat", buckets=(0.5, 1.0)).observe(0.25)
    text = report(registry)
    assert "== counters ==" in text
    assert "c_total  # events" in text
    assert "{k=3}" in text and " 5" in text
    assert "== gauges ==" in text
    assert "== latency histograms ==" in text
    assert "count=1" in text
    assert "p50<=500ms" in text


def test_empty_histogram_series_are_skipped():
    registry = MetricsRegistry()
    registry.histogram("h_seconds", buckets=(0.5,)).labels()
    text = report(registry)
    assert "h_seconds" in text
    assert "count=" not in text


def test_default_registry_is_used_when_none_given():
    # The process registry always has the built-in serving instruments.
    text = report()
    assert "repro_plan_requests_total" in text
