"""Metrics registry tests: instruments, labels, snapshots, concurrency."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    next_instance,
    set_timing_enabled,
    timing_enabled,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help", ())
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "", ())
        with pytest.raises(InvalidParameterError):
            counter.inc(-1)

    def test_labels_positional_and_by_name_bind_the_same_child(self):
        counter = Counter("c_total", "", ("a", "b"))
        child = counter.labels("x", "y")
        assert counter.labels(b="y", a="x") is child
        child.inc()
        assert counter.labels("x", "y").value == 1

    def test_label_cardinality_errors(self):
        counter = Counter("c_total", "", ("a", "b"))
        with pytest.raises(InvalidParameterError):
            counter.labels("x")  # too few
        with pytest.raises(InvalidParameterError):
            counter.labels("x", "y", "z")  # too many
        with pytest.raises(InvalidParameterError):
            counter.labels("x", b="y")  # mixed
        with pytest.raises(InvalidParameterError):
            counter.labels(a="x", c="y")  # wrong names
        with pytest.raises(InvalidParameterError):
            counter.inc()  # unlabeled use of a labelled instrument

    def test_label_values_coerced_to_strings(self):
        counter = Counter("c_total", "", ("k",))
        counter.labels(3).inc()
        assert counter.labels("3").value == 1

    def test_total_sums_children(self):
        counter = Counter("c_total", "", ("k",))
        counter.labels("2").inc(3)
        counter.labels("5").inc(4)
        assert counter.total() == 7


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "", ())
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus `le` semantics: an observation exactly on a bucket
        # boundary counts toward that bucket, not the next.
        hist = Histogram("h_seconds", "", (), buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)
        child = hist.labels()
        assert child.cumulative() == [0, 1, 1, 1]

    def test_overflow_goes_to_inf_bucket(self):
        hist = Histogram("h_seconds", "", (), buckets=(1.0,))
        hist.observe(100.0)
        assert hist.labels().cumulative() == [0, 1]

    def test_cumulative_counts_and_sum(self):
        hist = Histogram("h_seconds", "", (), buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 5.0):
            hist.observe(value)
        child = hist.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(8.5)
        assert child.cumulative() == [1, 3, 4]

    def test_quantile_is_bucket_upper_bound(self):
        hist = Histogram("h_seconds", "", (), buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            hist.observe(value)
        child = hist.labels()
        assert child.quantile(0.5) == 1.0
        assert child.quantile(0.95) == 4.0
        assert Histogram("e", "", (), buckets=(1.0,)).labels().quantile(0.5) == 0.0

    def test_invalid_buckets_rejected(self):
        for bad in ((), (2.0, 1.0), (1.0, 1.0)):
            with pytest.raises(InvalidParameterError):
                Histogram("h", "", (), buckets=bad)

    def test_trailing_inf_is_stripped(self):
        hist = Histogram("h", "", (), buckets=(1.0, float("inf")))
        assert hist.buckets == (1.0,)


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ("k",))
        assert registry.counter("x_total", "help", ("k",)) is first

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(InvalidParameterError):
            registry.gauge("x_total")  # kind conflict
        registry.counter("y_total", labelnames=("a",))
        with pytest.raises(InvalidParameterError):
            registry.counter("y_total", labelnames=("b",))  # label conflict
        registry.histogram("h_seconds", buckets=(1.0, 2.0))
        with pytest.raises(InvalidParameterError):
            registry.histogram("h_seconds", buckets=(1.0, 3.0))  # buckets

    def test_get_and_names(self):
        registry = MetricsRegistry()
        counter = registry.counter("b_total")
        registry.gauge("a")
        assert registry.get("b_total") is counter
        assert registry.get("absent") is None
        assert registry.names() == ["a", "b_total"]

    def test_snapshot_shape_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "the help", ("k",)).labels("3").inc(2)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = json.loads(registry.render_json())
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["help"] == "the help"
        assert snap["c_total"]["values"] == [
            {"labels": {"k": "3"}, "value": 2.0}
        ]
        hist = snap["h_seconds"]
        assert hist["buckets"] == [1.0]
        assert hist["values"][0]["bucket_counts"] == [1, 1]

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "events", ("k",)).labels("3").inc(2)
        registry.histogram("h_seconds", "lat", buckets=(0.5,)).observe(0.1)
        text = registry.render_prometheus()
        assert "# HELP c_total events" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{k="3"} 2' in text
        assert 'h_seconds_bucket{le="0.5"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.1" in text
        assert "h_seconds_count 1" in text

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("p",)).labels('a"b\\c').inc()
        assert 'c_total{p="a\\"b\\\\c"} 1' in registry.render_prometheus()


class TestMergeSnapshot:
    def test_counters_add_gauges_overwrite_histograms_add(self):
        source = MetricsRegistry()
        source.counter("c_total", "", ("k",)).labels("3").inc(2)
        source.gauge("g").set(7)
        source.histogram("h_seconds", buckets=(1.0, 2.0)).observe(1.5)

        target = MetricsRegistry()
        target.counter("c_total", "", ("k",)).labels("3").inc(1)
        target.gauge("g").set(100)
        target.histogram("h_seconds", buckets=(1.0, 2.0)).observe(0.5)

        target.merge_snapshot(source.snapshot())
        assert target.get("c_total").labels("3").value == 3
        assert target.get("g").value == 7
        hist = target.get("h_seconds").labels()
        assert hist.count == 2
        assert hist.sum == pytest.approx(2.0)
        assert hist.cumulative() == [1, 2, 2]

    def test_unknown_instruments_created_on_the_fly(self):
        source = MetricsRegistry()
        source.counter("fresh_total").inc(4)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.get("fresh_total").value == 4

    def test_double_merge_doubles_counters(self):
        source = MetricsRegistry()
        source.counter("c_total").inc(3)
        snap = source.snapshot()
        target = MetricsRegistry()
        target.merge_snapshot(snap)
        target.merge_snapshot(snap)
        assert target.get("c_total").value == 6


class TestConcurrency:
    def test_parallel_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("t",))
        hist = registry.histogram("h_seconds", buckets=(0.5,))
        threads, per_thread = 8, 500

        def work(tid: int) -> None:
            child = counter.labels(str(tid % 2))
            for _ in range(per_thread):
                child.inc()
                hist.observe(0.25)

        workers = [
            threading.Thread(target=work, args=(tid,))
            for tid in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.total() == threads * per_thread
        assert hist.count == threads * per_thread

    def test_snapshot_while_writing_is_internally_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.5, 1.0))
        stop = threading.Event()

        def write() -> None:
            while not stop.is_set():
                hist.observe(0.25)
                hist.observe(2.0)

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for _ in range(200):
                sample = registry.snapshot()["h_seconds"]["values"][0]
                # The +Inf cumulative bucket must always equal the
                # observation count, even mid-write.
                assert sample["bucket_counts"][-1] == sample["count"]
        finally:
            stop.set()
            writer.join()


class TestModuleState:
    def test_timing_switch_returns_previous(self):
        previous = set_timing_enabled(False)
        try:
            assert timing_enabled() is False
            assert set_timing_enabled(True) is False
        finally:
            set_timing_enabled(previous)
        assert timing_enabled() is previous

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_next_instance_is_unique_per_prefix(self):
        first = next_instance("testprefix")
        second = next_instance("testprefix")
        assert first != second
        assert first.startswith("testprefix-")
        assert next_instance("otherprefix").startswith("otherprefix-")

    def test_default_buckets_are_strictly_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
