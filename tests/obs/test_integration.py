"""End-to-end observability: the registry and traces versus real serving.

The acceptance test of the unified observability layer: after a mixed,
store-backed, process-parallel batch, ONE ``snapshot()`` of the process
metrics registry must report registry hits/misses, store loads, pool
dispatch counters and the plan/execute latency histograms — and every
component's legacy ``stats()`` dict must agree with the registry series
it claims to be a view of.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.batch import run_mixed_batch, run_query_batch
from repro.core.index import CoreIndex, CoreIndexRegistry
from repro.obs.metrics import get_registry
from repro.obs.trace import Trace
from repro.serve.parallel import WorkerPool
from repro.store import IndexStore


def sample(snap: dict, name: str, **labels) -> dict | None:
    """The snapshot sample of ``name`` whose labels include ``labels``."""
    for candidate in snap[name]["values"]:
        if all(candidate["labels"].get(k) == v for k, v in labels.items()):
            return candidate
    return None


def series_value(snap: dict, name: str, **labels) -> float:
    found = sample(snap, name, **labels)
    return found["value"] if found is not None else 0.0


class TestSnapshotCrossCheck:
    def test_mixed_store_backed_parallel_batch(
        self, tmp_path, paper_graph, triangle_graph
    ):
        store = IndexStore(tmp_path / "store")
        registry = CoreIndexRegistry(capacity=8, store=store)
        queries = [
            (paper_graph, 2, (1, 4)),
            (triangle_graph, 2, (1, 3)),
            (paper_graph, 3, (1, 7)),
            (paper_graph, 2, (2, 6)),
            (paper_graph, 2, (1, 4)),  # identical: dedup + registry hit
        ]
        with WorkerPool(
            store, processes=2, min_parallel_windows=0
        ) as pool:
            answers = run_mixed_batch(queries, registry=registry, parallel=pool)
            assert answers == run_mixed_batch(queries, registry=registry)
            pool_stats = pool.stats()
            pool_instance = pool.instance

        snap = get_registry().snapshot()

        # -- the index registry's stats() is a faithful view ------------
        registry_stats = registry.stats()
        instance = registry.instance
        assert registry_stats["hits"] == series_value(
            snap, "repro_registry_hits_total", registry=instance
        )
        assert registry_stats["misses"] == series_value(
            snap, "repro_registry_misses_total", registry=instance
        )
        assert registry_stats["store_hits"] == series_value(
            snap, "repro_registry_store_hits_total", registry=instance
        )
        assert registry_stats["multik_builds"] == series_value(
            snap, "repro_registry_multik_builds_total", registry=instance
        )
        for k, count in registry_stats["store_hits_by_k"].items():
            assert count == series_value(
                snap, "repro_registry_store_hits_by_k_total",
                registry=instance, k=str(k),
            )
        assert registry_stats["size"] == series_value(
            snap, "repro_registry_size", registry=instance
        )
        assert registry_stats["capacity"] == series_value(
            snap, "repro_registry_capacity", registry=instance
        )
        # The batch actually exercised the cache both ways.
        assert registry_stats["misses"] > 0
        assert registry_stats["hits"] > 0

        # -- the store's stats() is a faithful view ---------------------
        store_stats = store.stats()
        store_instance = store.instance
        assert store_stats["index_saves"] == series_value(
            snap, "repro_store_index_saves_total", store=store_instance
        )
        assert store_stats["index_load_hits"] == series_value(
            snap, "repro_store_index_loads_total",
            store=store_instance, outcome="hit",
        )
        assert store_stats["index_load_misses"] == series_value(
            snap, "repro_store_index_loads_total",
            store=store_instance, outcome="miss",
        )
        assert store_stats["stale_takeovers"] == series_value(
            snap, "repro_store_stale_takeovers_total", store=store_instance
        )
        assert store_stats["index_saves"] > 0  # the batch persisted misses

        # -- the pool's stats() is a faithful view ----------------------
        assert pool_stats["tasks_dispatched"] == series_value(
            snap, "repro_pool_tasks_dispatched_total", pool=pool_instance
        )
        assert pool_stats["chunks_lost"] == series_value(
            snap, "repro_pool_chunks_lost_total", pool=pool_instance
        )
        assert pool_stats["chunks_completed"]["worker"] == series_value(
            snap, "repro_pool_chunks_completed_total",
            pool=pool_instance, where="worker",
        )
        assert pool_stats["chunks_completed"]["parent"] == series_value(
            snap, "repro_pool_chunks_completed_total",
            pool=pool_instance, where="parent",
        )
        for counter, count in pool_stats["worker_counters"].items():
            assert count == series_value(
                snap, "repro_pool_worker_counters_total",
                pool=pool_instance, counter=counter,
            )
        assert pool_stats["tasks_dispatched"] > 0

        # -- worker-side activity came home over the chunk protocol -----
        # Workers answer from the shared store, so their shipped deltas
        # must include store/registry counter activity.
        assert sum(pool_stats["worker_counters"].values()) > 0

        # -- the serving latency histograms saw the batch ---------------
        assert sample(snap, "repro_plan_seconds")["count"] > 0
        assert sample(snap, "repro_execute_seconds")["count"] > 0
        assert snap["repro_enumerate_seconds"]["values"][0]["count"] > 0
        chunk_seconds = sample(
            snap, "repro_pool_chunk_seconds", pool=pool_instance
        )
        assert chunk_seconds is not None and chunk_seconds["count"] > 0

        # -- plan counters moved, including the dedup ------------------
        assert series_value(snap, "repro_plan_requests_total") > 0
        assert series_value(snap, "repro_plan_deduped_total") > 0

    def test_index_build_histogram_observes_builds(self, triangle_graph):
        before = get_registry().snapshot()
        count_before = (
            sample(before, "repro_index_build_seconds", k="2") or {"count": 0}
        )["count"]
        CoreIndex(triangle_graph, 2)
        after = get_registry().snapshot()
        assert (
            sample(after, "repro_index_build_seconds", k="2")["count"]
            == count_before + 1
        )


class TestTraceIntegration:
    def test_query_batch_produces_nested_plan_execute_spans(self, paper_graph):
        index = CoreIndex(paper_graph, 2)
        trace = Trace("batch")
        results = index.query_batch(
            [(1, 4), (2, 6), (1, 4)], trace=trace
        )
        assert len(results) == 3

        (root,) = trace.find("query_batch")
        (plan,) = trace.find("plan")
        (execute,) = trace.find("execute")
        assert root.parent is None
        assert plan.parent == root.span_id and plan.depth == 1
        assert execute.parent == root.span_id and execute.depth == 1
        assert plan.attrs["requests"] == 3
        assert plan.attrs["deduped"] == 1

        enumerates = trace.find("enumerate")
        flushes = trace.find("sink_flush")
        assert enumerates and len(enumerates) == len(flushes)
        assert all(span.parent == execute.span_id for span in enumerates)
        assert all(span.parent == execute.span_id for span in flushes)
        # Window spans carry their range and fan-out width.
        assert all(
            {"ts", "te", "requests"} <= set(span.attrs) for span in enumerates
        )

    def test_untraced_query_batch_stays_silent(self, paper_graph):
        from repro.obs.trace import NULL_TRACE

        index = CoreIndex(paper_graph, 2)
        index.query_batch([(1, 4)])
        assert NULL_TRACE.spans() == []


class TestPoolCrashAccounting:
    def test_lost_chunks_keep_the_dispatch_invariant(
        self, tmp_path, paper_graph
    ):
        fault = tmp_path / "kill-exactly-one-worker"
        fault.touch()
        ranges = [(1, 4), (2, 6), (1, 7), (3, 5), (5, 5), (2, 3)]
        with WorkerPool(
            tmp_path / "store",
            processes=2,
            min_parallel_windows=0,
            _fault_path=os.fspath(fault),
        ) as pool:
            answers = run_query_batch(paper_graph, 2, ranges, parallel=pool)
            stats = pool.stats()
        assert answers == run_query_batch(paper_graph, 2, ranges)
        # The SIGKILLed chunk was really lost and really re-dispatched:
        # every dispatch is accounted for as finished-by-a-worker or lost.
        assert stats["broken_restarts"] >= 1
        assert stats["chunks_lost"] >= 1
        assert stats["tasks_dispatched"] == (
            stats["chunks_completed"]["worker"] + stats["chunks_lost"]
        )

    def test_healthy_pool_loses_nothing(self, tmp_path, paper_graph):
        with WorkerPool(
            tmp_path / "store", processes=2, min_parallel_windows=0
        ) as pool:
            run_query_batch(paper_graph, 2, [(1, 2), (3, 4), (5, 7)], parallel=pool)
            stats = pool.stats()
        assert stats["chunks_lost"] == 0
        assert stats["tasks_dispatched"] == stats["chunks_completed"]["worker"]
