"""Span tracing tests: nesting, export, and the no-op default."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.trace import NULL_TRACE, Trace, _NULL_SPAN


class TestNesting:
    def test_parent_and_depth_follow_enter_order(self):
        trace = Trace("t")
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                pass
        assert outer.parent is None and outer.depth == 0
        assert inner.parent == outer.span_id and inner.depth == 1

    def test_siblings_share_a_parent(self):
        trace = Trace("t")
        with trace.span("root") as root:
            with trace.span("a") as a:
                pass
            with trace.span("b") as b:
                pass
        assert a.parent == b.parent == root.span_id

    def test_finished_spans_complete_children_first(self):
        trace = Trace("t")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        assert [span.name for span in trace.spans()] == ["inner", "outer"]

    def test_durations_are_monotonic_and_nested(self):
        trace = Trace("t")
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                pass
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration
        assert inner.start >= outer.start

    def test_find_by_name(self):
        trace = Trace("t")
        with trace.span("a"):
            pass
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        assert len(trace.find("a")) == 2
        assert trace.find("absent") == []


class TestAttributes:
    def test_constructor_and_set_attrs(self):
        trace = Trace("t")
        with trace.span("s", k=3) as span:
            span.set(windows=2)
        event = trace.to_events()[0]
        assert event["attrs"] == {"k": 3, "windows": 2}

    def test_exception_recorded_and_span_closed(self):
        trace = Trace("t")
        with pytest.raises(ValueError):
            with trace.span("s"):
                raise ValueError("boom")
        (span,) = trace.spans()
        assert span.attrs["error"] == "ValueError"
        assert span.duration is not None


class TestExport:
    def test_write_ndjson_one_parseable_object_per_span(self):
        trace = Trace("t")
        with trace.span("outer"):
            with trace.span("inner", k=2):
                pass
        buffer = io.StringIO()
        assert trace.write_ndjson(buffer) == 2
        lines = buffer.getvalue().splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["name"] for event in events] == ["inner", "outer"]
        assert events[0]["parent"] == events[1]["span"]
        assert events[0]["attrs"] == {"k": 2}

    def test_render_tree_indents_children(self):
        trace = Trace("demo")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        rendered = trace.render()
        assert rendered.startswith("trace demo")
        outer_line = next(l for l in rendered.splitlines() if "outer" in l)
        inner_line = next(l for l in rendered.splitlines() if "inner" in l)
        indent = lambda line: len(line) - len(line.lstrip())
        assert indent(inner_line) > indent(outer_line)


class TestNullTrace:
    def test_null_trace_is_inert(self):
        assert NULL_TRACE.enabled is False
        span = NULL_TRACE.span("anything", k=3)
        assert span is _NULL_SPAN
        with span as entered:
            assert entered.set(x=1) is span
        assert NULL_TRACE.spans() == []

    def test_real_trace_is_enabled(self):
        assert Trace("t").enabled is True
