"""Analysis package: summaries and community bursts."""

from __future__ import annotations

import pytest

from repro.analysis import (
    CommunityBurst,
    community_bursts,
    filter_bursts,
    match_planted_groups,
    summarize,
    vertex_participation,
    window_width_histogram,
)
from repro.core.enumerate import enumerate_temporal_kcores
from repro.errors import InvalidParameterError


@pytest.fixture()
def paper_result(paper_graph):
    return enumerate_temporal_kcores(paper_graph, 2)


class TestSummaries:
    def test_summary_totals(self, paper_graph, paper_result):
        summary = summarize(paper_result)
        assert summary.num_results == 13
        assert summary.total_edges == paper_result.total_edges
        assert summary.min_edges <= summary.mean_edges <= summary.max_edges
        assert summary.min_window >= 1

    def test_empty_summary(self, paper_graph):
        empty = enumerate_temporal_kcores(paper_graph, 9)
        summary = summarize(empty)
        assert summary.num_results == 0
        assert summary.total_edges == 0

    def test_requires_collect(self, paper_graph):
        streamed = enumerate_temporal_kcores(paper_graph, 2, collect=False)
        with pytest.raises(InvalidParameterError):
            summarize(streamed)

    def test_width_histogram(self, paper_result):
        histogram = window_width_histogram(paper_result)
        assert sum(histogram.values()) == 13
        assert list(histogram) == sorted(histogram)
        assert histogram.get(1) == 1  # the [5, 5] triangle core

    def test_vertex_participation(self, paper_graph, paper_result):
        ranked = vertex_participation(paper_graph, paper_result)
        labels = [label for label, _ in ranked]
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)
        assert labels[0] in ("v1", "v2")  # the busiest actors

    def test_vertex_participation_top(self, paper_graph, paper_result):
        assert len(vertex_participation(paper_graph, paper_result, top=3)) == 3


class TestCommunityBursts:
    def test_groups_cover_results(self, paper_graph, paper_result):
        bursts = community_bursts(paper_graph, paper_result)
        assert sum(b.num_occurrences for b in bursts) == 13

    def test_sorted_tightest_first(self, paper_graph, paper_result):
        bursts = community_bursts(paper_graph, paper_result)
        widths = [b.width for b in bursts]
        assert widths == sorted(widths)

    def test_range_1_4_bursts(self, paper_graph):
        result = enumerate_temporal_kcores(paper_graph, 2, 1, 4)
        bursts = community_bursts(paper_graph, result)
        assert len(bursts) == 2
        assert bursts[0].vertices == frozenset({"v1", "v2", "v4"})
        assert bursts[0].tightest_tti == (2, 3)

    def test_filter_by_size_and_width(self, paper_graph, paper_result):
        bursts = community_bursts(paper_graph, paper_result)
        big = filter_bursts(bursts, min_vertices=5)
        assert all(len(b.vertices) >= 5 for b in big)
        tight = filter_bursts(bursts, max_width=2)
        assert all(b.width <= 2 for b in tight)

    def test_match_planted_groups(self, paper_graph):
        result = enumerate_temporal_kcores(paper_graph, 2, 1, 4)
        bursts = community_bursts(paper_graph, result)
        matches = match_planted_groups(
            bursts,
            [{"v1", "v2", "v4"}, {"v6", "v7", "v8"}],
        )
        assert matches[0] is not None
        assert matches[0].vertices == frozenset({"v1", "v2", "v4"})
        assert matches[1] is None

    def test_match_allows_containment(self, paper_graph):
        result = enumerate_temporal_kcores(paper_graph, 2, 1, 4)
        bursts = community_bursts(paper_graph, result)
        # A planted group that is a superset of a detected burst matches.
        matches = match_planted_groups(
            bursts, [{"v1", "v2", "v4", "extra"}]
        )
        assert matches[0] is not None

    def test_requires_collect(self, paper_graph):
        streamed = enumerate_temporal_kcores(paper_graph, 2, collect=False)
        with pytest.raises(InvalidParameterError):
            community_bursts(paper_graph, streamed)

    def test_burst_dataclass(self):
        burst = CommunityBurst(frozenset({"a"}), (3, 7), 2, 9)
        assert burst.width == 5
