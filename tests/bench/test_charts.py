"""ASCII chart rendering."""

from __future__ import annotations

from repro.bench.charts import log_bar_chart, log_series_chart


class TestBarChart:
    def test_longer_bar_for_larger_value(self):
        chart = log_bar_chart({"slow": 100.0, "fast": 0.1}, unit="s")
        slow_line, fast_line = chart.splitlines()
        assert slow_line.count("#") > fast_line.count("#")

    def test_dnf_rendering(self):
        chart = log_bar_chart({"otcd": None, "enum": 1.0})
        assert "DNF" in chart

    def test_all_none(self):
        chart = log_bar_chart({"a": None})
        assert "no data" in chart

    def test_units_printed(self):
        assert "MiB" in log_bar_chart({"x": 3.0}, unit="MiB")

    def test_labels_aligned(self):
        chart = log_bar_chart({"a": 1.0, "longer-name": 2.0})
        starts = {line.index("|") for line in chart.splitlines()}
        assert len(starts) == 1


class TestSeriesChart:
    def test_markers_present(self):
        chart = log_series_chart(
            ["5%", "10%", "20%", "40%"],
            {"enum": [0.01, 0.02, 0.09, 0.4], "otcd": [0.1, 0.5, 3.4, 24.0]},
            unit="s",
        )
        assert "o = enum" in chart
        assert "x = otcd" in chart
        assert chart.count("o") >= 4  # marker occurrences + legend

    def test_dnf_noted_in_legend(self):
        chart = log_series_chart(
            ["5%", "40%"], {"otcd": [0.1, None]}, unit="s"
        )
        assert "DNF at 40%" in chart

    def test_empty(self):
        assert log_series_chart(["a"], {"x": [None]}) == "(no data)"

    def test_x_labels_on_axis(self):
        chart = log_series_chart(["5%", "40%"], {"e": [1.0, 2.0]})
        assert "5%" in chart and "40%" in chart
