"""tracemalloc wrapper and byte formatting."""

from __future__ import annotations

from repro.bench.memory import format_bytes, measure_peak_memory


class TestMeasure:
    def test_returns_result_and_positive_peak(self):
        result, peak = measure_peak_memory(lambda: [0] * 100_000)
        assert len(result) == 100_000
        assert peak > 100_000 * 4  # a list of ints is at least this big

    def test_relative_to_baseline(self):
        # The retained list from the previous call must not count here.
        keep = [0] * 100_000

        def tiny():
            return sum(range(10))

        _, peak = measure_peak_memory(tiny)
        assert peak < 50_000
        del keep

    def test_exceptions_propagate(self):
        import pytest

        with pytest.raises(RuntimeError):
            measure_peak_memory(lambda: (_ for _ in ()).throw(RuntimeError("x")))


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(10) == "10.00 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 1024**2) == "3.00 MiB"
        assert format_bytes(5 * 1024**3) == "5.00 GiB"
        assert format_bytes(5000 * 1024**3).endswith("GiB")
