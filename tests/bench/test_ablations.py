"""Ablation variants must be output-equivalent to the real algorithms."""

from __future__ import annotations

from repro.bench.ablations import enumerate_resort_per_start, vct_by_recompute
from repro.core.coretime import compute_core_times
from repro.core.enumerate import enumerate_temporal_kcores


class TestResortAblation:
    def test_equivalent_on_random_graphs(self, random_graph):
        fast = enumerate_temporal_kcores(random_graph, 2)
        slow = enumerate_resort_per_start(random_graph, 2)
        assert fast.edge_sets() == slow.edge_sets()
        assert set(fast.by_tti()) == set(slow.by_tti())

    def test_equivalent_on_subrange(self, paper_graph):
        fast = enumerate_temporal_kcores(paper_graph, 2, 1, 4)
        slow = enumerate_resort_per_start(paper_graph, 2, 1, 4)
        assert fast.edge_sets() == slow.edge_sets()

    def test_streaming_counts(self, paper_graph):
        slow = enumerate_resort_per_start(paper_graph, 2, collect=False)
        assert slow.cores is None
        assert slow.num_results == 13


class TestRecomputeAblation:
    def test_vct_identical(self, random_graph):
        fast = compute_core_times(random_graph, 2, with_skyline=False).vct
        slow = vct_by_recompute(random_graph, 2, 1, random_graph.tmax)
        for u in range(random_graph.num_vertices):
            assert fast.entries_of(u) == slow.entries_of(u)

    def test_vct_identical_on_subrange(self, paper_graph):
        fast = compute_core_times(paper_graph, 2, 2, 6, with_skyline=False).vct
        slow = vct_by_recompute(paper_graph, 2, 2, 6)
        for u in range(paper_graph.num_vertices):
            assert fast.entries_of(u) == slow.entries_of(u)
