"""Parallel batch query runner."""

from __future__ import annotations

import pytest

from repro.bench.batch import BatchAnswer, run_query_batch
from repro.core.enumerate import enumerate_temporal_kcores
from repro.errors import InvalidParameterError


class TestSequentialBatch:
    def test_answers_in_order(self, paper_graph):
        ranges = [(1, 4), (2, 3), (1, 7), (5, 5)]
        answers = run_query_batch(paper_graph, 2, ranges)
        assert [a.time_range for a in answers] == ranges
        assert [a.num_results for a in answers] == [2, 1, 13, 1]

    def test_counters_match_direct_runs(self, random_graph):
        ranges = [(1, random_graph.tmax), (2, random_graph.tmax - 1)]
        answers = run_query_batch(random_graph, 2, ranges)
        for answer in answers:
            direct = enumerate_temporal_kcores(
                random_graph, 2, *answer.time_range, collect=False
            )
            assert answer.num_results == direct.num_results
            assert answer.total_edges == direct.total_edges

    def test_empty_batch(self, paper_graph):
        assert run_query_batch(paper_graph, 2, []) == []

    def test_validation(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            run_query_batch(paper_graph, 0, [(1, 2)])
        with pytest.raises(InvalidParameterError):
            run_query_batch(paper_graph, 2, [(0, 3)])
        with pytest.raises(InvalidParameterError):
            run_query_batch(paper_graph, 2, [(1, 3)], processes=0)


class TestParallelBatch:
    def test_parallel_equals_sequential(self, paper_graph):
        ranges = [(1, 4), (2, 6), (1, 7), (3, 5), (5, 5), (2, 3)]
        sequential = run_query_batch(paper_graph, 2, ranges)
        parallel = run_query_batch(paper_graph, 2, ranges, processes=2)
        assert parallel == sequential

    def test_answer_is_comparable_dataclass(self):
        a = BatchAnswer((1, 2), 3, 9)
        b = BatchAnswer((1, 2), 3, 9)
        assert a == b


class TestEngineBatch:
    def test_index_engine_matches_default_runner(self, paper_graph):
        from repro.bench.batch import run_engine_batch

        ranges = [(1, 4), (2, 3), (1, 7), (5, 5)]
        assert run_engine_batch(paper_graph, 2, ranges) == run_query_batch(
            paper_graph, 2, ranges
        )

    def test_enum_engine_agrees(self, paper_graph):
        from repro.bench.batch import run_engine_batch

        ranges = [(1, 7), (2, 6)]
        assert run_engine_batch(paper_graph, 2, ranges, engine="enum") == (
            run_engine_batch(paper_graph, 2, ranges)
        )

    def test_empty(self, paper_graph):
        from repro.bench.batch import run_engine_batch

        assert run_engine_batch(paper_graph, 2, []) == []

    def test_batch_reuses_registry_index(self, paper_graph):
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=2)
        run_query_batch(paper_graph, 2, [(1, 4), (2, 6)], registry=registry)
        run_query_batch(paper_graph, 2, [(1, 7)], registry=registry)
        assert registry.misses == 1
        assert registry.hits == 1
