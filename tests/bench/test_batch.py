"""Parallel batch query runner."""

from __future__ import annotations

import pytest

from repro.bench.batch import BatchAnswer, run_query_batch
from repro.core.enumerate import enumerate_temporal_kcores
from repro.errors import InvalidParameterError


class TestSequentialBatch:
    def test_answers_in_order(self, paper_graph):
        ranges = [(1, 4), (2, 3), (1, 7), (5, 5)]
        answers = run_query_batch(paper_graph, 2, ranges)
        assert [a.time_range for a in answers] == ranges
        assert [a.num_results for a in answers] == [2, 1, 13, 1]

    def test_counters_match_direct_runs(self, random_graph):
        ranges = [(1, random_graph.tmax), (2, random_graph.tmax - 1)]
        answers = run_query_batch(random_graph, 2, ranges)
        for answer in answers:
            direct = enumerate_temporal_kcores(
                random_graph, 2, *answer.time_range, collect=False
            )
            assert answer.num_results == direct.num_results
            assert answer.total_edges == direct.total_edges

    def test_empty_batch(self, paper_graph):
        assert run_query_batch(paper_graph, 2, []) == []

    def test_validation(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            run_query_batch(paper_graph, 0, [(1, 2)])
        with pytest.raises(InvalidParameterError):
            run_query_batch(paper_graph, 2, [(0, 3)])
        with pytest.raises(InvalidParameterError):
            run_query_batch(paper_graph, 2, [(1, 3)], processes=0)


class TestParallelBatch:
    def test_parallel_equals_sequential(self, paper_graph):
        ranges = [(1, 4), (2, 6), (1, 7), (3, 5), (5, 5), (2, 3)]
        sequential = run_query_batch(paper_graph, 2, ranges)
        parallel = run_query_batch(paper_graph, 2, ranges, processes=2)
        assert parallel == sequential

    def test_answer_is_comparable_dataclass(self):
        a = BatchAnswer((1, 2), 3, 9)
        b = BatchAnswer((1, 2), 3, 9)
        assert a == b


class TestEngineBatch:
    def test_index_engine_matches_default_runner(self, paper_graph):
        from repro.bench.batch import run_engine_batch

        ranges = [(1, 4), (2, 3), (1, 7), (5, 5)]
        assert run_engine_batch(paper_graph, 2, ranges) == run_query_batch(
            paper_graph, 2, ranges
        )

    def test_enum_engine_agrees(self, paper_graph):
        from repro.bench.batch import run_engine_batch

        ranges = [(1, 7), (2, 6)]
        assert run_engine_batch(paper_graph, 2, ranges, engine="enum") == (
            run_engine_batch(paper_graph, 2, ranges)
        )

    def test_empty(self, paper_graph):
        from repro.bench.batch import run_engine_batch

        assert run_engine_batch(paper_graph, 2, []) == []

    def test_batch_reuses_registry_index(self, paper_graph):
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=2)
        run_query_batch(paper_graph, 2, [(1, 4), (2, 6)], registry=registry)
        run_query_batch(paper_graph, 2, [(1, 7)], registry=registry)
        assert registry.misses == 1
        assert registry.hits == 1

    def test_batch_store_fallthrough_computes_nothing(
        self, paper_graph, tmp_path, monkeypatch
    ):
        """Satellite: store-backed run_query_batch warm-starts from disk."""
        import repro.core.index as index_module
        from repro.core.index import CoreIndex, CoreIndexRegistry
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        store.save_index(CoreIndex(paper_graph, 2), name="paper")

        def explode(*args, **kwargs):
            raise AssertionError("store-backed batch recomputed the index")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        registry = CoreIndexRegistry(capacity=2)
        answers = run_query_batch(
            paper_graph, 2, [(1, 4), (2, 3)], registry=registry, store=store
        )
        assert [a.num_results for a in answers] == [2, 1]
        assert registry.stats()["store_hits"] == 1


class TestMixedBatch:
    def test_matches_fixed_k_batches(self, paper_graph):
        from repro.bench.batch import run_mixed_batch
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=8)
        queries = [
            (paper_graph, 2, (1, 4)),
            (paper_graph, 3, (1, 7)),
            (paper_graph, 2, (2, 3)),
            (paper_graph, 3, (2, 6)),
        ]
        answers = run_mixed_batch(queries, registry=registry)
        assert [a.k for a in answers] == [2, 3, 2, 3]
        for answer, (graph, k, time_range) in zip(answers, queries):
            expected = run_query_batch(graph, k, [time_range])[0]
            assert answer.time_range == expected.time_range
            assert answer.num_results == expected.num_results
            assert answer.total_edges == expected.total_edges

    def test_one_shared_build_per_graph(self, paper_graph):
        from repro.bench.batch import run_mixed_batch
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=8)
        run_mixed_batch(
            [
                (paper_graph, 2, (1, 4)),
                (paper_graph, 3, (1, 4)),
                (paper_graph, 4, (1, 4)),
                (paper_graph, 2, (2, 6)),
            ],
            registry=registry,
        )
        stats = registry.stats()
        assert stats["multik_builds"] == 1
        assert stats["multik_builds_by_k"] == {2: 1, 3: 1, 4: 1}

    def test_groups_by_graph_identity(self, paper_graph, triangle_graph):
        from repro.bench.batch import run_mixed_batch
        from repro.core.index import CoreIndexRegistry

        registry = CoreIndexRegistry(capacity=8)
        answers = run_mixed_batch(
            [
                (paper_graph, 2, (1, 7)),
                (triangle_graph, 2, (1, 3)),
                (paper_graph, 3, (1, 7)),
            ],
            registry=registry,
        )
        assert len(answers) == 3
        assert answers[1].num_results == 1  # the triangle
        assert registry.stats()["size"] == 3

    def test_store_fallthrough_warm_starts(self, paper_graph, tmp_path, monkeypatch):
        """Acceptance: a prebuilt store serves a mixed batch, zero compute."""
        import repro.core.index as index_module
        import repro.core.multik as multik_module
        from repro.bench.batch import run_mixed_batch
        from repro.core.index import CoreIndex, CoreIndexRegistry
        from repro.store import IndexStore

        store = IndexStore(tmp_path / "store")
        store.build_all(paper_graph, [2, 3], name="paper")

        def explode(*args, **kwargs):
            raise AssertionError("mixed batch recomputed despite a warm store")

        monkeypatch.setattr(index_module, "compute_core_times", explode)
        monkeypatch.setattr(multik_module, "compute_core_times_multi", explode)
        registry = CoreIndexRegistry(capacity=8)
        answers = run_mixed_batch(
            [(paper_graph, 2, (1, 4)), (paper_graph, 3, (1, 7))],
            registry=registry,
            store=store,
        )
        assert [a.k for a in answers] == [2, 3]
        stats = registry.stats()
        assert stats["store_hits_by_k"] == {2: 1, 3: 1}
        assert stats["multik_builds"] == 0

    def test_empty_and_validation(self, paper_graph):
        import pytest as _pytest

        from repro.bench.batch import run_mixed_batch

        assert run_mixed_batch([]) == []
        with _pytest.raises(InvalidParameterError):
            run_mixed_batch([(paper_graph, 0, (1, 2))])
        with _pytest.raises(InvalidParameterError):
            run_mixed_batch([(paper_graph, 2, (0, 3))])
