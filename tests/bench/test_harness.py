"""Harness behaviour: engine routing, DNFs, summary arithmetic."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    EngineSummary,
    QueryRecord,
    _run_engine_once,
    run_dataset_point,
    run_workload,
)
from repro.bench.workloads import build_workload
from repro.errors import BenchmarkError


class TestRunEngineOnce:
    @pytest.mark.parametrize(
        "engine", ["enum", "enumbase", "otcd", "otcd-nopruning"]
    )
    def test_engines_complete(self, paper_graph, engine):
        record = _run_engine_once(paper_graph, engine, 2, 1, 4, None, False)
        assert record.completed
        assert record.num_results == 2

    def test_coretime_engine_reports_sizes(self, paper_graph):
        record = _run_engine_once(paper_graph, "coretime", 2, 1, 7, None, False)
        assert record.vct_size > 0
        assert record.ecs_size > 0

    def test_unknown_engine(self, paper_graph):
        with pytest.raises(BenchmarkError):
            _run_engine_once(paper_graph, "nope", 2, 1, 4, None, False)

    def test_timeout_records_dnf(self, paper_graph):
        record = _run_engine_once(paper_graph, "otcd", 2, 1, 7, 0.0, False)
        assert not record.completed


class TestSummaries:
    def _summary(self, *records):
        summary = EngineSummary("x")
        summary.records.extend(records)
        return summary

    def test_mean_excludes_dnf(self):
        summary = self._summary(
            QueryRecord("x", (1, 2), 1.0, True, num_results=4),
            QueryRecord("x", (1, 2), 99.0, False),
        )
        assert summary.mean_seconds == 1.0
        assert summary.num_dnf == 1
        assert summary.mean_results == 4

    def test_all_dnf_mean_is_none(self):
        summary = self._summary(QueryRecord("x", (1, 2), 9.0, False))
        assert summary.mean_seconds is None

    def test_memory_mean(self):
        summary = self._summary(
            QueryRecord("x", (1, 2), 1.0, True, peak_bytes=100),
            QueryRecord("x", (1, 2), 1.0, True, peak_bytes=300),
        )
        assert summary.mean_peak_bytes == 200


class TestRunWorkload:
    def test_full_point(self, paper_graph):
        workload = build_workload(
            paper_graph, "example", k_fraction=1.0, range_fraction=0.6,
            num_queries=2, seed=0,
        )
        summaries = run_workload(
            paper_graph, workload, ("enum", "otcd"), timeout=5.0
        )
        assert set(summaries) == {"enum", "otcd"}
        for summary in summaries.values():
            assert summary.num_queries == 2
            assert summary.num_dnf == 0
        # Both engines count the same results on every range.
        for r_enum, r_otcd in zip(
            summaries["enum"].records, summaries["otcd"].records
        ):
            assert r_enum.num_results == r_otcd.num_results

    def test_memory_measurement(self, paper_graph):
        workload = build_workload(
            paper_graph, "example", k_fraction=1.0, range_fraction=0.6,
            num_queries=1, seed=0,
        )
        summaries = run_workload(
            paper_graph, workload, ("enum",), timeout=5.0, measure_memory=True
        )
        assert summaries["enum"].records[0].peak_bytes > 0


class TestRunDatasetPoint:
    def test_smallest_dataset_end_to_end(self):
        workload, summaries = run_dataset_point(
            "FB", num_queries=1, engines=("coretime", "enum"), timeout=10.0
        )
        assert workload.dataset == "FB"
        assert summaries["enum"].records[0].completed
