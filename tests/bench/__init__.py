"""Test package."""
