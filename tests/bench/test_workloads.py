"""Workload generation: admissibility, determinism, fallbacks."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    build_workload,
    range_has_core,
    sample_query_ranges,
)
from repro.errors import BenchmarkError
from repro.graph.temporal_graph import TemporalGraph


class TestRangeHasCore:
    def test_positive(self, paper_graph):
        assert range_has_core(paper_graph, 2, 1, 4)

    def test_negative(self, paper_graph):
        assert not range_has_core(paper_graph, 2, 1, 2)
        assert not range_has_core(paper_graph, 3, 1, 7)


class TestSampling:
    def test_all_ranges_contain_cores(self, paper_graph):
        ranges = sample_query_ranges(paper_graph, 2, 4, 5, seed=3)
        assert len(ranges) == 5
        for ts, te in ranges:
            assert te - ts + 1 == 4
            assert range_has_core(paper_graph, 2, ts, te)

    def test_deterministic(self, paper_graph):
        a = sample_query_ranges(paper_graph, 2, 4, 5, seed=3)
        b = sample_query_ranges(paper_graph, 2, 4, 5, seed=3)
        assert a == b

    def test_width_clamped_to_tmax(self, paper_graph):
        ranges = sample_query_ranges(paper_graph, 2, 99, 2, seed=0)
        assert all((ts, te) == (1, 7) for ts, te in ranges)

    def test_fallback_sweep_finds_rare_core(self):
        # A graph whose only core sits at the very end of the span:
        # random sampling at width 2 rarely hits it, the sweep must.
        edges = [("x", f"y{i}", i) for i in range(1, 30)]
        edges += [("a", "b", 30), ("b", "c", 30), ("a", "c", 30)]
        graph = TemporalGraph(edges)
        ranges = sample_query_ranges(graph, 2, 1, 3, seed=0)
        assert ranges
        for ts, te in ranges:
            assert range_has_core(graph, 2, ts, te)

    def test_impossible_raises(self, paper_graph):
        with pytest.raises(BenchmarkError):
            sample_query_ranges(paper_graph, 5, 7, 1, seed=0)


class TestBuildWorkload:
    def test_fractions_resolved(self, paper_graph):
        workload = build_workload(
            paper_graph, "example", k_fraction=1.0, range_fraction=0.6,
            num_queries=2, seed=1,
        )
        assert workload.k == 2
        assert workload.width == 4
        assert workload.num_queries == 2
        assert workload.dataset == "example"

    def test_k_clamped_to_two(self, paper_graph):
        workload = build_workload(
            paper_graph, "example", k_fraction=0.1, num_queries=1,
            range_fraction=0.6,
        )
        assert workload.k == 2
