"""Scalability sweep module unit tests."""

from __future__ import annotations

import pytest

from repro.bench.scalability import (
    SCALE_HEADERS,
    ScalePoint,
    run_scalability_sweep,
    scaled_config,
)
from repro.errors import BenchmarkError


class TestScaledConfig:
    def test_linear_scaling(self):
        config = scaled_config(3)
        base = scaled_config(1)
        assert config.num_vertices == 3 * base.num_vertices
        assert config.total_edges() == 3 * base.total_edges()
        assert config.tmax == 3 * base.tmax

    def test_burst_density_unchanged(self):
        assert scaled_config(5).burst_size == scaled_config(1).burst_size
        assert scaled_config(5).edges_per_burst == scaled_config(1).edges_per_burst

    def test_invalid_factor(self):
        with pytest.raises(BenchmarkError):
            scaled_config(0)


class TestSweep:
    def test_single_point(self):
        points = run_scalability_sweep(factors=(1,), num_queries=1, timeout=20.0)
        assert len(points) == 1
        point = points[0]
        assert point.enum_seconds is not None
        assert point.num_results >= 1
        assert len(point.as_row()) == len(SCALE_HEADERS)

    def test_row_ratio_rendering(self):
        point = ScalePoint(1, 100, 50, 3, 0.5, 5.0, 7.0)
        assert point.as_row()[-1] == "10.0x"
        dnf = ScalePoint(1, 100, 50, 3, 0.5, None, 7.0)
        assert dnf.as_row()[-1] == "n/a"
