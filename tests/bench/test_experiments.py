"""Experiment drivers: the cheap ones run end-to-end in the test suite.

The expensive figure sweeps are exercised by ``pytest benchmarks/``; here
we validate the drivers' output contracts on the paper example and the
smallest dataset.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    BenchProfile,
    experiment_table1,
    experiment_table2,
    main,
)


class TestProfiles:
    def test_named_profiles(self):
        assert BenchProfile.quick().num_queries < BenchProfile.full().num_queries

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "full")
        assert BenchProfile.from_env().name == "full"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "quick")
        assert BenchProfile.from_env().name == "quick"
        monkeypatch.delenv("REPRO_BENCH_PROFILE")
        assert BenchProfile.from_env().name == "quick"


class TestWorkedExampleDrivers:
    def test_table1_all_match(self):
        report = experiment_table1()
        assert "Table I" in report
        rows = [
            line
            for line in report.splitlines()
            if line.strip().startswith("v") and line.strip()[1].isdigit()
        ]
        assert len(rows) == 9
        assert all(row.rstrip().endswith("yes") for row in rows)

    def test_table2_all_match(self):
        report = experiment_table2()
        assert "Table II" in report
        rows = [line for line in report.splitlines() if line.strip().startswith("(")]
        assert len(rows) == 14
        assert all(row.rstrip().endswith("yes") for row in rows)


class TestCli:
    def test_registry_complete(self):
        expected = {
            "table1", "table2", "table3",
            "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        }
        assert set(EXPERIMENTS) == expected

    def test_main_runs_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestFigureDriversSmoke:
    """Drivers run end-to-end on a reduced dataset list (monkeypatched)."""

    @pytest.fixture()
    def tiny(self, monkeypatch):
        import repro.bench.experiments as exp

        profile = BenchProfile("tiny", num_queries=1, timeout=10.0)
        monkeypatch.setattr(exp, "ALL_DATASETS", ("FB",))
        monkeypatch.setattr(exp, "FIG4_DATASETS", ("FB",))
        monkeypatch.setattr(exp, "VARIED_DATASETS", ("FB",))
        monkeypatch.setattr(exp, "K_FRACTIONS", (0.3,))
        monkeypatch.setattr(exp, "RANGE_FRACTIONS", (0.1,))
        return profile

    def test_fig4_driver(self, tiny):
        from repro.bench.experiments import experiment_fig4

        report = experiment_fig4(tiny)
        assert "FB" in report and "|VCT|" in report

    def test_fig6_driver(self, tiny):
        from repro.bench.experiments import experiment_fig6

        report = experiment_fig6(tiny)
        assert "FB" in report and "OTCD(s)" in report

    def test_fig7_driver(self, tiny):
        from repro.bench.experiments import experiment_fig7

        report = experiment_fig7(tiny)
        assert "FB" in report and "Enum+CT(s)" in report

    def test_fig9_driver(self, tiny):
        from repro.bench.experiments import experiment_fig9

        report = experiment_fig9(tiny)
        assert "avg #results" in report

    def test_fig11_driver(self, tiny):
        from repro.bench.experiments import experiment_fig11

        report = experiment_fig11(tiny)
        assert "#results" in report

    def test_fig12_driver(self, tiny):
        from repro.bench.experiments import experiment_fig12

        report = experiment_fig12(tiny)
        assert "peak" in report
