"""Report formatting."""

from __future__ import annotations

import math

from repro.bench.reporting import (
    format_cell,
    format_table,
    orders_of_magnitude,
    speedup,
)


class TestFormatCell:
    def test_none_is_dnf(self):
        assert format_cell(None) == "DNF"

    def test_nan_is_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_scientific_for_extremes(self):
        assert "e" in format_cell(1234567.0)
        assert "e" in format_cell(0.0000123)

    def test_plain_for_moderate(self):
        assert format_cell(12.5) == "12.5"
        assert format_cell(7) == "7"
        assert format_cell("CM") == "CM"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ("ds", "time"), [("CM", 1.5), ("WT", None)], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "ds" in lines[2]
        assert "DNF" in lines[-1]
        # All rows align to the same width.
        assert len({len(line) for line in lines[2:]}) == 1


class TestRatios:
    def test_speedup(self):
        assert speedup(10.0, 1.0) == "10.0x"
        assert speedup(None, 1.0) == "baseline DNF"
        assert speedup(1.0, None) == "candidate DNF"

    def test_orders_of_magnitude(self):
        assert orders_of_magnitude(1.0, 1000.0) == 3.0
        assert math.isnan(orders_of_magnitude(0.0, 10.0))
