"""The crash/fault point registry: parsing, arming, hit counting."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.testing import crashpoints as cp


@pytest.fixture(autouse=True)
def disarm(monkeypatch):
    """Every test starts (and the suite ends) with nothing armed."""
    monkeypatch.delenv(cp.CRASHPOINT_ENV, raising=False)
    monkeypatch.delenv(cp.FAULTPOINT_ENV, raising=False)
    cp.reload()
    yield
    # monkeypatch only restores the environment *after* this teardown
    # runs, so disarm explicitly before re-reading it.
    import os

    os.environ.pop(cp.CRASHPOINT_ENV, None)
    os.environ.pop(cp.FAULTPOINT_ENV, None)
    cp.reload()


class TestRegistry:
    def test_catalogues_are_disjoint_and_nonempty(self):
        assert cp.registered_crashpoints()
        assert cp.registered_faultpoints()
        assert not set(cp.CRASHPOINTS) & set(cp.FAULTPOINTS)

    def test_unregistered_name_rejected_even_when_disarmed(self):
        with pytest.raises(ValueError):
            cp.crashpoint("not.a.point")
        with pytest.raises(ValueError):
            cp.faultpoint("not.a.point")

    def test_unknown_armed_name_rejected_eagerly(self, monkeypatch):
        monkeypatch.setenv(cp.CRASHPOINT_ENV, "no.such.point")
        with pytest.raises(ValueError):
            cp.reload()

    def test_bad_hit_count_rejected(self, monkeypatch):
        monkeypatch.setenv(cp.CRASHPOINT_ENV, "wal.append.post-fsync:soon")
        with pytest.raises(ValueError):
            cp.reload()

    def test_disarmed_points_are_noops(self):
        for name in cp.registered_crashpoints():
            cp.crashpoint(name)
        for name in cp.registered_faultpoints():
            cp.faultpoint(name)

    def test_every_crashpoint_is_threaded_through_the_code(self):
        """The catalogue and the code may not drift: every registered
        name appears in a ``crashpoint("...")`` call somewhere."""
        import pathlib

        import repro

        src = pathlib.Path(repro.__file__).parent
        body = "\n".join(
            p.read_text(encoding="utf-8")
            for p in src.rglob("*.py")
            if p.name != "crashpoints.py"
        )
        for name in cp.registered_crashpoints():
            assert f'crashpoint("{name}")' in body, name
        for name in cp.registered_faultpoints():
            assert f'faultpoint("{name}")' in body, name


class TestFaultInjection:
    def test_fault_fires_from_nth_hit_onward(self, monkeypatch):
        monkeypatch.setenv(cp.FAULTPOINT_ENV, "wal.append.fsync:3")
        cp.reload()
        cp.faultpoint("wal.append.fsync")
        cp.faultpoint("wal.append.fsync")
        with pytest.raises(OSError):
            cp.faultpoint("wal.append.fsync")
        # ... and keeps failing: a full disk does not heal.
        with pytest.raises(OSError):
            cp.faultpoint("wal.append.fsync")

    def test_other_points_unaffected(self, monkeypatch):
        monkeypatch.setenv(cp.FAULTPOINT_ENV, "wal.append.fsync")
        cp.reload()
        cp.faultpoint("wal.append.write")


class TestCrashInjection:
    def test_armed_crashpoint_sigkills_subprocess(self):
        code = (
            "import os\n"
            f"os.environ['{cp.CRASHPOINT_ENV}'] = 'wal.append.post-fsync:2'\n"
            "from repro.testing.crashpoints import crashpoint, reload\n"
            "reload()\n"
            "crashpoint('wal.append.post-fsync')\n"
            "print('survived first hit', flush=True)\n"
            "crashpoint('wal.append.post-fsync')\n"
            "print('UNREACHABLE', flush=True)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == -9
        assert "survived first hit" in proc.stdout
        assert "UNREACHABLE" not in proc.stdout
