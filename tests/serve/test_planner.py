"""Planner unit tests: grouping, dedup, merge policy, engine choice."""

from __future__ import annotations

import pytest

from repro.core.index import CoreIndexRegistry
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.serve.planner import (
    DEFAULT_MIN_OVERLAP,
    QueryRequest,
    plan_for_index,
    plan_queries,
)


@pytest.fixture()
def graph() -> TemporalGraph:
    edges = [(f"u{i}", f"u{i + 1}", t) for t in range(1, 101) for i in range(3)]
    return TemporalGraph(edges)


def ranges_of(plan):
    return {
        (group.graph, group.k): [(w.ts, w.te, sorted(w.requests)) for w in group.windows]
        for group in plan.groups
    }


class TestGrouping:
    def test_groups_by_graph_and_k(self, graph, paper_graph):
        plan = plan_queries([
            QueryRequest(graph, 2, 1, 10),
            QueryRequest(paper_graph, 2, 1, 4),
            QueryRequest(graph, 3, 1, 10),
            QueryRequest(graph, 2, 50, 60),
        ])
        keys = [(group.graph, group.k) for group in plan.groups]
        assert keys == [(graph, 2), (paper_graph, 2), (graph, 3)]
        assert plan.stats["groups"] == 3
        assert plan.stats["requests"] == 4

    def test_identical_ranges_dedupe_into_one_window(self, graph):
        plan = plan_queries([QueryRequest(graph, 2, 5, 20)] * 4)
        assert plan.num_windows == 1
        (window,) = plan.groups[0].windows
        assert (window.ts, window.te) == (5, 20)
        assert window.requests == [0, 1, 2, 3]
        assert plan.stats["deduped"] == 3
        assert window.is_shared

    def test_contained_range_rides_along(self, graph):
        plan = plan_queries([
            QueryRequest(graph, 2, 1, 50),
            QueryRequest(graph, 2, 10, 20),
        ])
        assert plan.num_windows == 1
        (window,) = plan.groups[0].windows
        assert (window.ts, window.te) == (1, 50)
        assert sorted(window.requests) == [0, 1]
        assert plan.stats["merged"] == 1

    def test_heavy_overlap_merges(self, graph):
        plan = plan_queries([
            QueryRequest(graph, 2, 1, 40),
            QueryRequest(graph, 2, 10, 50),
        ])
        assert plan.num_windows == 1
        (window,) = plan.groups[0].windows
        assert (window.ts, window.te) == (1, 50)

    def test_thin_overlap_stays_separate(self, graph):
        plan = plan_queries([
            QueryRequest(graph, 2, 1, 40),
            QueryRequest(graph, 2, 40, 80),
        ])
        assert plan.num_windows == 2

    def test_disjoint_never_merge(self, graph):
        plan = plan_queries([
            QueryRequest(graph, 2, 1, 10),
            QueryRequest(graph, 2, 11, 20),
        ])
        assert plan.num_windows == 2
        assert plan.stats["merged"] == 0

    def test_min_overlap_zero_merges_any_overlap(self, graph):
        plan = plan_queries(
            [
                QueryRequest(graph, 2, 1, 40),
                QueryRequest(graph, 2, 40, 80),
            ],
            min_overlap=0.0,
        )
        assert plan.num_windows == 1

    def test_merge_overlaps_false_keeps_distinct_ranges(self, graph):
        plan = plan_queries(
            [
                QueryRequest(graph, 2, 1, 50),
                QueryRequest(graph, 2, 10, 20),
                QueryRequest(graph, 2, 10, 20),
            ],
            merge_overlaps=False,
        )
        assert plan.num_windows == 2  # identical ranges still dedupe
        assert plan.stats["deduped"] == 1
        assert plan.stats["merged"] == 0

    def test_chained_merge_extends_the_window(self, graph):
        plan = plan_queries([
            QueryRequest(graph, 2, 1, 30),
            QueryRequest(graph, 2, 15, 45),
            QueryRequest(graph, 2, 28, 60),
        ])
        assert plan.num_windows == 1
        (window,) = plan.groups[0].windows
        assert (window.ts, window.te) == (1, 60)


class TestEngineChoice:
    def test_single_cold_request_goes_direct(self, graph):
        plan = plan_queries([QueryRequest(graph, 2, 1, 10)])
        assert plan.groups[0].engine == "direct"

    def test_cached_index_flips_to_index(self, graph):
        registry = CoreIndexRegistry(capacity=2)
        registry.get(graph, 2)
        plan = plan_queries(
            [QueryRequest(graph, 2, 1, 10)], registry=registry
        )
        assert plan.groups[0].engine == "index"

    def test_peek_does_not_touch_counters(self, graph):
        registry = CoreIndexRegistry(capacity=2)
        registry.get(graph, 2)
        before = registry.stats()
        plan_queries([QueryRequest(graph, 2, 1, 10)], registry=registry)
        after = registry.stats()
        assert (before["hits"], before["misses"]) == (
            after["hits"], after["misses"]
        )

    def test_multiple_requests_warrant_an_index(self, graph):
        plan = plan_queries([
            QueryRequest(graph, 2, 1, 10),
            QueryRequest(graph, 2, 30, 40),
        ])
        assert plan.groups[0].engine == "index"

    def test_forced_engines(self, graph):
        for engine in ("index", "direct"):
            plan = plan_queries(
                [QueryRequest(graph, 2, 1, 10)] * 2, engine=engine
            )
            assert all(group.engine == engine for group in plan.groups)


class TestValidation:
    def test_bad_k_rejected_at_request_construction(self, graph):
        with pytest.raises(InvalidParameterError):
            QueryRequest(graph, 0, 1, 10)

    def test_bad_window_rejected_at_request_construction(self, graph):
        with pytest.raises(InvalidParameterError):
            QueryRequest(graph, 2, 10, 1)
        with pytest.raises(InvalidParameterError):
            QueryRequest(graph, 2, 0, 10)

    def test_unknown_engine_rejected(self, graph):
        with pytest.raises(InvalidParameterError):
            plan_queries([QueryRequest(graph, 2, 1, 10)], engine="magic")

    def test_min_overlap_range_checked(self, graph):
        with pytest.raises(InvalidParameterError):
            plan_queries([QueryRequest(graph, 2, 1, 10)], min_overlap=1.5)

    def test_default_min_overlap_is_half(self):
        assert DEFAULT_MIN_OVERLAP == 0.5


class TestPlanForIndex:
    def test_pins_the_index_on_every_group(self, paper_graph):
        from repro.core.index import CoreIndex

        index = CoreIndex(paper_graph, 2)
        plan = plan_for_index(index, [(1, 4), (2, 4), (1, 4)])
        assert all(group.index is index for group in plan.groups)
        assert all(group.engine == "index" for group in plan.groups)
        assert plan.stats["deduped"] == 1

    def test_sinks_must_parallel_ranges(self, paper_graph):
        from repro.core.index import CoreIndex

        index = CoreIndex(paper_graph, 2)
        with pytest.raises(InvalidParameterError):
            plan_for_index(index, [(1, 4)], sinks=[None, None])
