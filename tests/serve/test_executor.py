"""Executor tests: sliced shared-window answers == independent answers."""

from __future__ import annotations

import random

import pytest

from repro.core.enumerate_ref import enumerate_temporal_kcores_ref
from repro.core.index import CoreIndex, CoreIndexRegistry
from repro.errors import InvalidParameterError
from repro.graph.generators import uniform_random_temporal
from repro.serve.executor import execute_plan
from repro.serve.planner import QueryRequest, plan_for_index, plan_queries
from repro.serve.sinks import CountSink, FlatArraySink


def overlapping_ranges(rng, tmax, count):
    """Batches biased toward heavy overlap (hot regions + repeats)."""
    hot = rng.randint(1, max(1, tmax // 2))
    ranges = []
    for _ in range(count):
        mode = rng.random()
        if mode < 0.3 and ranges:
            ranges.append(rng.choice(ranges))  # exact repeat
        elif mode < 0.7:
            lo = max(1, hot + rng.randint(-3, 3))
            hi = min(tmax, lo + rng.randint(2, tmax // 2))
            ranges.append((lo, hi))
        else:
            a, b = rng.randint(1, tmax), rng.randint(1, tmax)
            ranges.append((min(a, b), max(a, b)))
    return ranges


class TestOverlapDedupCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_sliced_answers_equal_independent_answers(self, seed):
        graph = uniform_random_temporal(13, 150, tmax=24, seed=seed)
        index = CoreIndex(graph, 2)
        rng = random.Random(500 + seed)
        ranges = overlapping_ranges(rng, graph.tmax, 12)

        shared = index.query_batch(ranges, collect=True)
        lone = [
            enumerate_temporal_kcores_ref(graph, 2, ts, te, skyline=index.ecs)
            for ts, te in ranges
        ]
        for (ts, te), got, want in zip(ranges, shared, lone):
            assert got.time_range == (ts, te)
            assert got.num_results == want.num_results, (ts, te)
            assert got.total_edges == want.total_edges
            got_by_tti = got.by_tti()
            want_by_tti = want.by_tti()
            assert got_by_tti.keys() == want_by_tti.keys()
            for tti, core in got_by_tti.items():
                assert core.edge_set() == want_by_tti[tti].edge_set()

    @pytest.mark.parametrize("seed", range(3))
    def test_merge_and_no_merge_agree(self, seed):
        graph = uniform_random_temporal(12, 130, tmax=20, seed=seed)
        index = CoreIndex(graph, 3)
        rng = random.Random(900 + seed)
        ranges = overlapping_ranges(rng, graph.tmax, 10)
        merged = index.query_batch(ranges, merge_overlaps=True)
        split = index.query_batch(ranges, merge_overlaps=False)
        assert [
            (r.num_results, r.total_edges) for r in merged
        ] == [(r.num_results, r.total_edges) for r in split]

    def test_every_tti_stays_inside_its_request_range(self):
        graph = uniform_random_temporal(14, 160, tmax=22, seed=42)
        index = CoreIndex(graph, 2)
        ranges = [(1, 15), (5, 22), (8, 12), (5, 22)]
        for result in index.query_batch(ranges, collect=True):
            lo, hi = result.time_range
            for core in result:
                assert lo <= core.tti[0] <= core.tti[1] <= hi


class TestMixedPlans:
    def test_mixed_graphs_and_ks_route_in_input_order(self, paper_graph):
        other = uniform_random_temporal(10, 80, tmax=12, seed=1)
        registry = CoreIndexRegistry(capacity=4)
        requests = [
            QueryRequest(paper_graph, 2, 1, 4),
            QueryRequest(other, 2, 1, 12),
            QueryRequest(paper_graph, 3, 1, 7),
            QueryRequest(paper_graph, 2, 2, 4),
        ]
        plan = plan_queries(requests, engine="index")
        results = execute_plan(plan, registry=registry, collect=True)
        assert [r.time_range for r in results] == [
            (1, 4), (1, 12), (1, 7), (2, 4)]
        want0 = enumerate_temporal_kcores_ref(paper_graph, 2, 1, 4)
        assert results[0].edge_sets() == want0.edge_sets()
        want3 = enumerate_temporal_kcores_ref(paper_graph, 2, 2, 4)
        assert results[3].edge_sets() == want3.edge_sets()

    def test_direct_engine_answers_without_registry_population(self, paper_graph):
        registry = CoreIndexRegistry(capacity=4)
        plan = plan_queries(
            [QueryRequest(paper_graph, 2, 1, 4)], engine="direct"
        )
        results = execute_plan(plan, registry=registry, collect=True)
        assert results[0].num_results == 2
        assert len(registry) == 0  # direct plans never build an index

    def test_per_request_sinks_are_honoured(self, paper_graph):
        count = CountSink()
        flat = FlatArraySink()
        plan = plan_queries(
            [
                QueryRequest(paper_graph, 2, 1, 4, sink=count),
                QueryRequest(paper_graph, 2, 1, 4, sink=flat),
            ],
            engine="index",
        )
        results = execute_plan(plan, registry=CoreIndexRegistry(capacity=2))
        assert count.num_results == 2
        assert flat.num_results == 2
        assert {
            (ts, te) for ts, te, _run in flat.iter_cores()
        } == {(1, 4), (2, 3)}
        assert [r.num_results for r in results] == [2, 2]


class TestValidation:
    def test_sub_span_index_rejects_outside_ranges(self, paper_graph):
        from repro.core.coretime import compute_core_times

        sub = CoreIndex.from_core_times(
            paper_graph, 2, compute_core_times(paper_graph, 2, 2, 5)
        )
        with pytest.raises(InvalidParameterError):
            sub.query_batch([(1, 5)])
        with pytest.raises(InvalidParameterError):
            sub.query(2, 6)

    def test_empty_batch_returns_empty(self, paper_graph):
        index = CoreIndex(paper_graph, 2)
        assert index.query_batch([]) == []


class TestDeadline:
    def test_expired_deadline_marks_all_requests_incomplete(self, paper_graph):
        from repro.utils.timer import Deadline

        index = CoreIndex(paper_graph, 2)
        results = index.query_batch(
            [(1, 4), (2, 5)], deadline=Deadline(0.0)
        )
        assert all(not result.completed for result in results)
        assert all(result.num_results == 0 for result in results)
