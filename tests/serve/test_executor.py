"""Executor tests: sliced shared-window answers == independent answers."""

from __future__ import annotations

import random

import pytest

from repro.core.enumerate_ref import enumerate_temporal_kcores_ref
from repro.core.index import CoreIndex, CoreIndexRegistry
from repro.errors import InvalidParameterError
from repro.graph.generators import uniform_random_temporal
from repro.serve.executor import execute_plan
from repro.serve.planner import QueryRequest, plan_for_index, plan_queries
from repro.serve.sinks import CountSink, FlatArraySink


def overlapping_ranges(rng, tmax, count):
    """Batches biased toward heavy overlap (hot regions + repeats)."""
    hot = rng.randint(1, max(1, tmax // 2))
    ranges = []
    for _ in range(count):
        mode = rng.random()
        if mode < 0.3 and ranges:
            ranges.append(rng.choice(ranges))  # exact repeat
        elif mode < 0.7:
            lo = max(1, hot + rng.randint(-3, 3))
            hi = min(tmax, lo + rng.randint(2, tmax // 2))
            ranges.append((lo, hi))
        else:
            a, b = rng.randint(1, tmax), rng.randint(1, tmax)
            ranges.append((min(a, b), max(a, b)))
    return ranges


class TestOverlapDedupCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_sliced_answers_equal_independent_answers(self, seed):
        graph = uniform_random_temporal(13, 150, tmax=24, seed=seed)
        index = CoreIndex(graph, 2)
        rng = random.Random(500 + seed)
        ranges = overlapping_ranges(rng, graph.tmax, 12)

        shared = index.query_batch(ranges, collect=True)
        lone = [
            enumerate_temporal_kcores_ref(graph, 2, ts, te, skyline=index.ecs)
            for ts, te in ranges
        ]
        for (ts, te), got, want in zip(ranges, shared, lone):
            assert got.time_range == (ts, te)
            assert got.num_results == want.num_results, (ts, te)
            assert got.total_edges == want.total_edges
            got_by_tti = got.by_tti()
            want_by_tti = want.by_tti()
            assert got_by_tti.keys() == want_by_tti.keys()
            for tti, core in got_by_tti.items():
                assert core.edge_set() == want_by_tti[tti].edge_set()

    @pytest.mark.parametrize("seed", range(3))
    def test_merge_and_no_merge_agree(self, seed):
        graph = uniform_random_temporal(12, 130, tmax=20, seed=seed)
        index = CoreIndex(graph, 3)
        rng = random.Random(900 + seed)
        ranges = overlapping_ranges(rng, graph.tmax, 10)
        merged = index.query_batch(ranges, merge_overlaps=True)
        split = index.query_batch(ranges, merge_overlaps=False)
        assert [
            (r.num_results, r.total_edges) for r in merged
        ] == [(r.num_results, r.total_edges) for r in split]

    def test_every_tti_stays_inside_its_request_range(self):
        graph = uniform_random_temporal(14, 160, tmax=22, seed=42)
        index = CoreIndex(graph, 2)
        ranges = [(1, 15), (5, 22), (8, 12), (5, 22)]
        for result in index.query_batch(ranges, collect=True):
            lo, hi = result.time_range
            for core in result:
                assert lo <= core.tti[0] <= core.tti[1] <= hi


class TestMixedPlans:
    def test_mixed_graphs_and_ks_route_in_input_order(self, paper_graph):
        other = uniform_random_temporal(10, 80, tmax=12, seed=1)
        registry = CoreIndexRegistry(capacity=4)
        requests = [
            QueryRequest(paper_graph, 2, 1, 4),
            QueryRequest(other, 2, 1, 12),
            QueryRequest(paper_graph, 3, 1, 7),
            QueryRequest(paper_graph, 2, 2, 4),
        ]
        plan = plan_queries(requests, engine="index")
        results = execute_plan(plan, registry=registry, collect=True)
        assert [r.time_range for r in results] == [
            (1, 4), (1, 12), (1, 7), (2, 4)]
        want0 = enumerate_temporal_kcores_ref(paper_graph, 2, 1, 4)
        assert results[0].edge_sets() == want0.edge_sets()
        want3 = enumerate_temporal_kcores_ref(paper_graph, 2, 2, 4)
        assert results[3].edge_sets() == want3.edge_sets()

    def test_direct_engine_answers_without_registry_population(self, paper_graph):
        registry = CoreIndexRegistry(capacity=4)
        plan = plan_queries(
            [QueryRequest(paper_graph, 2, 1, 4)], engine="direct"
        )
        results = execute_plan(plan, registry=registry, collect=True)
        assert results[0].num_results == 2
        assert len(registry) == 0  # direct plans never build an index

    def test_per_request_sinks_are_honoured(self, paper_graph):
        count = CountSink()
        flat = FlatArraySink()
        plan = plan_queries(
            [
                QueryRequest(paper_graph, 2, 1, 4, sink=count),
                QueryRequest(paper_graph, 2, 1, 4, sink=flat),
            ],
            engine="index",
        )
        results = execute_plan(plan, registry=CoreIndexRegistry(capacity=2))
        assert count.num_results == 2
        assert flat.num_results == 2
        assert {
            (ts, te) for ts, te, _run in flat.iter_cores()
        } == {(1, 4), (2, 3)}
        assert [r.num_results for r in results] == [2, 2]


class TestSliceRouter:
    """The vectorised flat-interval router (PR 6 satellite)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_contended_batch_routes_like_single_queries(self, seed):
        """1000 requests on one hot region, all through one shared walk."""
        graph = uniform_random_temporal(13, 150, tmax=24, seed=seed)
        index = CoreIndex(graph, 2)
        rng = random.Random(3200 + seed)
        ranges = overlapping_ranges(rng, graph.tmax, 1000)
        batch = index.query_batch(ranges)
        singles = {
            time_range: index.query(*time_range, collect=False)
            for time_range in set(ranges)
        }
        for time_range, got in zip(ranges, batch):
            want = singles[time_range]
            assert got.num_results == want.num_results, time_range
            assert got.total_edges == want.total_edges, time_range

    def test_counting_fast_path_defers_sink_updates_to_finish(self):
        """All-CountSink routing accumulates in arrays, not per emission."""
        from repro.serve.executor import _SliceRouter

        sinks = [CountSink() for _ in range(3)]
        router = _SliceRouter(
            [(1, 6, sinks[0]), (2, 4, sinks[1]), (5, 9, sinks[2])]
        )
        assert router._counting
        import numpy as np

        router.emit(
            2,
            np.array([3, 5], dtype=np.int64),
            np.array([2, 4], dtype=np.int64),
            np.array([10, 11, 12, 13], dtype=np.int64),
        )
        # nothing delivered yet: the fast path writes once, at finish
        assert [s.num_results for s in sinks] == [0, 0, 0]
        router.finish(True)
        # target [1,6] sees both cut ends (3 and 5); [2,4] only end 3;
        # [5,9] is not active at t=2 (ts=5 > 2).
        assert [s.num_results for s in sinks] == [2, 1, 0]
        assert [s.total_edges for s in sinks] == [4 + 2, 2, 0]
        assert all(s.completed for s in sinks)

    def test_mixed_sinks_slice_prefixes_per_target(self):
        """A custom sink alongside counters still receives its own cut."""
        from repro.serve.executor import _SliceRouter

        import numpy as np

        flat = FlatArraySink()
        count = CountSink()
        router = _SliceRouter([(1, 9, flat), (1, 3, count)])
        assert not router._counting
        router.emit(
            1,
            np.array([3, 7], dtype=np.int64),
            np.array([2, 5], dtype=np.int64),
            np.array([4, 5, 6, 7, 8], dtype=np.int64),
        )
        router.finish(True)
        assert flat.num_results == 2 and flat.total_edges == 7
        assert count.num_results == 1 and count.total_edges == 2
        assert [
            (ts, te, list(run)) for ts, te, run in flat.iter_cores()
        ] == [(1, 3, [4, 5]), (1, 7, [4, 5, 6, 7, 8])]

    def test_targets_starting_later_activate_later(self):
        from repro.serve.executor import _SliceRouter

        import numpy as np

        early = CountSink()
        late = CountSink()
        router = _SliceRouter([(1, 9, early), (5, 9, late)])
        one = np.array([6], dtype=np.int64)
        router.emit(2, one, one, np.array([0], dtype=np.int64))
        router.emit(5, one, one, np.array([1], dtype=np.int64))
        router.finish(True)
        assert early.num_results == 2
        assert late.num_results == 1  # missed the t=2 emission


class TestValidation:
    def test_sub_span_index_rejects_outside_ranges(self, paper_graph):
        from repro.core.coretime import compute_core_times

        sub = CoreIndex.from_core_times(
            paper_graph, 2, compute_core_times(paper_graph, 2, 2, 5)
        )
        with pytest.raises(InvalidParameterError):
            sub.query_batch([(1, 5)])
        with pytest.raises(InvalidParameterError):
            sub.query(2, 6)

    def test_empty_batch_returns_empty(self, paper_graph):
        index = CoreIndex(paper_graph, 2)
        assert index.query_batch([]) == []


class TestDeadline:
    def test_expired_deadline_marks_all_requests_incomplete(self, paper_graph):
        from repro.obs.timing import Deadline

        index = CoreIndex(paper_graph, 2)
        results = index.query_batch(
            [(1, 4), (2, 5)], deadline=Deadline(0.0)
        )
        assert all(not result.completed for result in results)
        assert all(result.num_results == 0 for result in results)
