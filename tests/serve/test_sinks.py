"""Result sink unit tests: counters, delivery semantics, streaming."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.enumerate import enumerate_temporal_kcores
from repro.serve.sinks import (
    CallbackSink,
    CountSink,
    FlatArraySink,
    MaterializingSink,
    NDJSONSink,
    TeeSink,
    make_sink,
)


def emit_batches(sink):
    """Two hand-built batches: ts=2 with two cores, ts=3 with one."""
    sink.emit(
        2,
        np.array([5, 7], dtype=np.int64),
        np.array([2, 3], dtype=np.int64),
        np.array([10, 11, 12], dtype=np.int64),
    )
    sink.emit(
        3,
        np.array([7], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([12], dtype=np.int64),
    )
    sink.finish(True)


class TestCounters:
    @pytest.mark.parametrize(
        "factory",
        [CountSink, MaterializingSink, FlatArraySink,
         lambda: CallbackSink(lambda *args: None)],
    )
    def test_every_sink_counts_identically(self, factory):
        sink = factory()
        emit_batches(sink)
        assert sink.num_results == 3
        assert sink.total_edges == 6
        assert sink.completed

    def test_result_packaging(self):
        sink = CountSink()
        emit_batches(sink)
        result = sink.result("enum", 2, (2, 7))
        assert (result.num_results, result.total_edges) == (3, 6)
        assert result.cores is None
        assert result.completed

    def test_finish_false_is_sticky(self):
        sink = CountSink()
        sink.finish(False)
        sink.finish(True)
        assert not sink.completed


class TestMaterializing:
    def test_cores_are_prefixes_of_the_run(self):
        sink = MaterializingSink()
        emit_batches(sink)
        assert [core.tti for core in sink.cores] == [(2, 5), (2, 7), (3, 7)]
        assert [core.edge_ids for core in sink.cores] == [
            (10, 11), (10, 11, 12), (12,)]
        result = sink.result("enum", 2, (2, 7))
        assert result.cores is sink.cores


class TestCallback:
    def test_live_prefix_protocol(self):
        seen = []
        sink = CallbackSink(lambda ts, te, edges: seen.append(
            (ts, te, list(edges), id(edges))))
        emit_batches(sink)
        assert [(ts, te, edges) for ts, te, edges, _ in seen] == [
            (2, 5, [10, 11]), (2, 7, [10, 11, 12]), (3, 7, [12])]
        # Within one start time the callback receives the *same* live list.
        assert seen[0][3] == seen[1][3]
        assert seen[1][3] != seen[2][3]


class TestNDJSON:
    def test_one_line_per_core(self):
        stream = io.StringIO()
        sink = NDJSONSink(stream)
        emit_batches(sink)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines == [
            {"tti": [2, 5], "num_edges": 2, "edge_ids": [10, 11]},
            {"tti": [2, 7], "num_edges": 3, "edge_ids": [10, 11, 12]},
            {"tti": [3, 7], "num_edges": 1, "edge_ids": [12]},
        ]

    def test_without_edge_ids_lines_are_constant_size(self):
        stream = io.StringIO()
        sink = NDJSONSink(stream, edge_ids=False)
        emit_batches(sink)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines[0] == {"tti": [2, 5], "num_edges": 2}
        assert all("edge_ids" not in line for line in lines)

    def test_streams_during_enumeration_not_after(self, paper_graph):
        written_at: list[int] = []

        class Spy(io.StringIO):
            def write(self, text):
                written_at.append(text.count("\n"))
                return super().write(text)

        stream = Spy()
        enumerate_temporal_kcores(paper_graph, 2, sink=NDJSONSink(stream))
        assert sum(written_at) == 13  # one line per core, as emitted


class TestFlatArray:
    def test_columns_and_lazy_expansion(self):
        sink = FlatArraySink()
        emit_batches(sink)
        ts, te, lengths, run_ids = sink.arrays()
        assert ts.tolist() == [2, 2, 3]
        assert te.tolist() == [5, 7, 7]
        assert lengths.tolist() == [2, 3, 1]
        assert run_ids.tolist() == [0, 0, 1]
        expanded = [
            (ts_, te_, run.tolist()) for ts_, te_, run in sink.iter_cores()
        ]
        assert expanded == [
            (2, 5, [10, 11]), (2, 7, [10, 11, 12]), (3, 7, [12])]

    def test_empty_arrays(self):
        sink = FlatArraySink()
        sink.finish(True)
        ts, te, lengths, run_ids = sink.arrays()
        assert len(ts) == len(te) == len(lengths) == len(run_ids) == 0

    def test_shared_runs_are_stored_once(self, paper_graph):
        sink = FlatArraySink()
        result = enumerate_temporal_kcores(paper_graph, 2, sink=sink)
        assert result.num_results == 13
        stored = sum(len(run) for run in sink.runs)
        assert stored < result.total_edges  # prefixes share their run


class TestTeeAndFactory:
    def test_tee_feeds_all_targets(self):
        count = CountSink()
        flat = FlatArraySink()
        tee = TeeSink(count, flat)
        emit_batches(tee)
        assert count.num_results == flat.num_results == tee.num_results == 3
        assert not tee.collects

    def test_make_sink_matrix(self):
        assert isinstance(make_sink(collect=True), MaterializingSink)
        assert isinstance(make_sink(collect=False), CountSink)
        streaming = make_sink(collect=False, on_result=lambda *a: None)
        assert isinstance(streaming, CallbackSink)
        both = make_sink(collect=True, on_result=lambda *a: None)
        assert isinstance(both, TeeSink)
        assert both.collects
