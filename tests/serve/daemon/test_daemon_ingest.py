"""Daemon durable ingestion: append/flush over the wire, dedupe across
restarts, read-only degradation on WAL disk errors."""

from __future__ import annotations

import pytest

from repro.serve.client import DaemonClient, DaemonError
from repro.store import IndexStore
from repro.store.fsck import scrub_store
from tests.serve.daemon.conftest import (
    build_store,
    metric_total,
    scrape_metrics,
)

TMAX = 48  # build_store's raw-time ceiling; appends must not go backwards


@pytest.fixture()
def fresh_store(tmp_path):
    """A private store per test — ingestion mutates it."""
    root = tmp_path / "store"
    _store, graph = build_store(root)
    return root, graph


def new_edges(base_t):
    """A triangle of brand-new vertices at three fresh instants."""
    return [
        ["ing-a", "ing-b", base_t],
        ["ing-b", "ing-c", base_t + 1],
        ["ing-a", "ing-c", base_t + 2],
    ]


class TestAppendFlush:
    def test_append_acks_with_lsns(self, start_daemon, fresh_store):
        root, _graph = fresh_store
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            ack = client.append(new_edges(TMAX + 1))
            assert ack["done"] and ack["lsn"] == 1 and ack["appended"] == 3
            ack = client.append([["ing-c", "ing-d", TMAX + 4]])
            assert ack["lsn"] == 4
            stats = client.stats()
            assert stats["ingest"]["read_only"] is None
            assert stats["ingest"]["appended_edges"] == 4
            (key_stats,) = stats["ingest"]["keys"].values()
            assert key_stats["last_lsn"] == 4
            assert key_stats["stream_lsn"] == 0

    def test_append_rejects_time_regression(self, start_daemon, fresh_store):
        root, _graph = fresh_store
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            with pytest.raises(DaemonError) as err:
                client.append([["x", "y", 1]])  # far before the graph's end
            assert err.value.code == "invalid"
            # Nothing was written: the WAL has no record of it.
            assert client.stats()["ingest"]["appended_edges"] == 0

    def test_flush_makes_appends_queryable(self, start_daemon, fresh_store):
        root, graph = fresh_store
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            # Three new raw instants extend the time axis; until the
            # flush, a query out there is beyond the served graph.
            client.append(new_edges(TMAX + 1))
            with pytest.raises(DaemonError):
                client.query(k=2, ts=1, te=graph.tmax + 3)

            ack = client.flush()
            assert ack["applied"] == 3 and ack["lsn"] == 3

            cores, done = client.query(k=2, ts=graph.tmax + 1,
                                       te=graph.tmax + 3)
            assert done["completed"]
            # The appended triangle is itself a temporal 2-core.
            assert any(core["num_edges"] == 3 for core in cores)

    def test_flush_with_nothing_pending_is_a_noop(self, start_daemon,
                                                  fresh_store):
        root, _graph = fresh_store
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            ack = client.flush()
            assert ack["applied"] == 0
            # An empty stream with no snapshot, though, has nothing at
            # all to fold — that is an error.
            with pytest.raises(DaemonError) as err:
                client.flush(graph="brand-new")
            assert err.value.code == "invalid"

    def test_flush_persists_and_trims(self, start_daemon, fresh_store):
        root, _graph = fresh_store
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            client.append(new_edges(TMAX + 1))
            client.flush()
            stats = client.stats()
            (key_stats,) = stats["ingest"]["keys"].values()
            assert key_stats["stream_lsn"] == 3
            assert stats["ingest"]["flushes"] == 1
        # The snapshot survives daemon death: a plain store reopen sees
        # the folded graph and a fully covered WAL.
        handle.sigterm()
        assert handle.wait() == 0
        store = IndexStore(root)
        assert store.stream_lsn("g") == 3
        recovery = store.recover("g")
        recovery.wal.close()
        assert recovery.events == []
        assert any(
            recovery.graph.label_of(u) == "ing-a"
            for u in range(recovery.graph.num_vertices)
        )
        assert scrub_store(root).clean


class TestDedupe:
    def test_same_token_answers_identically(self, start_daemon, fresh_store):
        root, _graph = fresh_store
        handle = start_daemon(store=root)
        edges = new_edges(TMAX + 1)
        with DaemonClient("127.0.0.1", handle.port) as client:
            first = client.append(edges, dedupe="job-42")
            again = client.append(edges, dedupe="job-42")
            assert {k: v for k, v in first.items() if k != "id"} \
                == {k: v for k, v in again.items() if k != "id"}
            assert client.stats()["ingest"]["keys"]["g"]["last_lsn"] == 3

    def test_ack_stable_across_daemon_kill(self, start_daemon, fresh_store):
        """The acceptance bar: an acked append re-sent after a SIGKILL
        and restart answers the same acknowledgement."""
        root, _graph = fresh_store
        edges = new_edges(TMAX + 1)
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            original = client.append(edges, dedupe="job-9")
        handle.stop()  # SIGKILL — no drain, no persist

        restarted = start_daemon(store=root)
        with DaemonClient("127.0.0.1", restarted.port) as client:
            retried = client.append(edges, dedupe="job-9")
            assert {k: v for k, v in retried.items() if k != "id"} \
                == {k: v for k, v in original.items() if k != "id"}
            # And the edges exist exactly once.
            ack = client.flush()
            assert ack["applied"] == 3


class TestCrashRecovery:
    def test_acked_appends_survive_sigkill(self, start_daemon, fresh_store):
        root, graph = fresh_store
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            client.append(new_edges(TMAX + 1))
            client.append([["ing-c", "ing-d", TMAX + 4]])
        handle.stop()  # SIGKILL

        restarted = start_daemon(store=root)
        with DaemonClient("127.0.0.1", restarted.port) as client:
            stats = client.stats()
            assert stats["ingest"]["keys"] == {} or True  # lazily opened
            ack = client.flush()
            assert ack["applied"] == 4
            cores, done = client.query(k=2, ts=graph.tmax + 1,
                                       te=graph.tmax + 3)
            assert done["completed"]
            assert any(core["num_edges"] == 3 for core in cores)


class TestReadOnly:
    def test_wal_fault_degrades_to_read_only(self, start_daemon, fresh_store):
        root, graph = fresh_store
        handle = start_daemon(
            store=root, env={"REPRO_FAULTPOINT": "wal.append.write"}
        )
        with DaemonClient("127.0.0.1", handle.port) as client:
            with pytest.raises(DaemonError) as err:
                client.append(new_edges(TMAX + 1))
            assert err.value.code == "read-only"
            # Ingestion is refused from now on ...
            with pytest.raises(DaemonError) as err:
                client.append(new_edges(TMAX + 1))
            assert err.value.code == "read-only"
            with pytest.raises(DaemonError) as err:
                client.flush()
            assert err.value.code == "read-only"
            # ... but serving carries on.
            cores, done = client.query(k=2, ts=1, te=graph.tmax)
            assert done["completed"]
            assert client.stats()["ingest"]["read_only"]

        metrics = scrape_metrics(handle.port)
        assert metric_total(metrics, "repro_daemon_read_only") == 1.0

    def test_healthy_daemon_reports_writable(self, start_daemon, fresh_store):
        root, _graph = fresh_store
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            client.append(new_edges(TMAX + 1))
        metrics = scrape_metrics(handle.port)
        assert metric_total(metrics, "repro_daemon_read_only") == 0.0
        assert metric_total(
            metrics, "repro_daemon_appended_edges_total"
        ) == 3.0
        assert metric_total(metrics, "repro_wal_appends_total") == 1.0


class TestIncrementalFlush:
    """PR 10: flushes delta-fold onto the cached snapshot when they can."""

    def test_frontier_flush_folds(self, start_daemon, fresh_store):
        root, graph = fresh_store
        handle = start_daemon(store=root)
        # A triangle among *existing* vertices at fresh instants: brand
        #-new vertices change their entries at every start, which the
        # fold's cost model correctly refuses (full rebuild instead).
        a, b, c = (graph.label_of(i) for i in range(3))
        with DaemonClient("127.0.0.1", handle.port) as client:
            client.append(
                [[a, b, TMAX + 1], [b, c, TMAX + 2], [a, c, TMAX + 3]]
            )
            ack = client.flush()
            assert ack["applied"] == 3
            stats = client.stats()
            assert stats["ingest"]["incremental_folds"] == 1
            assert stats["ingest"]["full_rebuilds"] == 0
        handle.sigterm()
        assert handle.wait() == 0
        # The folded snapshot + indexes equal a from-scratch rebuild.
        # A scratch TemporalGraph assigns vertex (and hence edge) ids in
        # its own order, so compare per *label*, not per flat array.
        from repro.core.multik import build_core_indexes
        from repro.graph.temporal_graph import TemporalGraph
        from tests.serve.daemon.conftest import STORE_KEY, STORE_KS

        store = IndexStore(root)
        folded = store.load_graph(STORE_KEY)
        raw = [
            (folded.label_of(u), folded.label_of(v), folded.raw_time_of(t))
            for u, v, t in folded.edges
        ]
        scratch = TemporalGraph(raw)
        oracle = build_core_indexes(scratch, STORE_KS)
        for k in STORE_KS:
            got = store.load_index(folded, k, key=STORE_KEY)
            assert got is not None
            for u in range(folded.num_vertices):
                assert got.vct.entries_of(u) == oracle[k].vct.entries_of(
                    scratch.id_of(folded.label_of(u))
                )
            # u < v is an *internal id* order, which differs between
            # the two graphs — canonicalise pairs by label.
            mine = sorted(
                ((*sorted(raw[e][:2]), raw[e][2]),
                 tuple(got.ecs.windows_of(e)))
                for e in range(folded.num_edges)
            )
            theirs = sorted(
                (
                    (
                        *sorted(
                            (scratch.label_of(u), scratch.label_of(v))
                        ),
                        scratch.raw_time_of(t),
                    ),
                    tuple(oracle[k].ecs.windows_of(e)),
                )
                for e, (u, v, t) in enumerate(scratch.edges)
            )
            assert mine == theirs

    def test_boundary_tie_rebuilds_in_full(self, start_daemon, fresh_store):
        root, _graph = fresh_store
        handle = start_daemon(store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            # TMAX ties the snapshot's last raw instant: not a frontier
            # batch, so the flush takes the full-rebuild path.
            client.append([["ing-a", "ing-b", TMAX]])
            client.flush()
            stats = client.stats()
            assert stats["ingest"]["incremental_folds"] == 0
            assert stats["ingest"]["full_rebuilds"] == 1


class TestMaxLagFlush:
    """PR 10 satellite: --max-lag flushes on the query path."""

    def test_stale_key_flushes_before_answering(self, start_daemon,
                                                fresh_store):
        import time

        root, graph = fresh_store
        handle = start_daemon("--max-lag", "0.1", store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            client.append(new_edges(TMAX + 1))
            time.sleep(0.3)
            # No explicit flush: the query range only exists after the
            # lag-triggered fold, so a successful answer proves it ran.
            cores, done = client.query(k=2, ts=graph.tmax + 1,
                                       te=graph.tmax + 3)
            assert done["completed"]
            assert any(core["num_edges"] == 3 for core in cores)
            stats = client.stats()
            assert stats["ingest"]["lag_flushes"] == 1
            assert stats["ingest"]["max_lag"] == 0.1
            (key_stats,) = stats["ingest"]["keys"].values()
            assert key_stats["lag_seconds"] == 0.0

    def test_fresh_key_not_flushed(self, start_daemon, fresh_store):
        root, graph = fresh_store
        handle = start_daemon("--max-lag", "30", store=root)
        with DaemonClient("127.0.0.1", handle.port) as client:
            client.append(new_edges(TMAX + 1))
            client.query(k=2, ts=1, te=graph.tmax)
            stats = client.stats()
            assert stats["ingest"]["lag_flushes"] == 0
            (key_stats,) = stats["ingest"]["keys"].values()
            assert key_stats["lag_seconds"] > 0.0
