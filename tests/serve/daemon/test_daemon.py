"""Daemon end-to-end: socket answers == in-process answers, plus the
protocol's control surface (ping/stats/shutdown, errors, /metrics)."""

from __future__ import annotations

import json
import random
import socket

import pytest

from repro.core.index import CoreIndex
from repro.serve.client import DaemonClient, DaemonError
from tests.serve.daemon.conftest import metric_total, scrape_metrics
from tests.serve.test_executor import overlapping_ranges


@pytest.fixture(scope="module")
def daemon(daemon_store):
    """One shared read-only daemon for this module (the launcher
    fixture is function-scoped, so this spawns by hand)."""
    import os
    import subprocess
    import sys

    from tests.serve.daemon.conftest import SRC, DaemonHandle

    root, graph = daemon_store
    environ = dict(os.environ)
    environ["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)]
        + ([environ["PYTHONPATH"]] if environ.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", str(root), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=environ,
    )
    line = proc.stdout.readline()
    if not line:
        _out, err = proc.communicate(timeout=10)
        raise RuntimeError(f"daemon failed to start:\n{err}")
    handle = DaemonHandle(proc, json.loads(line)["port"])
    yield handle, graph
    handle.stop()


class TestControlOps:
    def test_ping(self, daemon):
        handle, _graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            assert client.ping() is True

    def test_stats_shape(self, daemon):
        handle, _graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            stats = client.stats()
        assert stats["store"]["keys"] == ["g"]
        counters = stats["daemon"]
        assert counters["accepted"] == (
            counters["completed"] + counters["cancelled"] + counters["failed"]
        )
        assert stats["registry"]["size"] >= 2  # warmed k=2,3 at boot
        assert stats["pool"] is None

    def test_warm_boot_served_from_store(self, daemon):
        handle, _graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            stats = client.stats()
        # Boot warming resolved both stored ks from disk, not compute.
        assert stats["registry"]["store_hits"] >= 2
        assert stats["registry"]["multik_builds"] == 0


class TestAnswersMatchInProcess:
    @pytest.mark.parametrize("k", [2, 3])
    def test_query_counters_and_cores(self, daemon, k):
        handle, graph = daemon
        index = CoreIndex(graph, k)
        rng = random.Random(200 + k)
        with DaemonClient("127.0.0.1", handle.port) as client:
            for _ in range(4):
                a, b = rng.randint(1, graph.tmax), rng.randint(1, graph.tmax)
                ts, te = min(a, b), max(a, b)
                cores, done = client.query(k=k, ts=ts, te=te)
                want = index.query(ts, te, collect=True)
                assert done["num_results"] == want.num_results
                assert done["total_edges"] == want.total_edges
                assert done["completed"] is True
                got = {
                    (tuple(core["tti"]), frozenset(core["edge_ids"]))
                    for core in cores
                }
                want_cores = {
                    (core.tti, frozenset(core.edge_ids))
                    for core in want.cores
                }
                assert got == want_cores

    def test_query_without_edge_ids(self, daemon):
        handle, graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            cores, done = client.query(
                k=2, ts=1, te=graph.tmax, edge_ids=False
            )
        assert cores and all("edge_ids" not in core for core in cores)
        assert done["num_results"] == len(cores)

    def test_batch_in_input_order(self, daemon):
        handle, graph = daemon
        index = CoreIndex(graph, 2)
        rng = random.Random(77)
        ranges = overlapping_ranges(rng, graph.tmax, 20)
        with DaemonClient("127.0.0.1", handle.port) as client:
            answers = client.batch(ranges, k=2)
        want = index.query_batch(ranges)
        assert [tuple(answer["range"]) for answer in answers] == ranges
        for answer, result in zip(answers, want):
            assert answer["num_results"] == result.num_results
            assert answer["total_edges"] == result.total_edges
            assert answer["completed"] is True

    def test_explicit_graph_key(self, daemon):
        handle, graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            _cores, done = client.query(k=2, ts=1, te=5, graph="g")
            assert done["ok"] is True


class TestRequestErrors:
    def test_unknown_graph_key(self, daemon):
        handle, _graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            with pytest.raises(DaemonError) as err:
                client.query(k=2, ts=1, te=5, graph="nope")
            assert err.value.code == "invalid"
            assert client.ping()  # connection survives a request error

    def test_window_outside_graph(self, daemon):
        handle, graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            with pytest.raises(DaemonError) as err:
                client.query(k=2, ts=1, te=graph.tmax + 10)
            assert err.value.code == "invalid"

    def test_bad_k(self, daemon):
        handle, _graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            with pytest.raises(DaemonError) as err:
                client.query(k=0, ts=1, te=5)
            assert err.value.code == "invalid"

    def test_errors_count_as_failed_and_reconcile(self, daemon):
        handle, _graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            with pytest.raises(DaemonError):
                client.query(k=2, ts=1, te=10_000)
            stats = client.stats()["daemon"]
        assert stats["failed"] >= 1
        assert stats["accepted"] == (
            stats["completed"] + stats["cancelled"] + stats["failed"]
        )


class TestMetricsEndpoint:
    def test_metrics_serves_live_registry(self, daemon):
        handle, _graph = daemon
        with DaemonClient("127.0.0.1", handle.port) as client:
            client.ping()
            stats = client.stats()["daemon"]
        text = scrape_metrics(handle.port)
        assert "# TYPE repro_daemon_accepted_total counter" in text
        assert metric_total(text, "repro_daemon_accepted_total") == (
            stats["accepted"]
        )
        # The stats connection may not have fully torn down yet.
        assert metric_total(text, "repro_daemon_connections") <= 1.0

    def test_unknown_path_is_404(self, daemon):
        handle, _graph = daemon
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"http://127.0.0.1:{handle.port}/nope", timeout=10
            )
        assert err.value.code == 404

    def test_health_endpoint(self, daemon):
        import urllib.request

        handle, _graph = daemon
        with urllib.request.urlopen(
            f"http://127.0.0.1:{handle.port}/health", timeout=10
        ) as response:
            assert response.read() == b"ok\n"


class TestShutdownOp:
    def test_shutdown_drains_and_exits_clean(self, start_daemon):
        handle = start_daemon()
        with DaemonClient("127.0.0.1", handle.port) as client:
            ack = client.shutdown()
            assert ack["draining"] is True
        assert handle.wait(timeout=30) == 0

    def test_work_after_shutdown_rejected_as_draining(self, start_daemon):
        handle = start_daemon()
        with socket.create_connection(("127.0.0.1", handle.port), timeout=10) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b'{"op": "shutdown", "id": 1}\n')
            ack = json.loads(reader.readline())
            assert ack["draining"] is True
            sock.sendall(b'{"op": "query", "id": 2, "k": 2, "ts": 1, "te": 5}\n')
            response = json.loads(reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "draining"
        assert handle.wait(timeout=30) == 0
