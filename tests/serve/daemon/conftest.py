"""Fixtures for the daemon test campaign.

Every test here drives a **real** daemon subprocess over a real TCP
socket — signals (SIGTERM drain, SIGKILL'd workers) and disconnect
semantics only mean anything across a process boundary.  The session
store is built once; tests that mutate the store (the drain-snapshot
test) copy it first.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.core.index import CoreIndex
from repro.graph.generators import uniform_random_temporal
from repro.store.index_store import IndexStore

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src"

STORE_KEY = "g"
STORE_KS = (2, 3)


def build_store(root, *, seed=11, nodes=24, edges=700, tmax=48):
    """A store holding one random graph plus its k=2,3 indexes."""
    graph = uniform_random_temporal(nodes, edges, tmax=tmax, seed=seed)
    store = IndexStore(root)
    store.save_graph(graph, name=STORE_KEY)
    for k in STORE_KS:
        store.save_index(CoreIndex(graph, k), name=STORE_KEY)
    return store, graph


@pytest.fixture(scope="session")
def daemon_store(tmp_path_factory):
    """``(store_root, graph)`` shared by the read-only daemon tests."""
    root = tmp_path_factory.mktemp("daemon") / "store"
    _store, graph = build_store(root)
    return root, graph


class DaemonHandle:
    """One daemon subprocess: its Popen, bound port, and teardown."""

    def __init__(self, proc: subprocess.Popen, port: int):
        self.proc = proc
        self.port = port

    def sigterm(self) -> None:
        self.proc.send_signal(15)

    def wait(self, timeout: float = 30.0) -> int:
        """Wait for exit; returns the return code (pipes drained)."""
        self.proc.communicate(timeout=timeout)
        return self.proc.returncode

    def alive(self) -> bool:
        return self.proc.poll() is None

    def stop(self) -> None:
        if self.alive():
            self.proc.kill()
        # wait(), not communicate(): a hard-killed daemon can orphan
        # forked pool workers that still hold the stdout/stderr pipe
        # write ends, and communicate() would block on them until EOF.
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass
        for stream in (self.proc.stdout, self.proc.stderr):
            if stream is not None:
                stream.close()


@pytest.fixture
def start_daemon(daemon_store):
    """Factory launching ``repro serve`` subprocesses on ephemeral ports.

    ``_start(*extra_args)`` serves the session store; pass ``store=``
    for a different one and ``env=`` for extra environment (the fault
    hook).  Returns a :class:`DaemonHandle` once the ready line lands.
    """
    root, _graph = daemon_store
    handles: list[DaemonHandle] = []

    def _start(*extra_args, store=None, env=None) -> DaemonHandle:
        environ = dict(os.environ)
        environ["PYTHONPATH"] = os.pathsep.join(
            [str(SRC)]
            + ([environ["PYTHONPATH"]] if environ.get("PYTHONPATH") else [])
        )
        if env:
            environ.update(env)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--store",
                str(store if store is not None else root),
                "--port",
                "0",
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=environ,
        )
        line = proc.stdout.readline()
        if not line:
            _out, err = proc.communicate(timeout=10)
            raise RuntimeError(f"daemon failed to start:\n{err}")
        ready = json.loads(line)
        assert ready["event"] == "ready"
        handle = DaemonHandle(proc, ready["port"])
        handles.append(handle)
        return handle

    yield _start
    for handle in handles:
        handle.stop()


def scrape_metrics(port: int) -> str:
    """One ``GET /metrics`` scrape, as text."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10
    ) as response:
        assert response.status == 200
        return response.read().decode("utf-8")


def metric_total(text: str, name: str, **labels) -> float:
    """Sum every sample of ``name`` whose labels include ``labels``."""
    total = 0.0
    pattern = re.compile(rf"^{re.escape(name)}(?:\{{(?P<labels>[^}}]*)\}})? (?P<value>\S+)$")
    for line in text.splitlines():
        match = pattern.match(line)
        if not match:
            continue
        present = dict(
            re.findall(r'(\w+)="([^"]*)"', match.group("labels") or "")
        )
        if all(present.get(key) == value for key, value in labels.items()):
            total += float(match.group("value"))
    return total
