"""WorkerPool tests: parallel answers == sequential == reference oracle."""

from __future__ import annotations

import os
import pathlib
import random

import pytest

from repro.bench.batch import run_mixed_batch, run_query_batch
from repro.core.enumerate_ref import enumerate_temporal_kcores_ref
from repro.core.index import CoreIndex, CoreIndexRegistry
from repro.core.maintenance import StreamingCoreService
from repro.errors import InvalidParameterError
from repro.graph.generators import uniform_random_temporal
from repro.serve.executor import execute_plan
from repro.serve.parallel import WorkerPool, _partition, open_pool
from repro.serve.planner import CoveringWindow, QueryRequest, plan_queries
from repro.store import IndexStore
from repro.obs.timing import Deadline

from tests.serve.test_executor import overlapping_ranges


@pytest.fixture(scope="module")
def pool(tmp_path_factory):
    """One 2-worker pool shared by the module (spawn cost paid once)."""
    store = tmp_path_factory.mktemp("pool-store")
    with WorkerPool(store, processes=2, min_parallel_windows=0) as pool:
        yield pool


def counters(results):
    return [(r.num_results, r.total_edges, r.completed) for r in results]


def core_sets(results):
    return [
        {(c.tti, frozenset(c.edge_ids)) for c in (r.cores or [])}
        for r in results
    ]


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("seed", range(4))
    def test_counts_match_executor_and_oracle(self, pool, seed):
        graph = uniform_random_temporal(13, 150, tmax=24, seed=seed)
        k = 2 + seed % 2
        rng = random.Random(7000 + seed)
        ranges = overlapping_ranges(rng, graph.tmax, 10)
        requests = [QueryRequest(graph, k, ts, te) for ts, te in ranges]

        parallel = execute_plan(plan_queries(requests), parallel=pool)
        sequential = execute_plan(plan_queries(requests))
        assert counters(parallel) == counters(sequential)
        for (ts, te), got in zip(ranges, parallel):
            want = enumerate_temporal_kcores_ref(graph, k, ts, te)
            assert got.num_results == want.num_results
            assert got.total_edges == want.total_edges

    @pytest.mark.parametrize("seed", range(2))
    def test_collected_cores_match_executor(self, pool, seed):
        graph = uniform_random_temporal(12, 120, tmax=18, seed=30 + seed)
        rng = random.Random(8100 + seed)
        ranges = overlapping_ranges(rng, graph.tmax, 8)
        requests = [QueryRequest(graph, 2, ts, te) for ts, te in ranges]
        parallel = execute_plan(
            plan_queries(requests), collect=True, parallel=pool
        )
        sequential = execute_plan(
            plan_queries([QueryRequest(graph, 2, ts, te) for ts, te in ranges]),
            collect=True,
        )
        assert core_sets(parallel) == core_sets(sequential)

    def test_direct_engine_windows_fan_out(self, pool, paper_graph):
        ranges = [(1, 4), (2, 6), (5, 7), (1, 7)]
        requests = [QueryRequest(paper_graph, 2, ts, te) for ts, te in ranges]
        before = pool.tasks_dispatched
        parallel = execute_plan(
            plan_queries(requests, engine="direct"), parallel=pool
        )
        sequential = execute_plan(
            plan_queries(
                [QueryRequest(paper_graph, 2, ts, te) for ts, te in ranges],
                engine="direct",
            )
        )
        assert counters(parallel) == counters(sequential)
        assert pool.tasks_dispatched > before

    def test_single_worker_pool(self, tmp_path, paper_graph):
        ranges = [(1, 4), (2, 6), (1, 7), (3, 5)]
        with WorkerPool(
            tmp_path / "store", processes=1, min_parallel_windows=0
        ) as single:
            parallel = run_query_batch(paper_graph, 2, ranges, parallel=single)
        assert parallel == run_query_batch(paper_graph, 2, ranges)

    def test_mixed_batch_through_pool(self, pool, paper_graph, triangle_graph):
        queries = [
            (paper_graph, 2, (1, 4)),
            (triangle_graph, 2, (1, 3)),
            (paper_graph, 3, (1, 7)),
            (paper_graph, 2, (2, 6)),
        ]
        registry = CoreIndexRegistry(capacity=8)
        assert run_mixed_batch(
            queries, registry=registry, parallel=pool
        ) == run_mixed_batch(queries, registry=registry)

    def test_streaming_service_batch(self, pool, paper_graph):
        edges = [
            (paper_graph.label_of(u), paper_graph.label_of(v), t)
            for u, v, t in paper_graph.edges
        ]
        service = StreamingCoreService(2, edges)
        ranges = [(1, 4), (2, 6), (1, 7)]
        parallel = service.query_batch(ranges, parallel=pool)
        sequential = service.query_batch(ranges)
        assert counters(parallel) == counters(sequential)


class TestDeadlines:
    def test_expired_deadline_aborts_everywhere(self, pool, paper_graph):
        requests = [
            QueryRequest(paper_graph, 2, ts, te)
            for ts, te in [(1, 4), (2, 6), (1, 7)]
        ]
        results = execute_plan(
            plan_queries(requests), parallel=pool, deadline=Deadline(0.0)
        )
        assert all(not r.completed for r in results)

    def test_generous_deadline_completes(self, pool, paper_graph):
        requests = [
            QueryRequest(paper_graph, 2, ts, te)
            for ts, te in [(1, 4), (2, 6), (1, 7)]
        ]
        results = execute_plan(
            plan_queries(requests), parallel=pool, deadline=Deadline(60.0)
        )
        assert all(r.completed for r in results)
        assert counters(results) == counters(
            execute_plan(
                plan_queries(
                    [
                        QueryRequest(paper_graph, 2, ts, te)
                        for ts, te in [(1, 4), (2, 6), (1, 7)]
                    ]
                )
            )
        )


class TestRecovery:
    def test_sigkilled_worker_is_replaced_and_answers_survive(
        self, tmp_path, paper_graph
    ):
        fault = tmp_path / "kill-exactly-one-worker"
        fault.touch()
        ranges = [(1, 4), (2, 6), (1, 7), (3, 5), (5, 5), (2, 3)]
        with WorkerPool(
            tmp_path / "store",
            processes=2,
            min_parallel_windows=0,
            _fault_path=os.fspath(fault),
        ) as pool:
            parallel = run_query_batch(paper_graph, 2, ranges, parallel=pool)
            assert pool.broken_restarts >= 1
        assert not fault.exists()  # the fault fired exactly once
        assert parallel == run_query_batch(paper_graph, 2, ranges)

    def test_exhausted_restarts_degrade_to_parent_execution(
        self, tmp_path, paper_graph, monkeypatch
    ):
        import repro.serve.parallel as parallel_module

        # Every dispatch dies: the pool must finish the batch itself.
        def always_dead(chunk, timeout):
            raise parallel_module.BrokenProcessPool("worker lost")

        ranges = [(1, 4), (2, 6), (1, 7)]
        with WorkerPool(
            tmp_path / "store",
            processes=1,
            min_parallel_windows=0,
            max_restarts=1,
        ) as pool:
            monkeypatch.setattr(parallel_module, "_worker_run", always_dead)

            class _DeadFuture:
                def __init__(self, *a, **kw):
                    pass

                def result(self):
                    raise parallel_module.BrokenProcessPool("worker lost")

            class _DeadExecutor:
                def submit(self, fn, *args):
                    return _DeadFuture()

                def shutdown(self, **kwargs):
                    pass

            monkeypatch.setattr(
                pool, "_ensure_executor", lambda: _DeadExecutor()
            )
            answers = run_query_batch(paper_graph, 2, ranges, parallel=pool)
            assert pool.broken_restarts == pool.max_restarts + 1
        assert answers == run_query_batch(paper_graph, 2, ranges)


class TestFallbacksAndValidation:
    def test_small_plans_stay_sequential(self, tmp_path, paper_graph):
        with WorkerPool(
            tmp_path / "store", processes=2, min_parallel_windows=100
        ) as pool:
            answers = run_query_batch(
                paper_graph, 2, [(1, 4), (2, 6)], parallel=pool
            )
            assert pool.sequential_fallbacks == 1
            assert pool.tasks_dispatched == 0
        assert answers == run_query_batch(paper_graph, 2, [(1, 4), (2, 6)])

    def test_validation(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            WorkerPool(tmp_path / "s", processes=0)
        with pytest.raises(InvalidParameterError):
            WorkerPool(tmp_path / "s", min_parallel_windows=-1)
        with pytest.raises(InvalidParameterError):
            WorkerPool(tmp_path / "s", chunks_per_worker=0)

    def test_legacy_processes_argument_routes_through_pool(self, paper_graph):
        ranges = [(1, 4), (2, 6), (1, 7), (3, 5), (5, 5), (2, 3)]
        sequential = run_query_batch(paper_graph, 2, ranges)
        assert run_query_batch(paper_graph, 2, ranges, processes=2) == sequential
        assert run_query_batch(paper_graph, 2, ranges, processes=1) == sequential

    def test_edge_shipping_initializer_is_gone(self):
        import repro.bench.batch as batch_module

        assert not hasattr(batch_module, "_init_worker")
        assert not hasattr(batch_module, "_answer")

    def test_processes_with_store_uses_that_store(self, tmp_path, paper_graph):
        store = IndexStore(tmp_path / "store")
        # Disjoint ranges: several covering windows, so the ephemeral
        # pool actually dispatches (and therefore persists) instead of
        # taking the small-plan sequential fallback.
        ranges = [(1, 2), (3, 4), (5, 7)]
        answers = run_query_batch(
            paper_graph, 2, ranges, processes=2, store=store
        )
        assert answers == run_query_batch(paper_graph, 2, ranges)
        # the pool persisted into the caller's store, not a temp one
        assert store.has_index(paper_graph, 2)


class TestPoolInternals:
    def test_partition_balances_and_orders_by_cost(self):
        windows = [CoveringWindow(i, i + 1, [i]) for i in range(7)]
        costs = [5, 1, 1, 1, 8, 1, 1]
        packed = _partition(windows, costs, 3)
        assert sum(len(ws) for ws, _ in packed) == len(windows)
        totals = [total for _, total in packed]
        assert totals == sorted(totals, reverse=True)
        assert packed[0][0][0].ts == 4  # the cost-8 window leads
        seen = {w.ts for ws, _ in packed for w in ws}
        assert seen == set(range(7))

    def test_partition_with_more_bins_than_windows(self):
        windows = [CoveringWindow(1, 2, [0])]
        packed = _partition(windows, [3], 4)
        assert len(packed) == 1 and packed[0][0] == windows

    def test_prestart_spawns_workers(self, tmp_path):
        with WorkerPool(tmp_path / "store", processes=2) as pool:
            pids = pool.prestart()
            assert len(pids) == 2
            assert all(pid != os.getpid() for pid in pids)

    def test_store_persist_is_cached_across_batches(self, tmp_path, paper_graph):
        with WorkerPool(
            tmp_path / "store", processes=1, min_parallel_windows=0
        ) as pool:
            index = CoreIndex(paper_graph, 2)
            key = pool.ensure_index(index)
            assert pool.ensure_index(index) == key  # set-cached, no probe
            assert pool.store.has_index(paper_graph, 2, key=key)

    def test_unpersistable_graph_falls_back_sequential(self, tmp_path):
        from repro.graph.temporal_graph import TemporalGraph

        # tuple labels: rejected by the store codec
        graph = TemporalGraph(
            [(("a",), ("b",), 1), (("b",), ("c",), 1), (("a",), ("c",), 2)]
        )
        with WorkerPool(
            tmp_path / "store", processes=1, min_parallel_windows=0
        ) as pool:
            answers = run_query_batch(graph, 2, [(1, 2), (1, 1)], parallel=pool)
            assert pool.sequential_fallbacks == 1
        assert answers == run_query_batch(graph, 2, [(1, 2), (1, 1)])

    def test_open_pool_without_store_cleans_up(self, paper_graph):
        with open_pool(1, min_parallel_windows=0) as pool:
            root = pathlib.Path(pool.store.root)
            run_query_batch(paper_graph, 2, [(1, 4), (2, 6)], parallel=pool)
            assert root.exists()
        assert not root.exists()
