"""Wire protocol: frame codecs, request validation, and byte-identity.

The first half exercises :mod:`repro.serve.protocol` in isolation —
round-trips over randomized payloads and the full validation error
matrix.  The second half proves the strongest end-to-end property the
daemon offers: the core lines it streams over a socket are **byte
identical** to what an in-process :class:`NDJSONSink` writes for the
same query, and its counters match :func:`run_query_batch` and the
seed oracle on randomized graphs, ks and windows.
"""

from __future__ import annotations

import io
import json
import random
import socket

import pytest

from repro.bench.batch import run_query_batch
from repro.core.enumerate_ref import enumerate_temporal_kcores_ref
from repro.core.index import CoreIndex
from repro.graph.generators import uniform_random_temporal
from repro.serve.client import DaemonClient, DaemonError
from repro.serve.executor import execute_plan
from repro.serve.planner import plan_for_index
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    batch_done_frame,
    core_frame_prefix,
    decode_frame,
    done_frame,
    encode_frame,
    error_frame,
    ok_frame,
    parse_request,
)
from repro.serve.sinks import NDJSONSink
from repro.store.index_store import IndexStore


def random_payload(rng: random.Random, depth: int = 0):
    """A random JSON-representable value (nested up to two levels)."""
    choices = ["int", "float", "str", "bool", "none"]
    if depth < 2:
        choices += ["list", "dict"]
    kind = rng.choice(choices)
    if kind == "int":
        return rng.randint(-(10**12), 10**12)
    if kind == "float":
        return rng.uniform(-1e6, 1e6)
    if kind == "str":
        return "".join(
            rng.choice("abc λμν \"\\\n\t0123") for _ in range(rng.randint(0, 12))
        )
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "none":
        return None
    if kind == "list":
        return [random_payload(rng, depth + 1) for _ in range(rng.randint(0, 4))]
    return {
        f"key{i}": random_payload(rng, depth + 1)
        for i in range(rng.randint(0, 4))
    }


class TestFrameCodec:
    def test_round_trips_randomized_payloads(self):
        rng = random.Random(4242)
        for _ in range(200):
            frame = {
                f"field{i}": random_payload(rng)
                for i in range(rng.randint(1, 6))
            }
            wire = encode_frame(frame)
            assert wire.endswith(b"\n")
            assert wire.count(b"\n") == 1  # newline-delimited framing holds
            assert decode_frame(wire) == frame
            assert decode_frame(wire.decode("utf-8")) == frame

    def test_builder_frames_round_trip(self):
        for frame in (
            ok_frame(7, pong=True),
            error_frame("x", "overloaded", "queue full"),
            done_frame(None, num_results=3, total_edges=9, completed=False),
            batch_done_frame(2, [{"range": [1, 5], "num_results": 0}]),
        ):
            assert decode_frame(encode_frame(frame)) == frame

    def test_oversized_line_rejected(self):
        line = b'{"pad": "' + b"y" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError) as err:
            decode_frame(line)
        assert err.value.code == "too-large"

    def test_bad_json_rejected(self):
        for line in (b"nope", b"{truncated", b"\xff\xfe"):
            with pytest.raises(ProtocolError) as err:
                decode_frame(line)
            assert err.value.code == "bad-json"

    def test_non_object_rejected(self):
        for line in (b"[1, 2]", b'"str"', b"42", b"null"):
            with pytest.raises(ProtocolError) as err:
                decode_frame(line)
            assert err.value.code == "bad-request"

    def test_core_frame_splice_is_valid_json(self):
        # The daemon splices NDJSON lines verbatim between this prefix
        # and "}\n"; the result must parse back to the original core.
        core_line = '{"tti": [2, 5], "num_edges": 3, "edge_ids": [0, 4, 7]}\n'
        wire = core_frame_prefix(17) + core_line[:-1] + "}\n"
        frame = json.loads(wire)
        assert frame["id"] == 17
        assert frame["core"] == json.loads(core_line)


class TestParseRequest:
    def test_control_ops_parse_minimal(self):
        for op in ("ping", "stats", "shutdown"):
            request = parse_request({"op": op, "id": 3})
            assert request == Request(op=op, id=3)
            assert not request.is_work

    def test_query_parses_fields(self):
        request = parse_request(
            {"op": "query", "id": "q1", "k": 3, "ts": 2, "te": 9,
             "graph": "g", "timeout": 1.5, "edge_ids": False}
        )
        assert request.is_work
        assert request.k == 3
        assert request.ranges == ((2, 9),)
        assert request.graph == "g"
        assert request.timeout == 1.5
        assert request.edge_ids is False

    def test_batch_parses_ranges_in_order(self):
        request = parse_request(
            {"op": "batch", "id": 1, "k": 2, "ranges": [[1, 5], [3, 3]]}
        )
        assert request.ranges == ((1, 5), (3, 3))

    @pytest.mark.parametrize(
        "frame, code",
        [
            ({"id": 1}, "bad-request"),                      # missing op
            ({"op": 5, "id": 1}, "bad-request"),             # non-string op
            ({"op": "frobnicate", "id": 1}, "unknown-op"),
            ({"op": "ping", "id": [1]}, "bad-request"),      # non-scalar id
            ({"op": "query", "id": 1, "ts": 1, "te": 5}, "bad-request"),
            ({"op": "query", "id": 1, "k": True, "ts": 1, "te": 5},
             "bad-request"),                                 # bool-as-int k
            ({"op": "query", "id": 1, "k": 2, "ts": 1.5, "te": 5},
             "bad-request"),                                 # float ts
            ({"op": "query", "id": 1, "k": 2, "ts": 1, "te": 5, "graph": 7},
             "bad-request"),
            ({"op": "query", "id": 1, "k": 2, "ts": 1, "te": 5,
              "timeout": "fast"}, "bad-request"),
            ({"op": "query", "id": 1, "k": 2, "ts": 1, "te": 5,
              "timeout": 0}, "bad-request"),
            ({"op": "query", "id": 1, "k": 2, "ts": 1, "te": 5,
              "edge_ids": 1}, "bad-request"),
            ({"op": "batch", "id": 1, "k": 2}, "bad-request"),
            ({"op": "batch", "id": 1, "k": 2, "ranges": []}, "bad-request"),
            ({"op": "batch", "id": 1, "k": 2, "ranges": [[1]]}, "bad-request"),
            ({"op": "batch", "id": 1, "k": 2, "ranges": [[1, 2.5]]},
             "bad-request"),
            ({"op": "batch", "id": 1, "k": 2, "ranges": [[1, True]]},
             "bad-request"),
        ],
    )
    def test_invalid_frames_map_to_codes(self, frame, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(frame)
        assert err.value.code == code

    def test_semantic_errors_are_not_protocol_errors(self):
        # k=0 and inverted windows are wire-valid; the daemon rejects
        # them against the store with an "invalid" response instead.
        assert parse_request(
            {"op": "query", "id": 1, "k": 0, "ts": 9, "te": 1}
        ).k == 0


class TestParseIngest:
    def test_append_parses_edges_and_token(self):
        request = parse_request(
            {"op": "append", "id": 4, "edges": [["a", "b", 1], [2, 3, 5]],
             "dedupe": "tok", "graph": "g"}
        )
        assert request.is_work
        assert request.edges == (("a", "b", 1), (2, 3, 5))
        assert request.dedupe == "tok"
        assert request.graph == "g"

    def test_flush_parses_minimal(self):
        request = parse_request({"op": "flush", "id": 5, "graph": "g"})
        assert request.is_work
        assert request.edges == ()

    @pytest.mark.parametrize(
        "frame, code",
        [
            ({"op": "append", "id": 1}, "bad-request"),         # no edges
            ({"op": "append", "id": 1, "edges": []}, "bad-request"),
            ({"op": "append", "id": 1, "edges": [["a", "b"]]}, "bad-request"),
            ({"op": "append", "id": 1, "edges": [["a", "b", 1.5]]},
             "bad-request"),                                    # float time
            ({"op": "append", "id": 1, "edges": [["a", "b", True]]},
             "bad-request"),                                    # bool time
            ({"op": "append", "id": 1, "edges": [[None, "b", 1]]},
             "bad-request"),                                    # bad label
            ({"op": "append", "id": 1, "edges": [["a", "b", 1]],
              "dedupe": 7}, "bad-request"),                     # non-str token
        ],
    )
    def test_invalid_append_frames(self, frame, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(frame)
        assert err.value.code == code

    def test_append_edge_limit(self):
        from repro.serve.protocol import MAX_APPEND_EDGES

        frame = {
            "op": "append", "id": 1,
            "edges": [["a", "b", 1]] * (MAX_APPEND_EDGES + 1),
        }
        with pytest.raises(ProtocolError) as err:
            parse_request(frame)
        assert err.value.code == "too-large"

    def test_ack_frames_shape(self):
        from repro.serve.protocol import append_done_frame, flush_done_frame

        assert append_done_frame(9, lsn=4, appended=2) == {
            "id": 9, "ok": True, "done": True, "lsn": 4, "appended": 2,
        }
        assert flush_done_frame(9, lsn=6, applied=3) == {
            "id": 9, "ok": True, "done": True, "lsn": 6, "applied": 3,
        }


def stream_query_raw(port: int, request: dict) -> tuple[list[bytes], dict]:
    """Send one query over a raw socket; ``(core line bytes, done frame)``.

    Core payloads are recovered exactly as the daemon spliced them:
    everything between :func:`core_frame_prefix` and the closing
    ``}\\n`` is the untouched NDJSON line (minus its newline).
    """
    prefix = core_frame_prefix(request["id"]).encode("utf-8")
    cores: list[bytes] = []
    with socket.create_connection(("127.0.0.1", port), timeout=60) as sock:
        reader = sock.makefile("rb")
        sock.sendall(json.dumps(request).encode() + b"\n")
        while True:
            line = reader.readline()
            assert line, "daemon hung up mid-stream"
            if line.startswith(prefix):
                cores.append(line[len(prefix) : -2] + b"\n")
                continue
            frame = json.loads(line)
            assert "core" not in frame  # the prefix match is exhaustive
            reader.close()
            return cores, frame


class TestDaemonByteIdentity:
    @pytest.fixture(scope="class")
    def multi_store(self, tmp_path_factory):
        """Two distinct random graphs in one store, keys ``a`` and ``b``."""
        root = tmp_path_factory.mktemp("protocol") / "store"
        store = IndexStore(root)
        graphs = {}
        for name, seed in (("a", 101), ("b", 202)):
            graph = uniform_random_temporal(22, 600, tmax=40, seed=seed)
            store.save_graph(graph, name=name)
            store.save_index(CoreIndex(graph, 2), name=name)
            graphs[name] = graph
        return root, graphs

    def in_process_ndjson(self, graph, k, ts, te, *, edge_ids=True) -> bytes:
        """The NDJSON bytes the serving core writes for this query."""
        buffer = io.StringIO()
        index = CoreIndex(graph, k)
        plan = plan_for_index(
            index, [(ts, te)], sinks=[NDJSONSink(buffer, edge_ids=edge_ids)]
        )
        execute_plan(plan)
        return buffer.getvalue().encode("utf-8")

    def test_streamed_cores_byte_identical(self, start_daemon, multi_store):
        root, graphs = multi_store
        handle = start_daemon(store=root)
        rng = random.Random(31337)
        for trial in range(6):
            name, graph = rng.choice(sorted(graphs.items()))
            k = rng.choice([2, 3])
            a, b = rng.randint(1, graph.tmax), rng.randint(1, graph.tmax)
            ts, te = min(a, b), max(a, b)
            edge_ids = trial % 3 != 2
            cores, done = stream_query_raw(
                handle.port,
                {"op": "query", "id": trial, "k": k, "ts": ts, "te": te,
                 "graph": name, "edge_ids": edge_ids},
            )
            want = self.in_process_ndjson(graph, k, ts, te, edge_ids=edge_ids)
            assert b"".join(cores) == want
            assert done["ok"] is True and done["completed"] is True
            assert done["num_results"] == len(cores)

    def test_counters_match_run_query_batch(self, start_daemon, multi_store):
        root, graphs = multi_store
        handle = start_daemon(store=root)
        rng = random.Random(55)
        with DaemonClient("127.0.0.1", handle.port) as client:
            for name, graph in sorted(graphs.items()):
                ranges = []
                for _ in range(8):
                    a = rng.randint(1, graph.tmax)
                    b = rng.randint(1, graph.tmax)
                    ranges.append((min(a, b), max(a, b)))
                answers = client.batch(ranges, k=2, graph=name)
                want = run_query_batch(graph, 2, ranges)
                assert len(answers) == len(want)
                for answer, result in zip(answers, want):
                    assert tuple(answer["range"]) == result.time_range
                    assert answer["num_results"] == result.num_results
                    assert answer["total_edges"] == result.total_edges

    def test_spot_check_against_seed_oracle(self, start_daemon, multi_store):
        root, graphs = multi_store
        handle = start_daemon(store=root)
        graph = graphs["a"]
        ts, te = 3, graph.tmax - 5
        with DaemonClient("127.0.0.1", handle.port) as client:
            cores, done = client.query(k=2, ts=ts, te=te, graph="a")
        want = enumerate_temporal_kcores_ref(graph, 2, ts, te)
        assert done["num_results"] == want.num_results
        assert done["total_edges"] == want.total_edges
        got = {(tuple(c["tti"]), frozenset(c["edge_ids"])) for c in cores}
        assert got == {(c.tti, frozenset(c.edge_ids)) for c in want.cores}


class TestClientFraming:
    def test_recv_reassembles_frames_larger_than_the_request_limit(self):
        """Response frames are not size-bounded server-side — a single
        core's ``edge_ids`` list can push a frame past
        ``MAX_LINE_BYTES`` — so the client must reassemble a long line
        across bounded reads instead of returning it truncated (which
        used to surface as a confusing ``json.loads`` error)."""
        import threading

        big = {
            "id": 7,
            "core": {
                "tti": [1, 2],
                "num_edges": 1,
                "edge_ids": list(range(MAX_LINE_BYTES // 4)),
            },
        }
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]
        assert len(encode_frame(big)) > MAX_LINE_BYTES

        def serve() -> None:
            conn, _addr = server.accept()
            with conn:
                conn.sendall(encode_frame(big))

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            client = DaemonClient("127.0.0.1", port)
            try:
                assert client.recv() == big
                with pytest.raises(DaemonError, match="closed"):
                    client.recv()
            finally:
                client.close()
        finally:
            thread.join()
            server.close()
