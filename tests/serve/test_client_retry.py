"""DaemonClient retry discipline against a scripted fake daemon.

Each test stands up a tiny threaded TCP server whose per-connection
behaviour is scripted, so every retry path — connect failure, drop
before response, ``overloaded`` pushback, non-idempotent refusal — is
exercised deterministically without a real daemon."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import ReproError
from repro.serve.client import (
    DaemonClient,
    DaemonConnectionError,
    DaemonError,
)


class ScriptedServer:
    """A fake daemon: each accepted connection runs the next script entry.

    A script entry is a callable ``(conn, server) -> None``; it may read
    frames, answer, or slam the connection shut.  Connections beyond the
    script reuse the last entry.
    """

    def __init__(self, *script):
        self.script = list(script)
        self.frames: list[dict] = []  # every request frame ever received
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            index = min(self.connections, len(self.script) - 1)
            self.connections += 1
            try:
                self.script[index](conn, self)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def read_frame(conn, server) -> dict | None:
    reader = conn.makefile("rb")
    line = reader.readline()
    if not line:
        return None
    frame = json.loads(line)
    server.frames.append(frame)
    return frame


def answer_ok(conn, frame, **extra) -> None:
    payload = {"id": frame.get("id"), "ok": True, **extra}
    conn.sendall(json.dumps(payload).encode() + b"\n")


def echo_pong(conn, server) -> None:
    frame = read_frame(conn, server)
    while frame is not None:
        answer_ok(conn, frame, pong=True, done=True, lsn=1,
                  appended=len(frame.get("edges", [])) or None,
                  stats={}, answers=[])
        frame = read_frame(conn, server)


def drop_after_read(conn, server) -> None:
    read_frame(conn, server)  # swallow the request, say nothing


def answer_overloaded(conn, server) -> None:
    frame = read_frame(conn, server)
    if frame is not None:
        conn.sendall(json.dumps({
            "id": frame.get("id"), "ok": False,
            "error": {"code": "overloaded", "message": "queue full"},
        }).encode() + b"\n")


FAST = {"backoff": 0.01, "backoff_max": 0.02}


class TestConstruction:
    def test_rejects_bad_retry_parameters(self):
        with pytest.raises(ReproError):
            DaemonClient("127.0.0.1", 1, retries=-1)
        with pytest.raises(ReproError):
            DaemonClient("127.0.0.1", 1, backoff=0)
        with pytest.raises(ReproError):
            DaemonClient("127.0.0.1", 1, backoff=2.0, backoff_max=1.0)

    def test_no_retries_fails_fast_on_dead_port(self):
        sacrifice = socket.socket()
        sacrifice.bind(("127.0.0.1", 0))
        port = sacrifice.getsockname()[1]
        sacrifice.close()  # nothing listens here now
        with pytest.raises(OSError):
            DaemonClient("127.0.0.1", port, timeout=0.5)


class TestTransportRetry:
    def test_dropped_connection_retried_for_idempotent_ops(self):
        with ScriptedServer(drop_after_read, echo_pong) as server:
            with DaemonClient("127.0.0.1", server.port,
                              retries=2, **FAST) as client:
                assert client.ping()
            assert server.connections == 2

    def test_retries_exhausted_raises_connection_error(self):
        with ScriptedServer(drop_after_read) as server:
            with DaemonClient("127.0.0.1", server.port,
                              retries=2, **FAST) as client:
                with pytest.raises(DaemonConnectionError):
                    client.ping()
            # Construction's connection served attempt 1; each of the
            # two retries reconnected once.
            assert server.connections == 3

    def test_non_idempotent_not_retried_after_send(self):
        with ScriptedServer(drop_after_read, echo_pong) as server:
            with DaemonClient("127.0.0.1", server.port,
                              retries=3, **FAST) as client:
                with pytest.raises(DaemonConnectionError):
                    client.request({"op": "ping"}, idempotent=False)
            # The request went out once and was never re-sent.
            assert len(server.frames) == 1

    def test_overloaded_backs_off_and_retries(self):
        with ScriptedServer(answer_overloaded, echo_pong) as server:
            with DaemonClient("127.0.0.1", server.port,
                              retries=2, **FAST) as client:
                assert client.ping()
            assert len(server.frames) == 2

    def test_overloaded_without_retries_surfaces(self):
        with ScriptedServer(answer_overloaded) as server:
            with DaemonClient("127.0.0.1", server.port) as client:
                with pytest.raises(DaemonError) as err:
                    client.ping()
                assert err.value.code == "overloaded"


class TestAppendIdempotency:
    def test_append_generates_a_dedupe_token(self):
        with ScriptedServer(echo_pong) as server:
            with DaemonClient("127.0.0.1", server.port) as client:
                client.append([("a", "b", 1)])
            (frame,) = server.frames
            assert isinstance(frame["dedupe"], str) and frame["dedupe"]

    def test_append_retry_replays_the_same_token(self):
        """The property that makes append retry safe: both deliveries
        carry one token, so the daemon can answer the first ack twice."""
        with ScriptedServer(drop_after_read, echo_pong) as server:
            with DaemonClient("127.0.0.1", server.port,
                              retries=2, **FAST) as client:
                client.append([("a", "b", 1)], dedupe="job-7")
            assert [f["dedupe"] for f in server.frames] == ["job-7", "job-7"]

    def test_explicit_token_passes_through(self):
        with ScriptedServer(echo_pong) as server:
            with DaemonClient("127.0.0.1", server.port) as client:
                client.append([("a", "b", 1)], dedupe="outer-retry")
            assert server.frames[0]["dedupe"] == "outer-retry"


class TestQueryRetry:
    def test_query_rerun_discards_partial_stream(self):
        def stream_half_then_drop(conn, server):
            frame = read_frame(conn, server)
            conn.sendall(json.dumps(
                {"id": frame["id"], "core": {"ts": 1, "te": 2, "edge_ids": [0]}}
            ).encode() + b"\n")
            # ... and die mid-stream.

        def stream_all(conn, server):
            frame = read_frame(conn, server)
            for core in ({"ts": 1, "te": 2, "edge_ids": [0]},
                         {"ts": 2, "te": 3, "edge_ids": [1]}):
                conn.sendall(json.dumps(
                    {"id": frame["id"], "core": core}
                ).encode() + b"\n")
            answer_ok(conn, frame, done=True, num_results=2,
                      total_edges=2, completed=True)

        with ScriptedServer(stream_half_then_drop, stream_all) as server:
            with DaemonClient("127.0.0.1", server.port,
                              retries=2, **FAST) as client:
                cores, done = client.query(k=2, ts=1, te=3)
            # No duplicated cores from the aborted first stream.
            assert len(cores) == 2
            assert done["completed"]
