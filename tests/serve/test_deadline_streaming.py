"""Deadline aborts through the streaming-sink path, sequential and pooled.

PR 7 wired deadlines into the columnar walk; this suite closes the gap
the daemon exposed: a deadline that expires (or a client that cancels)
while results stream through caller-provided sinks must abort cleanly
on **both** the sequential and the ``parallel=`` pool paths — windows
whose preparation never started are skipped outright (counted under
``repro_execute_windows_total{mode="skipped"}``), every affected
request reports ``completed=False``, and whatever was already streamed
is a valid prefix of the full answer.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.core.index import CoreIndex
from repro.core.maintenance import StreamingCoreService
from repro.graph.generators import uniform_random_temporal
from repro.obs.metrics import get_registry
from repro.obs.timing import Deadline
from repro.serve.executor import execute_plan
from repro.serve.parallel import WorkerPool
from repro.serve.planner import plan_for_index
from repro.serve.sinks import MaterializingSink, NDJSONSink


@pytest.fixture(scope="module")
def graph():
    return uniform_random_temporal(24, 700, tmax=48, seed=11)


@pytest.fixture(scope="module")
def pool(tmp_path_factory):
    store = tmp_path_factory.mktemp("deadline-pool")
    with WorkerPool(store, processes=2, min_parallel_windows=0) as pool:
        yield pool


RANGES = [(1, 20), (5, 30), (2, 44)]


def skipped_windows() -> float:
    counter = get_registry().counter(
        "repro_execute_windows_total",
        "Covering windows enumerated, by sharing mode",
        ("mode",),
    )
    return counter.labels("skipped").value


class TestServiceStreamingSinks:
    def test_service_sinks_match_collect(self, graph):
        edges = [
            (graph.label_of(u), graph.label_of(v), t)
            for u, v, t in graph.edges
        ]
        service = StreamingCoreService(2, edges)
        sinks = [MaterializingSink() for _ in RANGES]
        streamed = service.query_batch(RANGES, sinks=sinks)
        collected = service.query_batch(RANGES, collect=True)
        for sink, through_sink, result in zip(sinks, streamed, collected):
            assert through_sink.num_results == result.num_results
            assert through_sink.total_edges == result.total_edges
            assert sink.cores == result.cores

    def test_service_sinks_with_pool_match_collect(self, graph, pool):
        edges = [
            (graph.label_of(u), graph.label_of(v), t)
            for u, v, t in graph.edges
        ]
        service = StreamingCoreService(2, edges)
        sinks = [MaterializingSink() for _ in RANGES]
        streamed = service.query_batch(RANGES, sinks=sinks, parallel=pool)
        collected = service.query_batch(RANGES, collect=True)
        for sink, through_sink, result in zip(sinks, streamed, collected):
            assert through_sink.num_results == result.num_results
            assert {(c.tti, frozenset(c.edge_ids)) for c in sink.cores} == {
                (c.tti, frozenset(c.edge_ids)) for c in result.cores
            }


class TestExpiredDeadlineSequential:
    def test_all_windows_skipped_and_incomplete(self, graph):
        index = CoreIndex(graph, 2)
        sinks = [io.StringIO() for _ in RANGES]
        plan = plan_for_index(
            index, RANGES, sinks=[NDJSONSink(s) for s in sinks]
        )
        before = skipped_windows()
        results = execute_plan(plan, deadline=Deadline(0.0))
        assert all(not r.completed for r in results)
        assert all(r.num_results == 0 for r in results)
        assert all(s.getvalue() == "" for s in sinks)
        # Every covering window was skipped before preparation.
        assert skipped_windows() - before == plan.num_windows

    def test_expired_service_batch(self, graph):
        edges = [
            (graph.label_of(u), graph.label_of(v), t)
            for u, v, t in graph.edges
        ]
        service = StreamingCoreService(2, edges)
        results = service.query_batch(RANGES, deadline=Deadline(0.0))
        assert all(not r.completed for r in results)


class TestExpiredDeadlineParallel:
    def test_pool_with_streaming_sinks_aborts(self, graph, pool):
        index = CoreIndex(graph, 2)
        sinks = [io.StringIO() for _ in RANGES]
        plan = plan_for_index(
            index, RANGES, sinks=[NDJSONSink(s) for s in sinks]
        )
        results = execute_plan(plan, parallel=pool, deadline=Deadline(0.0))
        assert all(not r.completed for r in results)
        assert all(r.num_results == 0 for r in results)
        assert all(s.getvalue() == "" for s in sinks)

    def test_pool_count_only_aborts(self, graph, pool):
        index = CoreIndex(graph, 2)
        plan = plan_for_index(index, RANGES)
        results = execute_plan(plan, parallel=pool, deadline=Deadline(0.0))
        assert all(not r.completed for r in results)


class TestMidWalkCancellation:
    def full_stream(self, graph) -> str:
        index = CoreIndex(graph, 2)
        buffer = io.StringIO()
        plan = plan_for_index(
            index, [(1, graph.tmax)], sinks=[NDJSONSink(buffer)]
        )
        [result] = execute_plan(plan)
        assert result.completed
        return buffer.getvalue()

    def test_cancel_mid_walk_leaves_valid_prefix(self, graph):
        full = self.full_stream(graph)
        assert full.count("\n") > 20  # enough stream to cancel inside

        index = CoreIndex(graph, 2)
        buffer = io.StringIO()
        # Trip the external-cancel hook (the daemon's client-gone
        # signal) once a handful of cores have streamed; the walk polls
        # per start time, so it stops at the next checkpoint.
        cancelled = lambda: buffer.getvalue().count("\n") >= 5  # noqa: E731
        plan = plan_for_index(
            index, [(1, graph.tmax)], sinks=[NDJSONSink(buffer)]
        )
        [result] = execute_plan(
            plan, deadline=Deadline(3600.0, cancelled=cancelled)
        )
        streamed = buffer.getvalue()
        assert not result.completed
        assert result.num_results == streamed.count("\n") >= 5
        assert streamed != full  # it really stopped early
        assert full.startswith(streamed)  # and what streamed is a prefix

    def test_abort_is_materially_faster_than_full_run(self):
        # Secondary, generous timing check: an immediately expired
        # deadline must cost far less than the full enumeration.
        heavy = uniform_random_temporal(40, 2500, tmax=60, seed=5)
        index = CoreIndex(heavy, 2)
        window = [(1, heavy.tmax)]

        start = time.perf_counter()
        [full] = execute_plan(plan_for_index(index, window), collect=False)
        full_elapsed = time.perf_counter() - start
        assert full.completed

        start = time.perf_counter()
        [aborted] = execute_plan(
            plan_for_index(index, window), deadline=Deadline(0.0)
        )
        abort_elapsed = time.perf_counter() - start
        assert not aborted.completed
        assert abort_elapsed < max(full_elapsed * 0.5, 0.05)
