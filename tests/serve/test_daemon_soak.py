"""Concurrency soak: many async clients against a tiny admission queue.

Eight clients burst simultaneously (a start gate holds them until all
are connected) at a daemon whose request queue holds only two entries,
so admission control *must* reject some of the burst with
``overloaded``.  Clients retry rejected requests until they land.  At
the end every accepted request completed with the correct answer, the
client-observed rejection count equals the daemon's
``rejected{reason="overloaded"}`` counter, and
``accepted == completed + cancelled + failed`` reconciles exactly.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.index import CoreIndex
from repro.serve.client import DaemonClient

CLIENTS = 8
QUERIES_PER_CLIENT = 5


async def soak_client(
    port: int,
    gate: asyncio.Event,
    windows: list[tuple[int, int]],
) -> tuple[int, list[dict]]:
    """Run one client's queries; ``(rejections_seen, done frames)``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    await gate.wait()
    rejections = 0
    done_frames = []
    try:
        for rid, (ts, te) in enumerate(windows):
            while True:
                writer.write(
                    json.dumps(
                        {"op": "query", "id": rid, "k": 2, "ts": ts,
                         "te": te, "edge_ids": False}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                frame = json.loads(await reader.readline())
                if frame.get("ok") is False:
                    assert frame["error"]["code"] == "overloaded", frame
                    rejections += 1
                    await asyncio.sleep(0.01)
                    continue
                while "core" in frame:
                    frame = json.loads(await reader.readline())
                assert frame["ok"] is True, frame
                assert frame["id"] == rid
                done_frames.append(frame)
                break
    finally:
        writer.close()
        await writer.wait_closed()
    return rejections, done_frames


def test_soak_small_queue_rejects_cleanly_and_reconciles(
    start_daemon, daemon_store
):
    _root, graph = daemon_store
    handle = start_daemon("--queue-depth", "2")
    index = CoreIndex(graph, 2)

    # Per-client windows, chosen deterministically so the expected
    # counters are computable up front.
    plans = []
    for client_id in range(CLIENTS):
        windows = []
        for j in range(QUERIES_PER_CLIENT):
            ts = 1 + (client_id + j) % (graph.tmax // 2)
            te = min(graph.tmax, ts + 4 + 2 * j)
            windows.append((ts, te))
        plans.append(windows)
    expected = {
        window: index.query(*window, collect=False)
        for windows in plans
        for window in set(windows)
    }

    async def run_soak():
        gate = asyncio.Event()
        tasks = [
            asyncio.create_task(soak_client(handle.port, gate, windows))
            for windows in plans
        ]
        # Everyone is connected (open_connection returned before the
        # gate); release the burst at once.
        await asyncio.sleep(0.05)
        gate.set()
        return await asyncio.gather(*tasks)

    results = asyncio.run(asyncio.wait_for(run_soak(), timeout=120))

    total_rejections = sum(rejections for rejections, _frames in results)
    total_done = sum(len(frames) for _rejections, frames in results)
    assert total_done == CLIENTS * QUERIES_PER_CLIENT

    # Every completed answer is correct.
    for windows, (_rejections, frames) in zip(plans, results):
        for (ts, te), frame in zip(windows, frames):
            want = expected[(ts, te)]
            assert frame["completed"] is True
            assert frame["num_results"] == want.num_results
            assert frame["total_edges"] == want.total_edges

    with DaemonClient("127.0.0.1", handle.port) as client:
        counters = client.stats()["daemon"]
    # With a queue this small and a simultaneous 8-way burst, admission
    # control must have fired at least once.
    assert total_rejections >= 1
    assert counters["rejected"].get("overloaded", 0) == total_rejections
    assert counters["accepted"] == total_done
    assert counters["completed"] == total_done
    assert counters["cancelled"] == 0 and counters["failed"] == 0
    assert counters["accepted"] == (
        counters["completed"] + counters["cancelled"] + counters["failed"]
    )

    # And the daemon shuts down clean after the storm.
    with DaemonClient("127.0.0.1", handle.port) as client:
        assert client.shutdown()["draining"] is True
    assert handle.wait(timeout=30) == 0
