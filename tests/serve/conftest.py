"""Shared serve-layer fixtures.

The daemon launcher and its session store live in
``tests/serve/daemon/conftest.py``; re-importing them here registers
the fixtures for the whole ``tests/serve`` tree (the fault, protocol
and soak suites drive daemon subprocesses too).
"""

from tests.serve.daemon.conftest import (  # noqa: F401
    daemon_store,
    start_daemon,
)
