"""Columnar enumeration core vs the seed linked-list oracle.

The property contract: over randomised graphs, ``k`` values and query
windows, the columnar walk must report exactly the oracle's cores —
same count, same TTI set, same edge *set* per TTI, same ``|R|``.
(Intra-core edge order may differ inside equal-end-time groups; the
identity of a core is its edge set.)
"""

from __future__ import annotations

import random

import pytest

from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.enumerate_ref import enumerate_temporal_kcores_ref
from repro.core.index import CoreIndex
from repro.graph.generators import uniform_random_temporal
from repro.obs.timing import Deadline


class ExpiresAfter:
    """A fake deadline that trips after ``n`` polls — deterministic aborts."""

    def __init__(self, n: int):
        self.remaining_polls = n

    def expired(self) -> bool:
        self.remaining_polls -= 1
        return self.remaining_polls < 0


def assert_result_identical(new, ref):
    assert new.num_results == ref.num_results
    assert new.total_edges == ref.total_edges
    assert new.completed == ref.completed
    new_by_tti = new.by_tti()
    ref_by_tti = ref.by_tti()
    assert new_by_tti.keys() == ref_by_tti.keys()
    for tti, core in new_by_tti.items():
        assert core.edge_set() == ref_by_tti[tti].edge_set(), tti


def random_windows(rng, tmax, count):
    windows = []
    for _ in range(count):
        a, b = rng.randint(1, tmax), rng.randint(1, tmax)
        windows.append((min(a, b), max(a, b)))
    return windows


class TestOracleIdentity:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_full_span_identical(self, seed, k):
        graph = uniform_random_temporal(14, 110, tmax=18, seed=seed)
        assert_result_identical(
            enumerate_temporal_kcores(graph, k),
            enumerate_temporal_kcores_ref(graph, k),
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_windows_identical(self, seed):
        graph = uniform_random_temporal(13, 140, tmax=24, seed=seed)
        rng = random.Random(1000 + seed)
        for ts, te in random_windows(rng, graph.tmax, 8):
            for k in (2, 3):
                assert_result_identical(
                    enumerate_temporal_kcores(graph, k, ts, te),
                    enumerate_temporal_kcores_ref(graph, k, ts, te),
                )

    @pytest.mark.parametrize("seed", range(3))
    def test_index_cut_windows_identical(self, seed):
        """The serving shape: one full-span skyline, many sub-ranges."""
        graph = uniform_random_temporal(12, 120, tmax=20, seed=seed)
        index = CoreIndex(graph, 2)
        rng = random.Random(2000 + seed)
        for ts, te in random_windows(rng, graph.tmax, 10):
            assert_result_identical(
                index.query(ts, te),
                enumerate_temporal_kcores_ref(
                    graph, 2, ts, te, skyline=index.ecs
                ),
            )

    def test_empty_ranges(self):
        graph = uniform_random_temporal(10, 60, tmax=30, seed=7)
        # k too large for any core, and a window too narrow for one.
        for k, ts, te in [(9, 1, graph.tmax), (2, 1, 1), (3, 5, 6)]:
            new = enumerate_temporal_kcores(graph, k, ts, te)
            ref = enumerate_temporal_kcores_ref(graph, k, ts, te)
            assert_result_identical(new, ref)

    def test_parallel_and_duplicate_edges(self):
        from repro.graph.temporal_graph import TemporalGraph

        graph = TemporalGraph(
            [("a", "b", 1), ("a", "b", 1), ("a", "b", 2), ("b", "c", 2),
             ("a", "c", 2), ("b", "c", 3), ("a", "c", 1)]
        )
        assert_result_identical(
            enumerate_temporal_kcores(graph, 2),
            enumerate_temporal_kcores_ref(graph, 2),
        )

    def test_streaming_counters_identical(self):
        graph = uniform_random_temporal(14, 150, tmax=16, seed=3)
        new = enumerate_temporal_kcores(graph, 2, collect=False)
        ref = enumerate_temporal_kcores_ref(graph, 2, collect=False)
        assert new.cores is None and ref.cores is None
        assert (new.num_results, new.total_edges) == (
            ref.num_results, ref.total_edges
        )

    def test_callback_protocol_identical(self):
        graph = uniform_random_temporal(12, 100, tmax=14, seed=5)
        new_seen, ref_seen = [], []
        enumerate_temporal_kcores(
            graph, 2, collect=False,
            on_result=lambda ts, te, edges: new_seen.append(
                (ts, te, frozenset(edges))),
        )
        enumerate_temporal_kcores_ref(
            graph, 2, collect=False,
            on_result=lambda ts, te, edges: ref_seen.append(
                (ts, te, frozenset(edges))),
        )
        assert new_seen == ref_seen  # same cores, same emission order


class TestDeadline:
    def test_immediate_deadline_aborts_cleanly(self):
        graph = uniform_random_temporal(12, 100, tmax=14, seed=0)
        result = enumerate_temporal_kcores(graph, 2, deadline=Deadline(0.0))
        assert not result.completed
        assert result.num_results == 0

    @pytest.mark.parametrize("polls", [1, 2, 5])
    def test_mid_walk_abort_is_a_prefix_of_the_full_answer(self, polls):
        """Cancellation mid-walk keeps whatever start times finished."""
        graph = uniform_random_temporal(13, 150, tmax=18, seed=11)
        full = enumerate_temporal_kcores(graph, 2)
        partial = enumerate_temporal_kcores(
            graph, 2, deadline=ExpiresAfter(polls)
        )
        assert not partial.completed
        assert partial.num_results < full.num_results
        # Every partial core is a genuine core of the full answer, and
        # the abort respects start-time boundaries: the partial TTIs are
        # exactly the full answer's TTIs up to the last finished start.
        full_by_tti = full.by_tti()
        for tti, core in partial.by_tti().items():
            assert core.edge_set() == full_by_tti[tti].edge_set()
        if partial.num_results:
            last_started = max(ts for ts, _te in partial.by_tti())
            expected = {
                tti for tti in full_by_tti if tti[0] <= last_started
            }
            assert set(partial.by_tti()) == expected

    def test_deadline_mid_walk_with_sink_marks_incomplete(self):
        from repro.serve.sinks import CountSink

        graph = uniform_random_temporal(13, 150, tmax=18, seed=11)
        sink = CountSink()
        result = enumerate_temporal_kcores(
            graph, 2, sink=sink, deadline=ExpiresAfter(1)
        )
        assert not result.completed
        assert not sink.completed
