"""The daemon fault-injection campaign.

Every fault a serving process meets in production, injected for real
against a daemon subprocess: clients that vanish mid-stream, clients
that read too slowly, garbage on the wire, a SIGKILL'd pool worker in
the middle of a streamed response (the PR 6 ``_fault_path`` hook), and
a SIGTERM drain that must finish in-flight work and land the store
snapshot.  After every fault the daemon must still answer, and its
outcome counters must reconcile:
``accepted == completed + cancelled + failed``.
"""

from __future__ import annotations

import json
import shutil
import socket
import struct
import time

import pytest

from repro.core.index import CoreIndex
from repro.graph.generators import uniform_random_temporal
from repro.serve.client import DaemonClient
from repro.store.index_store import IndexStore
from tests.serve.daemon.conftest import (
    STORE_KEY,
    metric_total,
    scrape_metrics,
)

def reconciled(counters: dict) -> bool:
    return counters["accepted"] == (
        counters["completed"] + counters["cancelled"] + counters["failed"]
    )


def wait_for(predicate, *, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


@pytest.fixture(scope="module")
def heavy_store(tmp_path_factory):
    """A denser store whose full-span stream is big and slow enough
    that a disconnect reliably lands mid-stream."""
    root = tmp_path_factory.mktemp("daemon-heavy") / "store"
    graph = uniform_random_temporal(40, 2500, tmax=60, seed=5)
    store = IndexStore(root)
    store.save_graph(graph, name=STORE_KEY)
    store.save_index(CoreIndex(graph, 2), name=STORE_KEY)
    return root, graph


class TestClientDisconnect:
    def test_mid_stream_disconnect_cancels_promptly(
        self, start_daemon, heavy_store
    ):
        root, graph = heavy_store
        handle = start_daemon("--outbox-depth", "4", store=root)
        sock = socket.create_connection(("127.0.0.1", handle.port), timeout=30)
        reader = sock.makefile("rb")
        sock.sendall(
            json.dumps(
                {"op": "query", "id": 1, "k": 2, "ts": 1, "te": graph.tmax}
            ).encode()
            + b"\n"
        )
        # Confirm the stream started, then vanish abruptly: SO_LINGER 0
        # turns close() into a RST, the strongest form of "client gone".
        # (Close the makefile too — it holds a reference that would
        # otherwise keep the underlying fd open.)
        first = json.loads(reader.readline())
        assert "core" in first
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        reader.close()
        sock.close()

        with DaemonClient("127.0.0.1", handle.port) as client:
            wait_for(
                lambda: client.stats()["daemon"]["cancelled"] >= 1
            )
            counters = client.stats()["daemon"]
            assert counters["cancelled"] == 1
            assert counters["completed"] == 0
            assert reconciled(counters)
            # The daemon is unharmed: the same query now completes.
            _cores, done = client.query(k=2, ts=1, te=10)
            assert done["completed"] is True

    def test_disconnect_while_queued_cancels_without_execution(
        self, start_daemon, heavy_store
    ):
        root, graph = heavy_store
        handle = start_daemon(store=root)
        # First connection occupies the execution lane with a heavy
        # query; the second queues one and disconnects before it runs.
        busy = socket.create_connection(("127.0.0.1", handle.port), timeout=30)
        busy.sendall(
            json.dumps(
                {"op": "query", "id": 1, "k": 2, "ts": 1, "te": graph.tmax}
            ).encode()
            + b"\n"
        )
        quitter = socket.create_connection(
            ("127.0.0.1", handle.port), timeout=30
        )
        quitter.sendall(
            json.dumps(
                {"op": "query", "id": 2, "k": 2, "ts": 1, "te": graph.tmax}
            ).encode()
            + b"\n"
        )
        with DaemonClient("127.0.0.1", handle.port) as client:
            wait_for(lambda: client.stats()["daemon"]["accepted"] >= 2)
            quitter.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            quitter.close()
            busy.close()
            wait_for(
                lambda: reconciled(client.stats()["daemon"])
                and client.stats()["daemon"]["accepted"] == 2
            )
            assert client.stats()["daemon"]["cancelled"] >= 1

    def test_drain_completes_after_disconnect_while_queued(
        self, start_daemon, heavy_store
    ):
        """Regression: a connection reset while its job was still queued
        used to leak its handler (nothing woke the sender, so close()
        awaited it forever), and the next SIGTERM drain then hung at
        that connection instead of exiting 0."""
        root, graph = heavy_store
        handle = start_daemon(store=root)
        busy = socket.create_connection(("127.0.0.1", handle.port), timeout=30)
        busy.sendall(
            json.dumps(
                {"op": "query", "id": 1, "k": 2, "ts": 1, "te": graph.tmax}
            ).encode()
            + b"\n"
        )
        quitter = socket.create_connection(
            ("127.0.0.1", handle.port), timeout=30
        )
        quitter.sendall(
            json.dumps(
                {"op": "query", "id": 2, "k": 2, "ts": 1, "te": graph.tmax}
            ).encode()
            + b"\n"
        )
        with DaemonClient("127.0.0.1", handle.port) as client:
            wait_for(lambda: client.stats()["daemon"]["accepted"] >= 2)
            quitter.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            quitter.close()
            busy.close()
            wait_for(
                lambda: reconciled(client.stats()["daemon"])
                and client.stats()["daemon"]["accepted"] == 2
            )
        handle.sigterm()
        assert handle.wait(timeout=30) == 0


class TestSlowReader:
    def test_slow_reader_backpressure_stays_correct(
        self, start_daemon, daemon_store
    ):
        _root, graph = daemon_store
        handle = start_daemon("--outbox-depth", "4")
        index = CoreIndex(graph, 2)
        want = index.query(1, graph.tmax, collect=False)
        with DaemonClient("127.0.0.1", handle.port) as client:
            # Stall between reads so the bounded outbox (4 frames) keeps
            # filling and the producer keeps blocking; every frame must
            # still arrive, in order, with nothing dropped.
            rid = 1
            client.send(
                {"op": "query", "id": rid, "k": 2, "ts": 1, "te": graph.tmax}
            )
            cores = 0
            while True:
                frame = client.recv()
                assert frame["id"] == rid
                if "core" in frame:
                    cores += 1
                    if cores % 50 == 0:
                        time.sleep(0.002)
                    continue
                assert frame["ok"] is True
                assert frame["completed"] is True
                assert frame["num_results"] == cores == want.num_results
                assert frame["total_edges"] == want.total_edges
                break
            counters = client.stats()["daemon"]
            assert counters["completed"] == 1
            assert reconciled(counters)


class TestDeadlineUnderBackpressure:
    def test_expired_deadline_frees_lane_despite_stalled_reader(
        self, start_daemon, heavy_store
    ):
        """Regression: a slow-but-alive reader used to pin the execution
        lane indefinitely — the bridge sink blocked on the full outbox
        and the deadline was only polled between sink writes.  Now the
        put waits in bounded slices, the walk aborts once the request's
        timeout passes, and after ``--terminal-grace`` the daemon hangs
        up on a client that will not even take the terminal frame, so
        other connections' admitted work proceeds."""
        root, graph = heavy_store
        handle = start_daemon(
            "--outbox-depth", "4", "--terminal-grace", "1", store=root
        )
        # A tiny receive buffer (set before connect) keeps the TCP
        # window small, so the daemon-side buffers fill fast and the
        # walk really blocks on the outbox.
        stalled = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        stalled.settimeout(30)
        stalled.connect(("127.0.0.1", handle.port))
        reader = stalled.makefile("rb")
        stalled.sendall(
            json.dumps(
                {
                    "op": "query",
                    "id": 1,
                    "k": 2,
                    "ts": 1,
                    "te": graph.tmax,
                    "timeout": 0.3,
                }
            ).encode()
            + b"\n"
        )
        # Confirm the stream started, then stop reading entirely.
        first = json.loads(reader.readline())
        assert "core" in first

        # A second client's query must complete while the first one is
        # still stalled: the lane frees at timeout + grace (~1.3s),
        # far within this client's 30s socket timeout.
        with DaemonClient("127.0.0.1", handle.port) as client:
            _cores, done = client.query(k=2, ts=1, te=10)
            assert done["completed"] is True
            wait_for(
                lambda: reconciled(client.stats()["daemon"])
                and client.stats()["daemon"]["accepted"] == 2
            )
            counters = client.stats()["daemon"]
            # Both requests ran to a terminal frame (the stalled one as
            # a deadline abort whose delivery was then abandoned).
            assert counters["completed"] == 2
            assert counters["cancelled"] == 0
        # The stalled client was hung up on at grace: it may still read
        # early buffered core frames, but never a terminal frame.
        try:
            for line in reader:
                if not line.endswith(b"\n"):
                    break  # truncated by the reset
                assert b'"done"' not in line
        except OSError:
            pass
        reader.close()
        stalled.close()


class TestWireGarbage:
    def test_malformed_lines_are_clean_errors(self, start_daemon):
        handle = start_daemon()
        sock = socket.create_connection(("127.0.0.1", handle.port), timeout=30)
        reader = sock.makefile("rb")

        sock.sendall(b"this is not json\n")
        frame = json.loads(reader.readline())
        assert frame["ok"] is False and frame["error"]["code"] == "bad-json"

        sock.sendall(b"[1, 2, 3]\n")
        frame = json.loads(reader.readline())
        assert frame["ok"] is False and frame["error"]["code"] == "bad-request"

        sock.sendall(b'{"op": "frobnicate", "id": 9}\n')
        frame = json.loads(reader.readline())
        assert frame["ok"] is False and frame["error"]["code"] == "unknown-op"

        sock.sendall(b'{"op": "query", "id": 10}\n')  # missing k/ts/te
        frame = json.loads(reader.readline())
        assert frame["ok"] is False and frame["error"]["code"] == "bad-request"

        # The connection survives all of it.
        sock.sendall(b'{"op": "ping", "id": 11}\n')
        frame = json.loads(reader.readline())
        assert frame["ok"] is True and frame["pong"] is True
        sock.close()

    def test_oversized_line_is_rejected_and_connection_closed(
        self, start_daemon
    ):
        handle = start_daemon()
        sock = socket.create_connection(("127.0.0.1", handle.port), timeout=30)
        reader = sock.makefile("rb")
        huge = b'{"op": "query", "pad": "' + b"x" * (1 << 20) + b'"}\n'
        sock.sendall(huge)
        frame = json.loads(reader.readline())
        assert frame["ok"] is False and frame["error"]["code"] == "too-large"
        assert reader.readline() == b""  # daemon hung up
        sock.close()
        # And the daemon is still serving.
        with DaemonClient("127.0.0.1", handle.port) as client:
            assert client.ping()
            counters = client.stats()["daemon"]
            assert counters["rejected"].get("protocol", 0) >= 1
            assert reconciled(counters)


class TestWorkerDeath:
    def test_sigkilled_pool_worker_during_streamed_response(
        self, start_daemon, daemon_store, tmp_path
    ):
        _root, graph = daemon_store
        fault = tmp_path / "kill-one-worker"
        fault.touch()
        handle = start_daemon(
            "--processes",
            "2",
            "--pool-min-windows",
            "0",
            env={"REPRO_POOL_FAULT_PATH": str(fault)},
        )
        index = CoreIndex(graph, 2)
        want = index.query(1, graph.tmax, collect=True)
        with DaemonClient("127.0.0.1", handle.port) as client:
            cores, done = client.query(k=2, ts=1, te=graph.tmax)
        # The fault fired exactly once, the pool recovered, and the
        # streamed answer is complete and correct regardless.
        assert not fault.exists()
        assert done["completed"] is True
        assert done["num_results"] == want.num_results == len(cores)
        assert done["total_edges"] == want.total_edges
        got = {(tuple(c["tti"]), frozenset(c["edge_ids"])) for c in cores}
        assert got == {
            (c.tti, frozenset(c.edge_ids)) for c in want.cores
        }
        text = scrape_metrics(handle.port)
        assert metric_total(text, "repro_pool_broken_restarts_total") >= 1
        assert metric_total(text, "repro_daemon_completed_total") == 1


class TestSigtermDrain:
    def test_drain_finishes_inflight_and_snapshots_store(
        self, start_daemon, daemon_store, tmp_path
    ):
        root, graph = daemon_store
        drain_root = tmp_path / "store"
        shutil.copytree(root, drain_root)
        store = IndexStore(drain_root)
        assert 4 not in store.stored_ks(STORE_KEY)

        handle = start_daemon(store=drain_root)
        index = CoreIndex(graph, 2)
        ranges = [(1, graph.tmax), (2, graph.tmax // 2), (5, graph.tmax - 3)]
        want = index.query_batch(ranges)

        sock = socket.create_connection(("127.0.0.1", handle.port), timeout=30)
        reader = sock.makefile("rb")
        # Pipeline: a k=4 query (index not in the store — the registry
        # builds it, and the drain snapshot must land it) plus three
        # batches; SIGTERM arrives while they are queued/in-flight.
        sock.sendall(
            json.dumps(
                {"op": "query", "id": 0, "k": 4, "ts": 1, "te": graph.tmax,
                 "edge_ids": False}
            ).encode()
            + b"\n"
        )
        for i, (ts, te) in enumerate(ranges, start=1):
            sock.sendall(
                json.dumps(
                    {"op": "batch", "id": i, "k": 2, "ranges": [[ts, te]]}
                ).encode()
                + b"\n"
            )
        with DaemonClient("127.0.0.1", handle.port) as control:
            wait_for(lambda: control.stats()["daemon"]["accepted"] == 4)
        handle.sigterm()

        # Every admitted request still completes, correctly.
        done = {}
        while len(done) < 4:
            frame = json.loads(reader.readline())
            if "core" in frame:
                continue
            assert frame["ok"] is True, frame
            done[frame["id"]] = frame
        assert done[0]["completed"] is True
        for i, result in enumerate(want, start=1):
            answer = done[i]["answers"][0]
            assert answer["num_results"] == result.num_results
            assert answer["total_edges"] == result.total_edges
            assert answer["completed"] is True
        sock.close()

        assert handle.wait(timeout=30) == 0
        # The drain snapshot landed the freshly built k=4 index.
        assert 4 in IndexStore(drain_root).stored_ks(STORE_KEY)
