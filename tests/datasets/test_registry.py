"""Dataset registry: recipes, aliases, shape properties."""

from __future__ import annotations

import pytest

from repro.datasets.registry import (
    ALL_DATASETS,
    FIG4_DATASETS,
    PAPER_STATS,
    RECIPES,
    VARIED_DATASETS,
    canonical_name,
    load_dataset,
    paper_stats,
    recipe,
)
from repro.datasets.stats import compute_stats
from repro.errors import DatasetError
from repro.graph.validation import check_graph_invariants


class TestRegistry:
    def test_fourteen_datasets(self):
        assert len(ALL_DATASETS) == 14
        assert set(PAPER_STATS) == set(RECIPES)

    def test_subsets_are_registered(self):
        assert set(FIG4_DATASETS) <= set(ALL_DATASETS)
        assert set(VARIED_DATASETS) <= set(ALL_DATASETS)

    def test_aliases_resolve(self):
        assert canonical_name("MF") == "MO"
        assert canonical_name("ER") == "EN"
        assert canonical_name("cm") == "CM"

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            canonical_name("XX")

    def test_load_is_cached(self):
        assert load_dataset("FB") is load_dataset("FB")

    def test_recipe_and_paper_stats_accessors(self):
        assert recipe("CM").name == "CM"
        assert paper_stats("CM").name == "CollegeMsg"

    @pytest.mark.parametrize("name", ["FB", "CM", "PL"])
    def test_generated_graphs_valid(self, name):
        check_graph_invariants(load_dataset(name))


class TestShapeProperties:
    """The scaled recipes preserve the paper's dataset shape."""

    def test_edge_counts_ascend_like_table3(self):
        sizes = [load_dataset(name).num_edges for name in ALL_DATASETS]
        # Allow local wobble but demand the global trend: the last
        # dataset is the largest and the first is the smallest.
        assert sizes[0] == min(sizes)
        assert sizes[-1] == max(sizes)

    def test_few_timestamp_datasets(self):
        """WK/PL/YT have dramatically fewer timestamps per edge."""
        for name in ("WK", "PL", "YT"):
            graph = load_dataset(name)
            assert graph.tmax / graph.num_edges < 0.02, name
        for name in ("FB", "CM", "WT"):
            graph = load_dataset(name)
            assert graph.tmax / graph.num_edges > 0.2, name

    @pytest.mark.parametrize("name", list(VARIED_DATASETS))
    def test_varied_datasets_have_usable_kmax(self, name):
        """k sweeps (10-40% kmax) need at least 4 distinct k values."""
        stats = compute_stats(load_dataset(name))
        ks = {max(2, round(stats.kmax * f)) for f in (0.1, 0.2, 0.3, 0.4)}
        assert len(ks) >= 3, (name, stats.kmax)

    @pytest.mark.parametrize("name", ["CM", "EM", "WT", "PL"])
    def test_every_dataset_contains_cores(self, name):
        """Default workloads must find non-empty temporal k-cores."""
        from repro.bench.workloads import build_workload

        graph = load_dataset(name)
        workload = build_workload(graph, name, num_queries=2, seed=1)
        assert workload.num_queries == 2


class TestAllRecipesFidelity:
    """Every registry dataset generates, validates and is reproducible."""

    import pytest as _pytest

    @_pytest.mark.parametrize("name", list(ALL_DATASETS))
    def test_generation_matches_recipe(self, name):
        graph = load_dataset(name)
        config = recipe(name)
        assert graph.num_edges == config.total_edges()
        assert graph.tmax <= config.tmax
        assert graph.num_vertices <= config.num_vertices

    @_pytest.mark.parametrize("name", list(ALL_DATASETS))
    def test_regeneration_is_deterministic(self, name):
        from repro.graph.generators import generate_bursty

        again = generate_bursty(recipe(name))
        assert again.edges == load_dataset(name).edges

    @_pytest.mark.parametrize("name", list(ALL_DATASETS))
    def test_kmax_supports_default_k(self, name):
        stats = compute_stats(load_dataset(name))
        assert stats.kmax >= 4, f"{name}: kmax too small for the sweeps"
