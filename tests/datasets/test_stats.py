"""Dataset statistics and the paper's fractional parameter helpers."""

from __future__ import annotations

from repro.datasets.paper_example import paper_example_graph
from repro.datasets.stats import compute_stats, default_k, default_range_width


class TestComputeStats:
    def test_paper_example_stats(self):
        stats = compute_stats(paper_example_graph())
        assert stats.num_vertices == 9
        assert stats.num_edges == 14
        assert stats.tmax == 7
        assert stats.kmax == 2
        assert stats.as_row() == (9, 14, 7, 2)

    def test_avg_degree(self):
        stats = compute_stats(paper_example_graph())
        assert stats.avg_degree == 2 * 14 / 9


class TestDefaults:
    def test_default_k_fractions(self):
        stats = compute_stats(paper_example_graph())
        assert default_k(stats, 0.3) == 2  # clamped to the minimum of 2
        assert default_k(stats, 1.0) == 2

    def test_default_k_rounds(self):
        class FakeStats:
            kmax = 21

        assert default_k(FakeStats, 0.3) == 6
        assert default_k(FakeStats, 0.1) == 2

    def test_default_range_width(self):
        stats = compute_stats(paper_example_graph())
        assert default_range_width(stats, 0.1) == 1
        assert default_range_width(stats, 0.5) == 4
