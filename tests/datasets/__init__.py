"""Test package."""
