"""Command-line interface tests (in-process via ``main(argv)``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.io import dump_edge_list


@pytest.fixture()
def graph_file(tmp_path, paper_graph):
    path = tmp_path / "example.txt"
    dump_edge_list(paper_graph, path, raw_timestamps=False)
    return str(path)


class TestQuery:
    def test_text_output(self, graph_file, capsys):
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--range", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "2 temporal 2-core(s)" in out
        assert "TTI [1, 4]" in out
        assert "TTI [2, 3]" in out

    def test_json_output(self, graph_file, capsys):
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--range", "1", "4", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_results"] == 2
        assert {tuple(c["tti"]) for c in payload["cores"]} == {(1, 4), (2, 3)}

    def test_streaming_mode(self, graph_file, capsys):
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--streaming", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_results"] == 13
        assert "cores" not in payload

    def test_engine_selection(self, graph_file, capsys):
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--engine", "otcd", "--range", "1", "4"]) == 0
        assert "2 temporal 2-core(s)" in capsys.readouterr().out

    def test_full_span_default(self, graph_file, capsys):
        assert main(["query", "--input", graph_file, "-k", "2"]) == 0
        assert "13 temporal 2-core(s)" in capsys.readouterr().out

    def test_missing_source_errors(self, capsys):
        assert main(["query", "-k", "2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_output_ndjson_streams_one_line_per_core(self, graph_file, capsys):
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--range", "1", "4", "--output", "ndjson"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        assert {tuple(line["tti"]) for line in lines} == {(1, 4), (2, 3)}
        for line in lines:
            assert line["num_edges"] == len(line["edge_ids"])

    def test_output_count_prints_counters_only(self, graph_file, capsys):
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--output", "count"]) == 0
        fields = capsys.readouterr().out.split()
        assert int(fields[0]) == 13
        assert int(fields[1]) > 13  # |R| counts edges across cores

    def test_output_ndjson_from_store(self, graph_file, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--range", "1", "4", "--store", store_dir,
                     "--output", "ndjson"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        assert {tuple(line["tti"]) for line in lines} == {(1, 4), (2, 3)}


class TestBatch:
    @pytest.fixture()
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "# mixed-k batch over the paper example\n"
            "2 1 4\n"
            "2 2 4\n"
            "2 1 4\n"
            "3 1 7\n",
            encoding="utf-8",
        )
        return str(path)

    def test_text_answers_and_plan_summary(self, graph_file, query_file, capsys):
        assert main(["batch", "--input", graph_file,
                     "--queries", query_file]) == 0
        out = capsys.readouterr().out
        assert "k=2 [1, 4]: 2 core(s)" in out
        assert "plan: 4 queries" in out
        assert "1 identical deduped" in out

    def test_json_answers_match_single_queries(self, graph_file, query_file, capsys):
        assert main(["batch", "--input", graph_file, "--queries", query_file,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["requests"] == 4
        answers = payload["answers"]
        assert [a["time_range"] for a in answers] == [
            [1, 4], [2, 4], [1, 4], [1, 7]]
        # The deduped repeat answers identically.
        assert answers[0] == answers[2]
        assert answers[0]["num_results"] == 2

    def test_no_merge_still_answers_identically(self, graph_file, query_file, capsys):
        assert main(["batch", "--input", graph_file, "--queries", query_file,
                     "--no-merge", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["merged"] == 0
        assert [a["num_results"] for a in payload["answers"]] == [2, 1, 2, 0]

    def test_malformed_line_names_line_number(self, graph_file, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("2 1 4\nnot a query\n", encoding="utf-8")
        assert main(["batch", "--input", graph_file,
                     "--queries", str(path)]) == 2
        assert ":2:" in capsys.readouterr().err

    def test_empty_query_file_errors(self, graph_file, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n", encoding="utf-8")
        assert main(["batch", "--input", graph_file,
                     "--queries", str(path)]) == 2
        assert "no queries" in capsys.readouterr().err


class TestObservabilitySurfaces:
    @pytest.fixture()
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("2 1 4\n2 1 4\n2 2 6\n", encoding="utf-8")
        return str(path)

    def test_query_metrics_out_writes_registry_json(
        self, graph_file, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--range", "1", "4", "--metrics-out", str(metrics)]) == 0
        snap = json.loads(metrics.read_text(encoding="utf-8"))
        assert snap["repro_plan_requests_total"]["kind"] == "counter"
        assert "repro_execute_seconds" in snap

    def test_query_metrics_out_respects_streaming_outputs(
        self, graph_file, tmp_path, capsys
    ):
        # The count/ndjson paths return early; metrics must still land.
        metrics = tmp_path / "metrics.json"
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--output", "count", "--metrics-out", str(metrics)]) == 0
        assert "repro_plan_requests_total" in json.loads(
            metrics.read_text(encoding="utf-8")
        )

    def test_batch_metrics_and_trace_out(
        self, graph_file, query_file, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.ndjson"
        assert main(["batch", "--input", graph_file, "--queries", query_file,
                     "--metrics-out", str(metrics),
                     "--trace-out", str(trace)]) == 0
        snap = json.loads(metrics.read_text(encoding="utf-8"))
        assert "repro_plan_deduped_total" in snap
        events = [
            json.loads(line)
            for line in trace.read_text(encoding="utf-8").splitlines()
        ]
        names = {event["name"] for event in events}
        assert {"plan", "execute", "enumerate", "sink_flush"} <= names
        (plan,) = (e for e in events if e["name"] == "plan")
        assert plan["attrs"]["requests"] == 3

    def test_batch_metrics_out_unwritable_path_errors(
        self, graph_file, query_file, capsys
    ):
        assert main(["batch", "--input", graph_file, "--queries", query_file,
                     "--metrics-out", "/nonexistent-dir/m.json"]) == 2
        assert "cannot write metrics" in capsys.readouterr().err

    def test_stats_store_reports_keys_sizes_and_free_lock(
        self, graph_file, tmp_path, capsys
    ):
        store_dir = tmp_path / "store"
        assert main(["index", "--input", graph_file, "-k", "2,3",
                     "--save-store", str(store_dir), "--name", "demo"]) == 0
        capsys.readouterr()
        assert main(["stats", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "k=2" in out and "k=3" in out
        assert "lock: free" in out
        assert "stale lock takeover" in out

    def test_stats_store_json_reports_lock_liveness(
        self, graph_file, tmp_path, capsys
    ):
        store_dir = tmp_path / "store"
        assert main(["index", "--input", graph_file, "-k", "2",
                     "--save-store", str(store_dir), "--name", "demo"]) == 0
        capsys.readouterr()
        # Plant a lock file owned by a dead pid: liveness must read stale.
        lock = store_dir / "demo" / ".lock"
        lock.write_text(
            json.dumps({"pid": 2 ** 22 + 1, "acquired_at": 1.0}),
            encoding="utf-8",
        )
        assert main(["stats", "--store", str(store_dir),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["keys"]
        assert entry["key"] == "demo"
        assert entry["indexes"][0]["k"] == 2
        assert entry["lock"]["alive"] is False
        assert payload["stale_takeovers"] == 0
        # And the text rendering names the stale holder.
        assert main(["stats", "--store", str(store_dir)]) == 0
        assert "stale (holder dead)" in capsys.readouterr().out

    def test_stats_store_live_lock_reads_alive(
        self, graph_file, tmp_path, capsys
    ):
        import os

        store_dir = tmp_path / "store"
        assert main(["index", "--input", graph_file, "-k", "2",
                     "--save-store", str(store_dir), "--name", "demo"]) == 0
        capsys.readouterr()
        lock = store_dir / "demo" / ".lock"
        lock.write_text(
            json.dumps({"pid": os.getpid(), "acquired_at": 1.0}),
            encoding="utf-8",
        )
        assert main(["stats", "--store", str(store_dir),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["keys"][0]["lock"]["alive"] is True

    def test_stats_metrics_reports_live_registry(self, capsys):
        assert main(["stats", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "== counters ==" in out
        assert "repro_plan_requests_total" in out

    def test_stats_metrics_json_is_a_registry_snapshot(
        self, graph_file, capsys
    ):
        assert main(["stats", "--input", graph_file, "--metrics",
                     "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["repro_plan_requests_total"]["kind"] == "counter"

    def test_stats_store_needs_no_graph_source(self, tmp_path, capsys):
        store_dir = tmp_path / "empty-store"
        store_dir.mkdir()
        assert main(["stats", "--store", str(store_dir)]) == 0
        assert "0 graph(s)" in capsys.readouterr().out


class TestStats:
    def test_text(self, graph_file, capsys):
        assert main(["stats", "--input", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices: 9" in out.replace("  ", " ").replace("  ", " ") or "9" in out
        assert "kmax" in out

    def test_json(self, graph_file, capsys):
        assert main(["stats", "--input", graph_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["vertices"] == 9
        assert payload["kmax"] == 2

    def test_dataset_source(self, capsys):
        assert main(["stats", "--dataset", "FB", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["temporal_edges"] == 1200


class TestGenerateAndIndex:
    def test_generate(self, tmp_path, capsys):
        out_file = tmp_path / "fb.txt"
        assert main(["generate", "--dataset", "FB", "-o", str(out_file)]) == 0
        assert out_file.exists()
        assert "wrote 1200 edges" in capsys.readouterr().out

    def test_index_round_trip(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "skyline.ecs"
        assert main(["index", "--input", graph_file, "-k", "2",
                     "-o", str(out_file)]) == 0
        from repro.core.index import load_skyline

        skyline = load_skyline(out_file.read_text())
        assert skyline.size() == 18  # Table II window count


class TestIndexStoreCli:
    def test_index_requires_some_sink(self, graph_file, capsys):
        assert main(["index", "--input", graph_file, "-k", "2"]) == 2
        assert "save-store" in capsys.readouterr().err

    def test_index_save_store(self, graph_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["index", "--input", graph_file, "-k", "2",
                     "--save-store", str(store_dir), "--name", "paper"]) == 0
        assert "binary store" in capsys.readouterr().out
        from repro.store import IndexStore

        store = IndexStore(store_dir)
        assert store.keys() == ["paper"]
        assert store.stored_ks("paper") == [2]

    def test_warm_prebuilds_multiple_ks(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["warm", "--store", str(store_dir), "--dataset", "FB",
                     "-k", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "k=2" in out and "k=3" in out
        from repro.store import IndexStore

        assert IndexStore(store_dir).stored_ks("FB") == [2, 3]

    def test_index_comma_separated_ks(self, graph_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["index", "--input", graph_file, "-k", "2,3,5",
                     "--save-store", str(store_dir), "--name", "paper"]) == 0
        out = capsys.readouterr().out
        assert "k=2" in out and "k=3" in out and "k=5" in out
        from repro.store import IndexStore

        assert IndexStore(store_dir).stored_ks("paper") == [2, 3, 5]

    def test_index_text_dump_rejects_multiple_ks(self, graph_file, tmp_path, capsys):
        assert main(["index", "--input", graph_file, "-k", "2,3",
                     "-o", str(tmp_path / "dump.ecs")]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_warm_k_accepts_comma_lists_like_index(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["warm", "--store", str(store_dir), "--dataset", "FB",
                     "-k", "2,3"]) == 0
        from repro.store import IndexStore

        assert IndexStore(store_dir).stored_ks("FB") == [2, 3]

    def test_warm_ks_flag(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["warm", "--store", str(store_dir), "--dataset", "FB",
                     "--ks", "2,3"]) == 0
        out = capsys.readouterr().out
        assert "k=2" in out and "k=3" in out
        from repro.store import IndexStore

        assert IndexStore(store_dir).stored_ks("FB") == [2, 3]

    def test_warm_is_idempotent_and_reports_reuse(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["warm", "--store", str(store_dir), "--dataset", "FB",
                     "--ks", "2"]) == 0
        capsys.readouterr()
        assert main(["warm", "--store", str(store_dir), "--dataset", "FB",
                     "--ks", "2,3"]) == 0
        out = capsys.readouterr().out
        assert "already stored" in out and "k=3" in out

    def test_warm_reports_rebuild_not_reuse_for_corrupt_entry(
        self, tmp_path, capsys
    ):
        store_dir = tmp_path / "store"
        assert main(["warm", "--store", str(store_dir), "--dataset", "FB",
                     "--ks", "2"]) == 0
        capsys.readouterr()
        path = store_dir / "FB" / "k2.idx"
        path.write_bytes(path.read_bytes()[:-32])  # truncate: crc fails
        assert main(["warm", "--store", str(store_dir), "--dataset", "FB",
                     "--ks", "2"]) == 0
        out = capsys.readouterr().out
        assert "already stored" not in out  # it was rebuilt, say so
        assert "k=2" in out

    def test_warm_requires_some_k(self, tmp_path, capsys):
        assert main(["warm", "--store", str(tmp_path / "s"),
                     "--dataset", "FB"]) == 2
        assert "-k" in capsys.readouterr().err

    def test_query_from_store_without_input(self, graph_file, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["index", "--input", graph_file, "-k", "2",
                     "--save-store", str(store_dir)]) == 0
        capsys.readouterr()
        # No --input: the store's only graph is served straight from disk.
        assert main(["query", "--store", str(store_dir), "-k", "2",
                     "--range", "1", "4", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "store"
        assert payload["num_results"] == 2
        assert {tuple(c["tti"]) for c in payload["cores"]} == {(1, 4), (2, 3)}

    def test_query_with_store_builds_and_persists_on_miss(
        self, graph_file, tmp_path, capsys
    ):
        store_dir = tmp_path / "store"
        assert main(["query", "--input", graph_file, "-k", "2",
                     "--store", str(store_dir)]) == 0
        assert "13 temporal 2-core(s)" in capsys.readouterr().out
        from repro.store import IndexStore

        store = IndexStore(store_dir)
        assert len(store.keys()) == 1
        assert store.stored_ks(store.keys()[0]) == [2]

    def test_query_empty_store_without_input_errors(self, tmp_path, capsys):
        assert main(["query", "--store", str(tmp_path / "store"), "-k", "2"]) == 2
        assert "store-graph" in capsys.readouterr().err


class TestFsck:
    @pytest.fixture()
    def store_dir(self, tmp_path, paper_graph):
        from repro.core.index import CoreIndex
        from repro.store import IndexStore

        root = tmp_path / "store"
        store = IndexStore(root)
        store.save_graph(paper_graph, name="g")
        store.save_index(CoreIndex(paper_graph, 2), name="g")
        return root

    def test_clean_store_exits_zero(self, store_dir, capsys):
        assert main(["fsck", "--store", str(store_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_issues_exit_one_and_quarantine(self, store_dir, capsys):
        index = store_dir / "g" / "k2.idx"
        data = bytearray(index.read_bytes())
        data[-4] ^= 0xFF
        index.write_bytes(bytes(data))
        assert main(["fsck", "--store", str(store_dir)]) == 1
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert (store_dir / "g" / "k2.idx.corrupt").exists()

    def test_dry_run_reports_without_touching(self, store_dir, capsys):
        index = store_dir / "g" / "k2.idx"
        data = bytearray(index.read_bytes())
        data[-4] ^= 0xFF
        index.write_bytes(bytes(data))
        assert main(["fsck", "--store", str(store_dir), "--dry-run"]) == 1
        assert "would-quarantine" in capsys.readouterr().out
        assert index.exists()

    def test_json_format(self, store_dir, capsys):
        assert main(["fsck", "--store", str(store_dir),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True

    def test_missing_store_errors(self, tmp_path, capsys):
        assert main(["fsck", "--store", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err


class TestExperimentsPassthrough:
    def test_table1(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out
