"""The write-ahead edge log — durable ingestion for streaming appends.

Before this module, an acknowledged append lived only in
:class:`~repro.core.maintenance.StreamingCoreService`'s in-memory
pending list until the next snapshot rewrote the whole blob: a crash
between snapshots silently lost every acknowledged edge.  The WAL makes
the acknowledgement honest — an append is acknowledged only once its
record is fsynced to an append-only segment file, and recovery replays
the log past the last persisted snapshot.

On-disk layout (one ``wal/`` directory per store key)::

    wal/
        wal-0000000000000001.seg      # first LSN in the segment
        wal-0000000000000042.seg
        ...

Each segment starts with a 16-byte header (``REPROWAL`` magic, u32
version, u32 reserved) followed by crc32-framed records::

    u32 length   (payload bytes, little-endian)
    u32 crc32    (of the payload)
    payload      (compact JSON)

A record carries one *append call*: ``{"l": first_lsn, "e": [[u, v,
t], ...]}`` plus an optional ``"k"`` dedupe token — LSNs are assigned
per edge, so a batch of ``n`` edges occupies LSNs ``first .. first +
n - 1``.  Tokens make retried appends idempotent: the token →
``(first_lsn, count)`` map is rebuilt from the log on open, so dedupe
survives a crash (a client retrying an acknowledged-but-lost answer
gets byte-identical numbers back).

**Torn-tail discipline.**  Records are only ever appended; a crash can
therefore damage at most the tail of the *last* segment (rotation
seals — fsyncs — a segment before creating its successor).  Opening
scans the final segment and truncates it to the longest valid record
prefix; damage *before* the tail (bit rot, external interference) is
never skipped over — replay stops at it and raises so ``repro fsck``
can quarantine rather than silently resurrect records beyond a hole.

**Fsync discipline.**  ``sync="always"`` (default) makes every append
call durable before it returns, with *group commit*: concurrent
appenders ride one fsync — the first caller into the commit section
syncs everything written so far and everyone whose bytes that covered
returns without a second fsync.  ``sync="batch"`` defers durability to
:meth:`flush` (or rotation/close), for bulk loads that draw their own
durability boundary.  Batching many edges through one
:meth:`append_edges` call always costs a single fsync.

Crash points (:mod:`repro.testing.crashpoints`) are threaded through
append, rotation, open-truncation and trim, so the crash campaign can
kill a process at every instant and assert recovery.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import threading
import zlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import StoreCorruptionError, StoreError
from repro.obs.metrics import MetricsRegistry, get_registry, next_instance
from repro.testing.crashpoints import crashpoint, faultpoint

#: First eight bytes of every WAL segment.
WAL_MAGIC = b"REPROWAL"

#: Bumped on incompatible record-layout changes.
WAL_VERSION = 1

#: Segment header: magic + u32 version + u32 reserved.
_HEADER = struct.Struct("<8sII")

#: Record frame: u32 payload length + u32 payload crc32.
_FRAME = struct.Struct("<II")

#: Sanity ceiling while scanning — a declared length beyond this reads
#: as damage, not as a 4 GiB allocation.
MAX_RECORD_BYTES = 16 << 20

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 4 << 20

_SEG_PREFIX = "wal-"
_SEG_SUFFIX = ".seg"


def _segment_name(base_lsn: int) -> str:
    return f"{_SEG_PREFIX}{base_lsn:016d}{_SEG_SUFFIX}"


def _segment_base_lsn(name: str) -> int | None:
    if not (name.startswith(_SEG_PREFIX) and name.endswith(_SEG_SUFFIX)):
        return None
    digits = name[len(_SEG_PREFIX) : -len(_SEG_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def _fsync_dir(path: pathlib.Path) -> None:
    """Durably record directory-entry changes (create/rename/unlink)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class WalEvent:
    """One replayed edge event: its LSN and the raw append triple."""

    lsn: int
    u: object
    v: object
    t: int


@dataclass
class SegmentScan:
    """The outcome of scanning one segment file.

    ``valid_bytes`` is the offset up to which the segment is a clean
    record sequence (header included); ``error`` describes the first
    damage past it (``None`` for a fully valid segment).  ``records``
    holds the decoded record dicts of the valid prefix.
    """

    path: pathlib.Path
    records: list[dict]
    valid_bytes: int
    error: str | None


def scan_segment(path: str | os.PathLike[str]) -> SegmentScan:
    """Scan a segment, stopping at — never skipping — the first damage.

    Shared by WAL open (torn-tail truncation), replay and ``fsck``
    (quarantine decisions).  A file too short to hold the header scans
    as ``valid_bytes=0`` — the caller treats it as an empty segment
    whose header must be rewritten.
    """
    path = pathlib.Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        return SegmentScan(path, [], 0, "truncated segment header")
    magic, version, _ = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        return SegmentScan(path, [], 0, "bad segment magic")
    if version != WAL_VERSION:
        return SegmentScan(path, [], 0, f"unsupported WAL version {version}")
    records: list[dict] = []
    offset = _HEADER.size
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return SegmentScan(path, records, offset, "torn record frame")
        length, crc = _FRAME.unpack_from(data, offset)
        if length == 0 or length > MAX_RECORD_BYTES:
            return SegmentScan(
                path, records, offset, f"implausible record length {length}"
            )
        start = offset + _FRAME.size
        stop = start + length
        if stop > len(data):
            return SegmentScan(path, records, offset, "torn record payload")
        payload = data[start:stop]
        if zlib.crc32(payload) != crc:
            return SegmentScan(path, records, offset, "record checksum mismatch")
        try:
            record = json.loads(payload)
        except ValueError:
            return SegmentScan(path, records, offset, "unparseable record payload")
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("l"), int)
            or not isinstance(record.get("e"), list)
            or not record["e"]
        ):
            return SegmentScan(path, records, offset, "malformed record")
        records.append(record)
        offset = stop
    return SegmentScan(path, records, offset, None)


def _encode_record(first_lsn: int, edges: Sequence[tuple], token: str | None) -> bytes:
    record: dict = {"l": first_lsn, "e": [[u, v, t] for u, v, t in edges]}
    if token is not None:
        record["k"] = token
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """An append-only, crc32-framed, fsync-disciplined edge-event log.

    Parameters
    ----------
    directory:
        The ``wal/`` directory (created if missing).  One WAL per store
        key; see :meth:`IndexStore.wal
        <repro.store.index_store.IndexStore.wal>`.
    segment_bytes:
        Rotation threshold — a segment at or past this size is sealed
        (fsynced) and a successor created before the next record.
    sync:
        ``"always"`` — every append call is durable before returning
        (group-committed across threads); ``"batch"`` — durability is
        deferred to :meth:`flush` / rotation / :meth:`close`.

    Thread-safety: appends serialise on an internal lock; group commit
    lets concurrent appenders share fsyncs.  Replay/scan methods read
    files independently and take no lock.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: str = "always",
        metrics: "MetricsRegistry | None" = None,
    ):
        if sync not in ("always", "batch"):
            raise StoreError(f"sync must be 'always' or 'batch', got {sync!r}")
        if segment_bytes < 256:
            raise StoreError(f"segment_bytes must be >= 256, got {segment_bytes}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.sync = sync
        self._write_lock = threading.Lock()
        self._commit_cond = threading.Condition()
        self._commit_inflight = False
        self._written_total = 0  # bytes appended over this WAL's lifetime
        self._synced_total = 0   # bytes known durable
        self._closed = False

        self.metrics = metrics if metrics is not None else get_registry()
        self.instance = next_instance("wal")
        m, inst = self.metrics, self.instance
        self._c_appends = m.counter(
            "repro_wal_appends_total", "Append calls acknowledged", ("wal",)
        ).labels(inst)
        self._c_records = m.counter(
            "repro_wal_records_total", "Edge events appended", ("wal",)
        ).labels(inst)
        self._c_bytes = m.counter(
            "repro_wal_bytes_total", "Record bytes written", ("wal",)
        ).labels(inst)
        self._c_fsyncs = m.counter(
            "repro_wal_fsyncs_total", "Segment fsyncs issued", ("wal",)
        ).labels(inst)
        self._c_rotations = m.counter(
            "repro_wal_rotations_total", "Segments sealed and rotated", ("wal",)
        ).labels(inst)
        self._c_replayed = m.counter(
            "repro_wal_replayed_records_total", "Edge events replayed", ("wal",)
        ).labels(inst)
        self._c_torn = m.counter(
            "repro_wal_torn_tail_truncations_total",
            "Torn tails truncated on open",
            ("wal",),
        ).labels(inst)
        self._c_deduped = m.counter(
            "repro_wal_deduped_appends_total",
            "Appends answered from the token map without writing",
            ("wal",),
        ).labels(inst)

        self._open_log()

    # ------------------------------------------------------------------
    # Opening and recovery
    # ------------------------------------------------------------------

    def _segments(self) -> list[pathlib.Path]:
        entries = []
        for entry in self.directory.iterdir():
            base = _segment_base_lsn(entry.name)
            if base is not None:
                entries.append((base, entry))
        entries.sort()
        return [entry for _, entry in entries]

    def _open_log(self) -> None:
        """Scan existing segments, truncate the torn tail, resume LSNs."""
        self.last_lsn = 0
        self.last_event_time: int | None = None
        self._tokens: dict[str, tuple[int, int]] = {}
        segments = self._segments()
        for position, segment in enumerate(segments):
            scan = scan_segment(segment)
            if scan.error is not None:
                if position != len(segments) - 1:
                    # Damage before the final segment cannot be a crash
                    # artefact (rotation seals segments); refusing to
                    # skip it is what keeps replay honest.
                    raise StoreCorruptionError(
                        f"{segment}: {scan.error} before the final segment; "
                        f"run `repro fsck` to quarantine and repair"
                    )
                # Torn tail of the live segment: the expected crash
                # artefact.  Truncate to the valid prefix (rewriting a
                # header over an unreadable one) and carry on.
                with open(segment, "r+b") as handle:
                    if scan.valid_bytes == 0:
                        handle.truncate(0)
                        handle.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, 0))
                    else:
                        handle.truncate(scan.valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                self._c_torn.inc()
                crashpoint("wal.open.post-truncate")
            self._absorb_scan(scan)
        if segments:
            self._segment_path = segments[-1]
            self._handle = open(self._segment_path, "ab")
        else:
            self._segment_path = self.directory / _segment_name(1)
            self._handle = open(self._segment_path, "ab")
            self._handle.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, 0))
            self._handle.flush()
            os.fsync(self._handle.fileno())
            _fsync_dir(self.directory)

    def _absorb_scan(self, scan: SegmentScan) -> None:
        for record in scan.records:
            first, edges = record["l"], record["e"]
            self.last_lsn = max(self.last_lsn, first + len(edges) - 1)
            self.last_event_time = edges[-1][2]
            token = record.get("k")
            if token is not None:
                self._tokens.setdefault(token, (first, len(edges)))

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, u, v, t: int, *, token: str | None = None) -> int:
        """Append one edge event; returns its LSN once durable.

        ``token`` (optional) makes the call idempotent: a token already
        in the log answers with the original LSN without writing.
        Durability follows the ``sync`` mode — with ``"always"`` the
        returned LSN is on disk.
        """
        first, _count = self.append_edges([(u, v, t)], token=token)
        return first

    def append_edges(
        self,
        edges: "Iterable[tuple]",
        *,
        token: str | None = None,
    ) -> tuple[int, int]:
        """Append a batch as one record; ``(first_lsn, count)``.

        The whole batch shares one frame and — in ``sync="always"`` —
        one fsync, which is the group-commit fast path for bulk
        ingestion.  A known ``token`` returns the original answer
        (first LSN and count) without writing anything: acknowledged
        appends replayed by a retrying client stay byte-stable.
        """
        batch = [(u, v, int(t)) for u, v, t in edges]
        if not batch:
            raise StoreError("append_edges needs at least one edge")
        if self._closed:
            raise StoreError("write-ahead log is closed")
        with self._write_lock:
            if token is not None and token in self._tokens:
                self._c_deduped.inc()
                return self._tokens[token]
            first = self.last_lsn + 1
            frame = _encode_record(first, batch, token)
            crashpoint("wal.append.pre-write")
            faultpoint("wal.append.write")
            self._maybe_rotate(len(frame))
            self._handle.write(frame)
            self._handle.flush()
            self._written_total += len(frame)
            written_mark = self._written_total
            self.last_lsn = first + len(batch) - 1
            self.last_event_time = batch[-1][2]
            if token is not None:
                self._tokens[token] = (first, len(batch))
            self._c_records.inc(len(batch))
            self._c_bytes.inc(len(frame))
        crashpoint("wal.append.post-write.pre-fsync")
        if self.sync == "always":
            self._commit(written_mark)
        crashpoint("wal.append.post-fsync")
        self._c_appends.inc()
        return first, len(batch)

    def _commit(self, target: int) -> None:
        """Group commit: make every byte up to ``target`` durable.

        The first thread to find no commit in flight becomes the
        leader, fsyncs the current write frontier (covering everything
        written so far, its own bytes included) and wakes the rest; a
        follower whose ``target`` the leader covered returns without
        touching the disk.
        """
        while True:
            with self._commit_cond:
                if self._synced_total >= target:
                    return
                if self._commit_inflight:
                    self._commit_cond.wait()
                    continue
                self._commit_inflight = True
            try:
                with self._write_lock:
                    handle = self._handle
                    frontier = self._written_total
                faultpoint("wal.append.fsync")
                os.fsync(handle.fileno())
                self._c_fsyncs.inc()
            finally:
                with self._commit_cond:
                    self._commit_inflight = False
                    self._commit_cond.notify_all()
            with self._commit_cond:
                self._synced_total = max(self._synced_total, frontier)
                if self._synced_total >= target:
                    return

    def flush(self) -> None:
        """Make everything appended so far durable (the batch-mode ack)."""
        with self._write_lock:
            target = self._written_total
        self._commit(target)

    def _maybe_rotate(self, incoming: int) -> None:
        """Seal the live segment and start a successor when full.

        Called under the write lock.  The old segment is fsynced
        *before* the new file exists, so a crash at any instant leaves
        either a sealed old segment (new one absent — recreated on the
        next open at the same base LSN) or both — never a successor
        whose predecessor might still be torn.
        """
        try:
            current = self._handle.tell()
        except (OSError, ValueError):  # pragma: no cover - defensive
            current = self.segment_bytes
        if current + incoming <= self.segment_bytes:
            return
        if current <= _HEADER.size:
            return  # never rotate an empty segment (oversized record)
        os.fsync(self._handle.fileno())
        self._c_fsyncs.inc()
        with self._commit_cond:
            self._synced_total = max(self._synced_total, self._written_total)
        self._handle.close()
        crashpoint("wal.rotate.post-seal")
        self._segment_path = self.directory / _segment_name(self.last_lsn + 1)
        self._handle = open(self._segment_path, "ab")
        self._handle.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, 0))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        crashpoint("wal.rotate.post-create")
        _fsync_dir(self.directory)
        self._c_rotations.inc()

    # ------------------------------------------------------------------
    # Replay, tokens, trim
    # ------------------------------------------------------------------

    def replay(self, *, after: int = 0) -> list[WalEvent]:
        """Every durable edge event with LSN > ``after``, in log order.

        Re-scans the segment files (the on-disk truth, not in-memory
        state), stopping at damage exactly like :func:`scan_segment` —
        records beyond a hole are never resurrected.
        """
        events: list[WalEvent] = []
        segments = self._segments()
        for position, segment in enumerate(segments):
            scan = scan_segment(segment)
            if scan.error is not None and position != len(segments) - 1:
                raise StoreCorruptionError(
                    f"{segment}: {scan.error} before the final segment; "
                    f"run `repro fsck`"
                )
            for record in scan.records:
                first = record["l"]
                for offset, (u, v, t) in enumerate(record["e"]):
                    lsn = first + offset
                    if lsn > after:
                        events.append(WalEvent(lsn, u, v, t))
        self._c_replayed.inc(len(events))
        return events

    def lookup_token(self, token: str) -> tuple[int, int] | None:
        """The ``(first_lsn, count)`` a token's append answered, if known."""
        return self._tokens.get(token)

    def trim(self, upto_lsn: int) -> int:
        """Drop sealed segments whose every record has LSN <= ``upto_lsn``.

        The checkpoint truncation that follows a durable snapshot: a
        segment is removable once the snapshot covers all of it.  The
        live segment is never removed.  Returns the number of segments
        dropped.
        """
        segments = self._segments()
        removed = 0
        for position, segment in enumerate(segments):
            if position == len(segments) - 1:
                break  # the live segment stays
            next_base = _segment_base_lsn(segments[position + 1].name)
            assert next_base is not None
            if next_base - 1 <= upto_lsn:
                os.unlink(segment)
                removed += 1
                crashpoint("wal.trim.mid")
        if removed:
            _fsync_dir(self.directory)
        return removed

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def pending_after(self, lsn: int) -> int:
        """How many durable events sit past ``lsn`` (cheap, in-memory)."""
        return max(0, self.last_lsn - lsn)

    def segment_paths(self) -> list[pathlib.Path]:
        """The live segment files, oldest first."""
        return self._segments()

    def stats(self) -> dict:
        return {
            "directory": str(self.directory),
            "last_lsn": self.last_lsn,
            "segments": len(self._segments()),
            "appends": int(self._c_appends.value),
            "records": int(self._c_records.value),
            "fsyncs": int(self._c_fsyncs.value),
            "rotations": int(self._c_rotations.value),
            "torn_tail_truncations": int(self._c_torn.value),
            "deduped_appends": int(self._c_deduped.value),
        }

    def close(self) -> None:
        """Flush, fsync and close the live segment (idempotent)."""
        if self._closed:
            return
        with self._write_lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.directory)!r}, last_lsn={self.last_lsn}, "
            f"sync={self.sync!r})"
        )
