"""Store scrubbing — the engine behind ``repro fsck --store DIR``.

The scrubber walks every graph directory of an :class:`IndexStore`,
verifying three layers of consistency:

* **Blobs** — every manifest-referenced graph and index blob must open
  and pass its crc32 (`:func:`repro.store.format.read_blob``);
* **Manifest ↔ files** — every referenced file must exist, every index
  blob's recorded fingerprint and ``k`` must agree with the manifest
  that points at it; stray temp files and unreferenced blobs are
  reported as orphans;
* **WAL segments** — every segment must scan cleanly
  (:func:`repro.store.wal.scan_segment`); a torn *tail* on the final
  segment is the expected crash artefact, damage earlier in the log is
  not.

The repair philosophy mirrors the loader's: **quarantine, never
delete**.  A corrupt file is renamed to ``<name>.corrupt`` (numbered
``.corrupt.1``, ``.corrupt.2``… if taken) so the bytes stay available
for post-mortems; a torn WAL tail is copied to ``<segment>.corrupt``
before the segment is truncated back to its valid prefix.  The only
thing ever *removed* is a manifest **entry** whose blob is gone or
quarantined — the entry is rebuildable from the graph, the bytes are
not.  With ``repair=False`` (the CLI's ``--dry-run``) everything is
reported and nothing on disk changes.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.errors import StoreError
from repro.obs.metrics import get_registry, next_instance
from repro.store import codec
from repro.store.format import read_blob
from repro.store.index_store import (
    GRAPH_FILE,
    LOCK_NAME,
    MANIFEST_NAME,
    WAL_DIR,
    IndexStore,
)
from repro.store.wal import scan_segment

#: Issue kinds, for stable grouping in reports and metrics.
KINDS = (
    "manifest",   # unreadable/unparseable manifest.json
    "graph",      # corrupt or missing graph blob
    "index",      # corrupt, missing or inconsistent index blob
    "wal",        # damaged WAL segment
    "orphan",     # file no manifest references (incl. leftover temps)
)


@dataclass(frozen=True)
class FsckIssue:
    """One problem the scrubber found (and possibly acted on).

    ``action`` is what actually happened: ``"reported"`` (nothing
    changed on disk), ``"quarantined"`` (renamed/copied to
    ``*.corrupt``), ``"repaired"`` (state made consistent again — a
    truncated WAL tail, a dropped-and-rebuildable manifest entry), or a
    ``"would-*"`` variant of the latter two in dry-run mode.
    """

    key: str
    kind: str
    path: str
    problem: str
    action: str


@dataclass
class FsckReport:
    """Everything one scrub pass saw."""

    root: str
    scanned_files: int = 0
    issues: list[FsckIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for issue in self.issues:
            out[issue.kind] = out.get(issue.kind, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "scanned_files": self.scanned_files,
            "clean": self.clean,
            "issues": [vars(issue) for issue in self.issues],
        }

    def render(self) -> str:
        """Human-readable summary, one line per issue."""
        lines = [f"fsck {self.root}: scanned {self.scanned_files} files"]
        for issue in self.issues:
            lines.append(
                f"  [{issue.kind}] {issue.path}: {issue.problem} -> {issue.action}"
            )
        lines.append(
            "clean" if self.clean else f"{len(self.issues)} issue(s) found"
        )
        return "\n".join(lines)


def _quarantine_name(path: pathlib.Path) -> pathlib.Path:
    """``<path>.corrupt``, numbered if a previous quarantine took it."""
    candidate = path.with_name(path.name + ".corrupt")
    serial = 0
    while candidate.exists():
        serial += 1
        candidate = path.with_name(f"{path.name}.corrupt.{serial}")
    return candidate


class _Scrubber:
    def __init__(self, root: pathlib.Path, *, repair: bool, verify: bool):
        self.root = root
        self.repair = repair
        self.verify = verify
        self.report = FsckReport(root=str(root))
        m = get_registry()
        inst = next_instance("fsck")
        self._c_scanned = m.counter(
            "repro_fsck_scanned_files_total", "Files examined by fsck", ("fsck",)
        ).labels(inst)
        self._c_issues = m.counter(
            "repro_fsck_issues_total", "Issues found by fsck, by kind", ("fsck", "kind")
        )
        self._inst = inst
        self._c_quarantined = m.counter(
            "repro_fsck_quarantined_total", "Files quarantined to *.corrupt", ("fsck",)
        ).labels(inst)
        self._c_repaired = m.counter(
            "repro_fsck_repaired_total", "Inconsistencies repaired", ("fsck",)
        ).labels(inst)

    # -- bookkeeping ----------------------------------------------------

    def _saw_file(self) -> None:
        self.report.scanned_files += 1
        self._c_scanned.inc()

    def _issue(self, key: str, kind: str, path: pathlib.Path, problem: str,
               action: str) -> None:
        self.report.issues.append(
            FsckIssue(key=key, kind=kind, path=str(path), problem=problem,
                      action=action)
        )
        self._c_issues.labels(self._inst, kind).inc()
        if action == "quarantined":
            self._c_quarantined.inc()
        elif action == "repaired":
            self._c_repaired.inc()

    def _quarantine(self, key: str, kind: str, path: pathlib.Path,
                    problem: str) -> None:
        if not self.repair:
            self._issue(key, kind, path, problem, "would-quarantine")
            return
        os.replace(path, _quarantine_name(path))
        self._issue(key, kind, path, problem, "quarantined")

    # -- the walk -------------------------------------------------------

    def run(self) -> FsckReport:
        if not self.root.is_dir():
            raise StoreError(f"{self.root}: not a store directory")
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir():
                self._scrub_key(entry)
        return self.report

    def _scrub_key(self, directory: pathlib.Path) -> None:
        key = directory.name
        manifest = self._scrub_manifest(key, directory)
        referenced: set[str] = {MANIFEST_NAME, LOCK_NAME}
        if manifest is not None:
            referenced |= self._scrub_blobs(key, directory, manifest)
        self._scrub_wal(key, directory / WAL_DIR)
        self._scrub_orphans(key, directory, referenced, manifest)

    def _scrub_manifest(self, key: str, directory: pathlib.Path) -> dict | None:
        path = directory / MANIFEST_NAME
        if not path.exists():
            if self._has_wal_segments(directory / WAL_DIR):
                return None  # WAL-only key: legitimate, nothing to check here
            if any(p.is_file() for p in directory.iterdir()):
                self._issue(key, "manifest", path, "missing manifest over files",
                            "reported")
            return None
        self._saw_file()
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(manifest, dict):
                raise ValueError("manifest is not an object")
        except (OSError, ValueError) as exc:
            self._quarantine(key, "manifest", path, f"unparseable manifest: {exc}")
            return None
        return manifest

    def _scrub_blobs(self, key: str, directory: pathlib.Path,
                     manifest: dict) -> set[str]:
        """Verify the graph and every index entry; returns referenced names."""
        referenced: set[str] = set()
        fingerprint = manifest.get("fingerprint")
        graph_file = manifest.get("graph_file", GRAPH_FILE)
        referenced.add(graph_file)
        graph_path = directory / graph_file
        if not graph_path.exists():
            self._issue(key, "graph", graph_path,
                        "manifest references a missing graph blob", "reported")
        else:
            self._saw_file()
            try:
                blob = read_blob(graph_path, verify=self.verify)
                if blob.kind != codec.GRAPH_KIND:
                    raise StoreError(f"expected graph blob, got {blob.kind!r}")
                if fingerprint is not None and blob.meta.get("fingerprint") != fingerprint:
                    raise StoreError("graph blob fingerprint disagrees with manifest")
            except (StoreError, OSError) as exc:
                # Not rebuildable: the graph *is* the source of truth.
                self._quarantine(key, "graph", graph_path, str(exc))

        entries = manifest.get("indexes", {})
        dropped: list[str] = []
        for k, entry in sorted(entries.items()):
            filename = entry.get("file", f"k{k}.idx")
            referenced.add(filename)
            path = directory / filename
            if not path.exists():
                self._drop_entry(key, directory, manifest, k, path,
                                 "manifest references a missing index blob",
                                 dropped)
                continue
            self._saw_file()
            try:
                blob = read_blob(path, verify=self.verify)
                if blob.kind != codec.INDEX_KIND:
                    raise StoreError(f"expected index blob, got {blob.kind!r}")
                if str(blob.meta.get("k")) != str(k):
                    raise StoreError(
                        f"blob holds k={blob.meta.get('k')}, manifest says k={k}"
                    )
                if fingerprint is not None and blob.meta.get("fingerprint") != fingerprint:
                    raise StoreError("index fingerprint disagrees with manifest")
            except (StoreError, OSError) as exc:
                if self.repair:
                    os.replace(path, _quarantine_name(path))
                    self._issue(key, "index", path, str(exc), "quarantined")
                    self._drop_entry(key, directory, manifest, k, path,
                                     "entry pointed at the quarantined blob",
                                     dropped)
                else:
                    self._issue(key, "index", path, str(exc), "would-quarantine")
        if dropped and self.repair:
            self._rewrite_manifest(directory, manifest)
        return referenced

    def _drop_entry(self, key: str, directory: pathlib.Path, manifest: dict,
                    k: str, path: pathlib.Path, problem: str,
                    dropped: list[str]) -> None:
        if self.repair:
            manifest.get("indexes", {}).pop(k, None)
            dropped.append(k)
            self._issue(key, "index", path, problem,
                        "repaired")
        else:
            self._issue(key, "index", path, problem, "would-repair")

    def _rewrite_manifest(self, directory: pathlib.Path, manifest: dict) -> None:
        # Same atomic discipline as IndexStore._write_manifest; fsck runs
        # offline so it writes directly rather than importing a store.
        final = directory / MANIFEST_NAME
        tmp = final.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)

    # -- WAL ------------------------------------------------------------

    @staticmethod
    def _has_wal_segments(wal_dir: pathlib.Path) -> bool:
        return wal_dir.is_dir() and any(
            p.name.startswith("wal-") and p.name.endswith(".seg")
            for p in wal_dir.iterdir()
        )

    def _scrub_wal(self, key: str, wal_dir: pathlib.Path) -> None:
        if not wal_dir.is_dir():
            return
        segments = sorted(
            p for p in wal_dir.iterdir()
            if p.name.startswith("wal-") and p.name.endswith(".seg")
        )
        for position, segment in enumerate(segments):
            self._saw_file()
            scan = scan_segment(segment)
            if scan.error is None:
                continue
            last = position == len(segments) - 1
            if last and scan.valid_bytes > 0:
                # The expected crash artefact: quarantine the torn tail
                # bytes, then truncate the segment to its valid prefix.
                if self.repair:
                    tail = segment.read_bytes()[scan.valid_bytes:]
                    _quarantine_name(segment).write_bytes(tail)
                    with open(segment, "r+b") as handle:
                        handle.truncate(scan.valid_bytes)
                        handle.flush()
                        os.fsync(handle.fileno())
                    self._issue(key, "wal", segment,
                                f"torn tail ({scan.error})", "repaired")
                else:
                    self._issue(key, "wal", segment,
                                f"torn tail ({scan.error})", "would-repair")
            else:
                # Mid-log damage (or an unreadable final segment): the
                # records beyond it must not be resurrected, so the
                # damaged segment and everything after it are
                # quarantined whole.
                self._quarantine(key, "wal", segment,
                                 f"damaged segment ({scan.error})")
                for orphan in segments[position + 1:]:
                    self._saw_file()
                    self._quarantine(
                        key, "wal", orphan,
                        "follows a damaged segment; records beyond damage "
                        "cannot be trusted",
                    )
                break

    # -- orphans --------------------------------------------------------

    def _scrub_orphans(self, key: str, directory: pathlib.Path,
                       referenced: set[str], manifest: dict | None) -> None:
        for entry in sorted(directory.iterdir()):
            if entry.is_dir():
                continue  # wal/ handled above; other dirs out of scope
            if entry.name in referenced or ".corrupt" in entry.name:
                continue
            self._saw_file()
            if ".tmp." in entry.name:
                self._issue(key, "orphan", entry,
                            "leftover temporary file from an interrupted write",
                            "reported")
            elif manifest is not None:
                self._issue(key, "orphan", entry,
                            "file not referenced by the manifest", "reported")


def scrub_store(
    store: "IndexStore | str | os.PathLike[str]",
    *,
    repair: bool = True,
    verify: bool = True,
) -> FsckReport:
    """Scrub a store directory; returns the :class:`FsckReport`.

    ``store`` may be an :class:`IndexStore` or a path.  ``repair=False``
    is dry-run: every issue is reported with a ``would-*`` action and
    the directory is left byte-identical.  ``verify=False`` skips the
    payload crc pass (structure and manifest consistency only).

    Scrubbing an in-use store is safe in the same sense concurrent
    readers are: all mutations are atomic renames.  Running it while a
    *writer* is active is not supported — quarantine decisions could
    race half-finished writes.
    """
    root = store.root if isinstance(store, IndexStore) else pathlib.Path(store)
    return _Scrubber(root, repair=repair, verify=verify).run()
