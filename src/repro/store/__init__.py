"""On-disk persistence for compiled graphs and core indexes.

The store subsystem gives a serving process a warm start: instead of
paying a full Algorithm-2 run per ``(graph, k)`` on boot, precomputed
indexes are opened from disk in milliseconds —

* :mod:`repro.store.format` — the versioned binary blob container
  (little-endian flat int64 sections, crc32 integrity, mmap zero-copy
  reads with a plain-read fallback);
* :mod:`repro.store.codec` — graph and index encoders/decoders plus the
  graph fingerprint used for staleness detection;
* :mod:`repro.store.views` — lazy flat-array VCT/ECS views served
  straight off the file mapping;
* :mod:`repro.store.index_store` — the :class:`IndexStore` directory
  abstraction (JSON manifest, one directory per graph, one index file
  per ``k``).

Typical use::

    from repro.store import IndexStore

    store = IndexStore("var/indexes")
    store.save_index(CoreIndex(graph, 3))        # offline prebuild
    ...
    registry.warm(store)                         # daemon boot
    index = registry.get(graph, 3, store=store)  # disk before compute

The text skyline dump (``CoreIndex.dump_skyline``) remains available
for debugging; this binary store is the primary persistence path.
"""

from repro.store.codec import (
    dump_graph,
    dump_index,
    graph_fingerprint,
    load_graph,
    load_index,
)
from repro.store.format import FORMAT_VERSION, Blob, read_blob, write_blob
from repro.store.index_store import IndexStore
from repro.store.views import FlatEdgeSkyline, FlatVertexCoreTimes

__all__ = [
    "Blob",
    "FORMAT_VERSION",
    "FlatEdgeSkyline",
    "FlatVertexCoreTimes",
    "IndexStore",
    "dump_graph",
    "dump_index",
    "graph_fingerprint",
    "load_graph",
    "load_index",
    "read_blob",
    "write_blob",
]
