"""On-disk persistence for compiled graphs and core indexes.

The store subsystem gives a serving process a warm start: instead of
paying a full Algorithm-2 run per ``(graph, k)`` on boot, precomputed
indexes are opened from disk in milliseconds —

* :mod:`repro.store.format` — the versioned binary blob container
  (little-endian flat int64 sections, crc32 integrity, mmap zero-copy
  reads with a plain-read fallback);
* :mod:`repro.store.codec` — graph and index encoders/decoders plus the
  graph fingerprint used for staleness detection;
* :mod:`repro.store.views` — lazy flat-array VCT/ECS views served
  straight off the file mapping;
* :mod:`repro.store.index_store` — the :class:`IndexStore` directory
  abstraction (JSON manifest, one directory per graph, one index file
  per ``k``);
* :mod:`repro.store.wal` — the per-key write-ahead edge log behind
  durable streaming ingestion (crc32-framed segments, group-commit
  fsync, torn-tail recovery);
* :mod:`repro.store.fsck` — the scrubber behind ``repro fsck``
  (verify checksums and manifest↔file consistency, quarantine to
  ``<name>.corrupt``, repair what is rebuildable).

Typical use::

    from repro.store import IndexStore

    store = IndexStore("var/indexes")
    store.save_index(CoreIndex(graph, 3))        # offline prebuild
    ...
    registry.warm(store)                         # daemon boot
    index = registry.get(graph, 3, store=store)  # disk before compute

The text skyline dump (``CoreIndex.dump_skyline``) remains available
for debugging; this binary store is the primary persistence path.
"""

from repro.store.codec import (
    dump_graph,
    dump_index,
    graph_fingerprint,
    load_graph,
    load_index,
)
from repro.store.format import FORMAT_VERSION, Blob, read_blob, write_blob
from repro.store.fsck import FsckIssue, FsckReport, scrub_store
from repro.store.index_store import IndexStore, StreamRecovery
from repro.store.views import FlatEdgeSkyline, FlatVertexCoreTimes
from repro.store.wal import WalEvent, WriteAheadLog, scan_segment

__all__ = [
    "Blob",
    "FORMAT_VERSION",
    "FlatEdgeSkyline",
    "FlatVertexCoreTimes",
    "FsckIssue",
    "FsckReport",
    "IndexStore",
    "StreamRecovery",
    "WalEvent",
    "WriteAheadLog",
    "dump_graph",
    "dump_index",
    "graph_fingerprint",
    "load_graph",
    "load_index",
    "read_blob",
    "scan_segment",
    "scrub_store",
    "write_blob",
]
