"""The :class:`IndexStore` — a directory of persisted graphs and indexes.

Layout (one sub-directory per graph)::

    <root>/
        <key>/
            manifest.json       # format version, fingerprint, file table
            graph.bin           # compiled-graph blob
            k3.idx              # core-index blob for k = 3
            k5.idx              # ...one per persisted k

``manifest.json`` schema::

    {
      "format_version": 1,
      "fingerprint": {"num_vertices": ..., "num_edges": ..., "tmax": ...,
                       "raw_span": [lo, hi], "edge_crc32": ...},
      "graph_file": "graph.bin",
      "indexes": {"3": {"file": "k3.idx", "vct_size": ..., "ecs_size": ...}}
    }

Graphs are matched by *fingerprint*, never by name: ``load_index(graph,
k)`` fingerprints the live graph, finds the matching directory and opens
the blob — so any process holding an equal graph gets the cached index
regardless of how either process named it.  Integrity failures
(truncation, checksum, fingerprint drift) make an entry read as absent;
callers rebuild and overwrite, they never serve corrupt data.  Manifest
and blob writes are atomic (temp file + ``os.replace``).
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import pathlib
import time
import zlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.core.index import CoreIndex
from repro.core.multik import _validated_ks, build_core_indexes
from repro.errors import StoreCorruptionError, StoreError
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.metrics import MetricsRegistry, get_registry, next_instance, timing_enabled
from repro.obs.timing import now
from repro.store import codec
from repro.store.format import FORMAT_VERSION, _fsync_parent_dir
from repro.store.wal import WalEvent, WriteAheadLog
from repro.testing.crashpoints import crashpoint

MANIFEST_NAME = "manifest.json"
GRAPH_FILE = "graph.bin"
LOCK_NAME = ".lock"
WAL_DIR = "wal"

log = logging.getLogger("repro.store")

#: Seconds between contention polls while waiting for a directory lock.
LOCK_POLL_SECONDS = 0.05


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this machine."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    except OSError:  # pragma: no cover - platform oddities read as alive
        return True
    return True


def _read_lock_owner(path: pathlib.Path) -> dict | None:
    """The owner metadata a writer recorded in the lock file, if any."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8") or "null")
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "pid" not in payload:
        return None
    return payload


@dataclass
class StreamRecovery:
    """What :meth:`IndexStore.recover` reassembled for one key.

    ``graph`` is the last durably snapshotted graph (``None`` when the
    key has only WAL records, no snapshot yet); ``snapshot_lsn`` is the
    stream LSN that snapshot covers (0 when none); ``events`` are the
    durable WAL records *past* the snapshot, oldest first — exactly the
    appends a rebuilt service must re-apply; ``wal`` is the opened log,
    ready for further appends at the right LSN.
    """

    key: str
    graph: TemporalGraph | None
    snapshot_lsn: int
    events: list[WalEvent] = field(default_factory=list)
    wal: WriteAheadLog | None = None

    @property
    def replayed(self) -> int:
        return len(self.events)


class IndexStore:
    """Durable store of compiled graphs and their core indexes.

    Parameters
    ----------
    root:
        Store directory; created (with parents) when missing.
    verify:
        Check blob payload checksums on every open (default).  Disabling
        skips the sequential crc pass for trusted local stores;
        truncation is still detected from the declared payload length.
    lock_timeout:
        Upper bound, in seconds, on how long a writer waits for a graph
        directory's advisory lock before raising :class:`StoreError`
        naming the recorded holder.  ``None`` (default) waits
        indefinitely — but stale-lock recovery still applies either
        way: a lock whose recorded writer died is taken over rather
        than waited on (see :meth:`_dir_lock`; takeovers are counted
        in ``stale_takeovers``).

    Staleness and invalidation: entries are matched by content
    *fingerprint*, so an index saved for one graph can never be served
    for a different (or since-changed) one — it simply stops matching
    and reads as absent, and the caller rebuilds.  Nothing in the store
    is ever updated in place; writes are whole-file (temp + rename).

    Thread/process-safety: instances hold no mutable state beyond the
    root path — share them freely across threads.  Writers serialise
    per graph directory via an advisory ``flock``; readers never lock
    and see a consistent before-or-after state (see
    ``docs/STORE_FORMAT.md`` for the full on-disk contract).
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        verify: bool = True,
        lock_timeout: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.verify = verify
        if lock_timeout is not None and lock_timeout < 0:
            raise StoreError(f"lock_timeout must be >= 0, got {lock_timeout}")
        self.lock_timeout = lock_timeout
        # Store bookkeeping lives in the metrics registry (the process
        # default unless ``metrics=`` isolates it); this instance's
        # series carry a unique ``store`` label, and the legacy
        # ``stale_takeovers`` attribute reads back through it.
        self.metrics = metrics if metrics is not None else get_registry()
        self.instance = next_instance("store")
        m, inst = self.metrics, self.instance
        self._c_stale_takeovers = m.counter(
            "repro_store_stale_takeovers_total",
            "Dead-writer lock files rotated out of the way",
            ("store",),
        ).labels(inst)
        self._c_graph_loads = m.counter(
            "repro_store_graph_loads_total",
            "Graph blobs opened",
            ("store",),
        ).labels(inst)
        self._c_graph_saves = m.counter(
            "repro_store_graph_saves_total",
            "Graph blobs written (idempotent re-saves not counted)",
            ("store",),
        ).labels(inst)
        self._c_index_saves = m.counter(
            "repro_store_index_saves_total",
            "Index blobs written",
            ("store",),
        ).labels(inst)
        index_loads = m.counter(
            "repro_store_index_loads_total",
            "Index load attempts by outcome (miss = absent/stale/corrupt)",
            ("store", "outcome"),
        )
        self._c_index_load_hits = index_loads.labels(inst, "hit")
        self._c_index_load_misses = index_loads.labels(inst, "miss")
        self._h_lock_wait = m.histogram(
            "repro_store_lock_wait_seconds",
            "Time spent acquiring a graph directory's writer lock",
            ("store",),
        ).labels(inst)
        corrupt = m.counter(
            "repro_store_corrupt_blobs_total",
            "Blob opens that failed integrity checks, by blob kind",
            ("store", "kind"),
        )
        self._c_corrupt_graph = corrupt.labels(inst, "graph")
        self._c_corrupt_index = corrupt.labels(inst, "index")

    def __repr__(self) -> str:
        return f"IndexStore({str(self.root)!r}, graphs={len(self.keys())})"

    @property
    def stale_takeovers(self) -> int:
        """Dead-writer lock rotations (view over the metrics registry)."""
        return int(self._c_stale_takeovers.value)

    def stats(self) -> dict:
        """This store's counters, as a plain dict view over the registry."""
        return {
            "graph_loads": int(self._c_graph_loads.value),
            "graph_saves": int(self._c_graph_saves.value),
            "index_saves": int(self._c_index_saves.value),
            "index_load_hits": int(self._c_index_load_hits.value),
            "index_load_misses": int(self._c_index_load_misses.value),
            "stale_takeovers": self.stale_takeovers,
            "root": str(self.root),
        }

    # ------------------------------------------------------------------
    # Manifests
    # ------------------------------------------------------------------

    def keys(self) -> list[str]:
        """Keys of every graph directory holding a readable manifest."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self._read_manifest(entry.name) is not None
        )

    def only_key(self, key: str | None = None) -> str:
        """Resolve ``key``, defaulting to the store's sole graph.

        The serving front ends (CLI ``query --store``, the daemon) let
        callers omit the graph key when the store holds exactly one
        graph.  Passing a key validates it exists; passing ``None``
        against an empty or multi-graph store raises a
        :class:`StoreError` naming the available keys.
        """
        keys = self.keys()
        if key is not None:
            if key not in keys:
                raise StoreError(
                    f"no stored graph under key {key!r} in {self.root} "
                    f"(available: {keys})"
                )
            return key
        if len(keys) != 1:
            raise StoreError(
                f"store {self.root} holds {len(keys)} graphs "
                f"(available: {keys}); pass an explicit key"
            )
        return keys[0]

    def manifest(self, key: str) -> dict:
        """The manifest of ``key`` (raises :class:`StoreError` if absent)."""
        manifest = self._read_manifest(key)
        if manifest is None:
            raise StoreError(f"no stored graph under key {key!r} in {self.root}")
        return manifest

    def _read_manifest(self, key: str) -> dict | None:
        try:
            with open(self.root / key / MANIFEST_NAME, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if manifest.get("format_version") != FORMAT_VERSION:
            return None
        return manifest

    def _write_manifest(self, key: str, manifest: dict) -> None:
        final = self.root / key / MANIFEST_NAME
        tmp = final.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        crashpoint("manifest.post-temp.pre-rename")
        os.replace(tmp, final)
        crashpoint("manifest.post-rename")
        _fsync_parent_dir(os.fspath(final))

    @contextlib.contextmanager
    def _dir_lock(self, key: str):
        """Advisory exclusive lock on a graph directory's writers.

        Serialises manifest read-modify-write across *processes* (two
        concurrent ``save_index`` calls for different ``k`` must not
        lose each other's entries).  Readers never take the lock — blob
        and manifest writes are individually atomic, so an unlocked
        reader sees a consistent before-or-after state.  No-op where
        ``fcntl`` is unavailable.

        Hardened against stale locks: the holder records ``{pid,
        acquired_at}`` in the lock file while it works (cleared on
        release), and a contender that cannot acquire checks the
        recorded writer's liveness.  A SIGKILL'd writer normally needs
        no help — the kernel drops its ``flock`` with its last open
        descriptor — but where the lock is held *past* its writer's
        death (an fd leaked to a child, emulated ``flock`` on network
        filesystems), the contender observes the same dead owner on
        two consecutive polls, rotates the lock file out of the way
        and takes over (counted in ``stale_takeovers``).  Acquisition
        re-validates that its descriptor still names the live lock
        path, so a takeover can never leave two writers both holding
        an orphaned inode.  ``lock_timeout`` bounds the wait; on
        expiry a :class:`StoreError` names the recorded owner.
        """
        directory = self.root / key
        directory.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        handle = self._acquire_dir_lock(directory / LOCK_NAME)
        try:
            yield
        finally:
            with contextlib.suppress(OSError):
                # Clear the owner stamp *before* releasing: a contender
                # must never read our metadata once the flock is free.
                handle.seek(0)
                handle.truncate()
                handle.flush()
            with contextlib.suppress(OSError):
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    def _acquire_dir_lock(self, lock_path: pathlib.Path):
        """Acquire ``lock_path`` exclusively; returns the open handle.

        Implements the contend/detect/rotate loop described in
        :meth:`_dir_lock`.  A dead recorded owner must be observed on
        two consecutive polls before rotation (a live writer normally
        overwrites the leftover metadata long before that), and every
        acquirer stamps its pid *before* validating that its
        descriptor still names the lock path — so if a rotation ever
        does race a not-yet-stamped writer, exactly one of the two
        passes validation and the other re-contends.
        """
        timeout = self.lock_timeout
        wait_started = now() if timing_enabled() else None
        give_up_at = None if timeout is None else time.monotonic() + timeout
        dead_owner_seen: tuple[int, object] | None = None
        while True:
            handle = open(lock_path, "a+b")
            keep = False
            try:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    owner = _read_lock_owner(lock_path)
                    if owner is not None and not _pid_alive(owner["pid"]):
                        observed = (owner["pid"], owner.get("acquired_at"))
                        if dead_owner_seen == observed:
                            # Same dead writer twice: the flock is held
                            # beyond its owner's death.  Rotate the file;
                            # everyone re-contends on the fresh inode.
                            with contextlib.suppress(OSError):
                                os.unlink(lock_path)
                            self._c_stale_takeovers.inc()
                            dead_owner_seen = None
                            continue
                        dead_owner_seen = observed
                    else:
                        dead_owner_seen = None
                    if give_up_at is not None and time.monotonic() >= give_up_at:
                        holder = (
                            f"pid {owner['pid']}" if owner else "an unknown writer"
                        )
                        raise StoreError(
                            f"timed out after {timeout:g}s waiting for "
                            f"{lock_path} (held by {holder})"
                        )
                    time.sleep(LOCK_POLL_SECONDS)
                    continue
                # Acquired.  Stamp ownership first, *then* confirm the
                # descriptor still names the live lock path: a contender
                # that observed the previous (dead) owner's leftover
                # metadata may rotate the file at any point before our
                # stamp replaces it, and a validate-before-stamp order
                # would miss a rotation landing in that window.  After
                # the stamp, any rotation is ours to detect here.
                handle.seek(0)
                handle.truncate()
                handle.write(
                    json.dumps(
                        {"pid": os.getpid(), "acquired_at": time.time()}
                    ).encode("utf-8")
                )
                handle.flush()
                try:
                    fd_stat = os.fstat(handle.fileno())
                    path_stat = os.stat(lock_path)
                    current = (fd_stat.st_dev, fd_stat.st_ino) == (
                        path_stat.st_dev,
                        path_stat.st_ino,
                    )
                except OSError:
                    current = False
                if not current:
                    continue  # rotated under us; re-contend on the new inode
                keep = True
                if wait_started is not None:
                    self._h_lock_wait.observe(now() - wait_started)
                return handle
            finally:
                if not keep:
                    handle.close()

    def lock_info(self, key: str) -> dict | None:
        """The recorded owner of ``key``'s writer lock, if any.

        ``{"pid": ..., "acquired_at": ...}`` while a writer holds the
        directory lock (or after one crashed without releasing),
        ``None`` otherwise.  Observability only — liveness of the pid
        is for the caller to judge.
        """
        return _read_lock_owner(self.root / key / LOCK_NAME)

    @staticmethod
    def _default_key(fingerprint: dict) -> str:
        # Blend all content crcs: graphs differing only in labels or raw
        # times must land in different directories too.
        blended = zlib.crc32(
            b"%d:%d:%d"
            % (
                fingerprint["edge_crc32"],
                fingerprint["label_crc32"],
                fingerprint["raw_time_crc32"],
            )
        )
        return f"g{blended:08x}-m{fingerprint['num_edges']}"

    def find(self, graph: TemporalGraph) -> str | None:
        """The key whose stored fingerprint matches ``graph``, if any."""
        fingerprint = codec.graph_fingerprint(graph)
        for key in self.keys():
            manifest = self._read_manifest(key)
            if manifest is not None and manifest.get("fingerprint") == fingerprint:
                return key
        return None

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------

    def save_graph(
        self,
        graph: TemporalGraph,
        *,
        name: str | None = None,
        stream_lsn: int | None = None,
    ) -> str:
        """Persist ``graph`` (idempotent), returning its key.

        A directory whose fingerprint already matches is reused as-is.
        Reusing a ``name`` for a *different* graph resets the directory:
        the graph blob is rewritten and all index entries are dropped
        (their files deleted), since they describe the old graph.

        ``stream_lsn`` records which WAL position this graph covers —
        the streaming snapshot path passes the log's last LSN so
        recovery replays only records past it.  The graph blob is then
        written under an LSN-stamped name (``graph-<lsn>.bin``) and the
        manifest — carrying *both* the file name and the LSN — commits
        them in one ``os.replace``: there is no instant where a crash
        could pair the new graph with the old replay point (which would
        double-apply appends) or vice versa (which would lose them).
        """
        fingerprint = codec.graph_fingerprint(graph)
        key = name if name is not None else None
        if key is None:
            key = self.find(graph) or self._default_key(fingerprint)
        directory = self.root / key
        with self._dir_lock(key):
            manifest = self._read_manifest(key)
            if manifest is not None and manifest.get("fingerprint") == fingerprint:
                if (
                    stream_lsn is not None
                    and manifest.get("stream", {}).get("lsn") != stream_lsn
                ):
                    manifest["stream"] = {"lsn": stream_lsn}
                    self._write_manifest(key, manifest)
                return key
            old_graph_file = (
                manifest.get("graph_file", GRAPH_FILE) if manifest is not None else None
            )
            if manifest is not None:
                for entry in manifest.get("indexes", {}).values():
                    try:
                        os.unlink(directory / entry["file"])
                    except OSError:
                        pass
            graph_file = (
                f"graph-{stream_lsn:016d}.bin" if stream_lsn is not None else GRAPH_FILE
            )
            codec.dump_graph(directory / graph_file, graph)
            new_manifest = {
                "format_version": FORMAT_VERSION,
                "fingerprint": fingerprint,
                "graph_file": graph_file,
                "indexes": {},
            }
            if stream_lsn is not None:
                new_manifest["stream"] = {"lsn": stream_lsn}
            self._write_manifest(key, new_manifest)
            if old_graph_file is not None and old_graph_file != graph_file:
                # The old blob is unreferenced once the manifest commits;
                # a crash before this unlink leaves an orphan that fsck
                # reports — never a dangling reference.
                with contextlib.suppress(OSError):
                    os.unlink(directory / old_graph_file)
            self._c_graph_saves.inc()
        return key

    def save_index(self, index: CoreIndex, *, name: str | None = None) -> str:
        """Persist an index (and its graph if absent), returning the key."""
        key = self.save_graph(index.graph, name=name)
        directory = self.root / key
        filename = f"k{index.k}.idx"
        with self._dir_lock(key):
            codec.dump_index(directory / filename, index)
            manifest = self.manifest(key)
            manifest.setdefault("indexes", {})[str(index.k)] = {
                "file": filename,
                "vct_size": index.vct.size(),
                "ecs_size": index.ecs.size(),
            }
            self._write_manifest(key, manifest)
            self._c_index_saves.inc()
        return key

    def build_all(
        self,
        graph: TemporalGraph,
        ks: "Iterable[int]",
        *,
        name: str | None = None,
        reused: set[int] | None = None,
    ) -> dict[int, CoreIndex]:
        """Ensure a stored index exists for every ``k``; returns them all.

        The offline prebuild primitive: all ``k`` values live in **one**
        graph directory — ``name`` when given, else the fingerprint
        match, else the fingerprint-derived default key.  Entries
        already persisted there are opened as-is; the missing ones are
        computed in one shared decremental scan
        (:func:`repro.core.multik.build_core_indexes`) and persisted —
        graph blob included — under that same key, so repeated calls
        with and without ``name`` never split a graph's indexes across
        directories.  Corrupt or stale entries read as absent and are
        rebuilt and overwritten.  Returns ``{k: index}`` for the
        deduplicated ``ks``, ascending.

        ``reused``, when passed, is filled with the ``k`` values that
        were served from disk rather than computed — callers report
        reuse without probing the store a second time.

        Concurrent writers are serialised per graph directory by the
        advisory lock of :meth:`save_index`; the method itself is
        stateless and safe to call from several processes.
        """
        key = name if name is not None else self.find(graph)
        out: dict[int, CoreIndex] = {}
        missing: list[int] = []
        for k in _validated_ks(ks):
            index = (
                self.load_index(graph, k, key=key) if key is not None else None
            )
            if index is not None:
                out[k] = index
                if reused is not None:
                    reused.add(k)
            else:
                missing.append(k)
        if missing:
            built = build_core_indexes(graph, missing)
            for k in missing:
                self.save_index(built[k], name=key)
                out[k] = built[k]
        return out

    # ------------------------------------------------------------------
    # Write-ahead log and recovery
    # ------------------------------------------------------------------

    def wal(
        self,
        key: str,
        *,
        segment_bytes: int | None = None,
        sync: str = "always",
    ) -> WriteAheadLog:
        """Open (creating if needed) the write-ahead log of ``key``.

        Lives in ``<root>/<key>/wal/``; opening scans the segments and
        truncates a torn tail, so the returned log is always ready to
        append at the correct next LSN.  One WAL per key per process —
        callers keep the instance rather than reopening per append.
        """
        kwargs: dict = {"sync": sync, "metrics": self.metrics}
        if segment_bytes is not None:
            kwargs["segment_bytes"] = segment_bytes
        return WriteAheadLog(self.root / key / WAL_DIR, **kwargs)

    def has_wal(self, key: str) -> bool:
        """Whether ``key`` has a WAL directory with at least one segment."""
        wal_dir = self.root / key / WAL_DIR
        return wal_dir.is_dir() and any(
            entry.name.startswith("wal-") and entry.name.endswith(".seg")
            for entry in wal_dir.iterdir()
        )

    def stream_lsn(self, key: str) -> int:
        """The WAL position the stored snapshot of ``key`` covers (0 if none)."""
        manifest = self._read_manifest(key)
        if manifest is None:
            return 0
        lsn = manifest.get("stream", {}).get("lsn", 0)
        return lsn if isinstance(lsn, int) and lsn >= 0 else 0

    def set_stream_lsn(self, key: str, lsn: int) -> None:
        """Record that the stored snapshot of ``key`` covers ``lsn``.

        For callers that advanced the durable state without rewriting
        the graph blob (e.g. a snapshot that found the fingerprint
        unchanged).  Raises if the key has no manifest — a bare LSN
        with no snapshot to anchor it would corrupt recovery.
        """
        with self._dir_lock(key):
            manifest = self.manifest(key)
            manifest["stream"] = {"lsn": int(lsn)}
            self._write_manifest(key, manifest)

    def recover(self, key: str, *, segment_bytes: int | None = None) -> StreamRecovery:
        """Reassemble the durable state of ``key``: snapshot + WAL replay.

        The boot path after any shutdown, clean or not: opens the WAL
        (truncating a torn tail), loads the last snapshotted graph if
        one exists, and replays every durable record past the
        snapshot's ``stream_lsn``.  The result carries everything a
        :class:`~repro.core.maintenance.StreamingCoreService` needs to
        resume exactly where the acknowledged stream ended.

        A corrupt graph blob raises :class:`StoreCorruptionError` (run
        ``repro fsck``) — recovery never silently drops a snapshot,
        because the WAL past it cannot reconstruct what came before.
        """
        wal = self.wal(key, segment_bytes=segment_bytes)
        manifest = self._read_manifest(key)
        graph: TemporalGraph | None = None
        snapshot_lsn = 0
        if manifest is not None:
            graph = self.load_graph(key)
            snapshot_lsn = self.stream_lsn(key)
        events = wal.replay(after=snapshot_lsn)
        return StreamRecovery(
            key=key,
            graph=graph,
            snapshot_lsn=snapshot_lsn,
            events=events,
            wal=wal,
        )

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load_graph(self, key: str) -> TemporalGraph:
        """Open the graph blob of ``key`` (raises on absence/corruption).

        Corruption is counted (``repro_store_corrupt_blobs_total``) and
        logged with the offending path before the error propagates —
        an operator grepping one warning line can go straight to the
        file ``repro fsck`` will quarantine.
        """
        manifest = self.manifest(key)
        path = self.root / key / manifest.get("graph_file", GRAPH_FILE)
        try:
            graph = codec.load_graph(path, verify=self.verify)
        except StoreCorruptionError:
            self._c_corrupt_graph.inc()
            log.warning("corrupt graph blob at %s (quarantine with `repro fsck`)", path)
            raise
        self._c_graph_loads.inc()
        return graph

    def stored_ks(self, key: str) -> list[int]:
        """The ``k`` values with a persisted index under ``key``."""
        return sorted(int(k) for k in self.manifest(key).get("indexes", {}))

    def has_index(
        self, graph: TemporalGraph, k: int, *, key: str | None = None
    ) -> bool:
        """Does a manifest entry exist for ``(graph, k)``?  Manifest-only.

        A cheap existence probe (no blob is opened or checksummed) used
        by the registry's eviction spill to skip re-persisting.  A
        ``True`` answer can still read as absent later if the blob rots
        on disk — callers that must *serve* the entry use
        :meth:`load_index`.
        """
        if key is None:
            key = self.find(graph)
            if key is None:
                return False
        manifest = self._read_manifest(key)
        return manifest is not None and str(k) in manifest.get("indexes", {})

    def load_index(
        self, graph: TemporalGraph, k: int, *, key: str | None = None
    ) -> CoreIndex | None:
        """The stored index for ``(graph, k)``, or ``None``.

        ``None`` means "not served from disk": no fingerprint-matching
        directory, no entry for ``k``, or a file that failed integrity
        checks (truncated, checksum mismatch, stale fingerprint).  The
        caller computes and typically re-saves — corrupt entries are
        rebuilt, never served.
        """
        index = self._load_index(graph, k, key=key)
        if index is None:
            self._c_index_load_misses.inc()
        else:
            self._c_index_load_hits.inc()
        return index

    def _load_index(
        self, graph: TemporalGraph, k: int, *, key: str | None = None
    ) -> CoreIndex | None:
        if key is None:
            key = self.find(graph)
            if key is None:
                return None
        manifest = self._read_manifest(key)
        if manifest is None:
            return None
        entry = manifest.get("indexes", {}).get(str(k))
        if entry is None:
            return None
        path = self.root / key / entry["file"]
        try:
            return codec.load_index(path, graph, verify=self.verify)
        except StoreCorruptionError:
            # Treated as absent (the caller rebuilds), but never
            # silently: rot should show up in metrics and one log line.
            self._c_corrupt_index.inc()
            log.warning(
                "corrupt index blob at %s (quarantine with `repro fsck`)", path
            )
            return None
        except (StoreError, OSError):
            return None

    def iter_graphs(
        self,
    ) -> Iterator[tuple[str, TemporalGraph, dict[int, CoreIndex]]]:
        """Yield ``(key, graph, {k: index})`` for every readable graph.

        Each key's graph blob is opened once and shared by its indexes;
        unreadable graphs are skipped and unreadable indexes are left
        out of the dict, both silently (warm-up must never fail because
        one entry rotted on disk).  This is the grouped primitive behind
        :meth:`iter_indexes` and registry warm-up.
        """
        for key in self.keys():
            try:
                graph = self.load_graph(key)
            except (StoreError, OSError):
                continue
            indexes: dict[int, CoreIndex] = {}
            for k in self.stored_ks(key):
                index = self.load_index(graph, k, key=key)
                if index is not None:
                    indexes[k] = index
            yield key, graph, indexes

    def iter_indexes(self) -> Iterator[tuple[str, TemporalGraph, CoreIndex]]:
        """Yield ``(key, graph, index)`` for every loadable stored index.

        Flat view over :meth:`iter_graphs` (same silent-skip
        semantics), ascending ``k`` within each key.
        """
        for key, graph, indexes in self.iter_graphs():
            for k in sorted(indexes):
                yield key, graph, indexes[k]
