"""Encoding and decoding of graphs and core indexes as store blobs.

Two blob kinds exist:

* ``"compiled-graph"`` — a :class:`~repro.graph.temporal_graph.TemporalGraph`
  together with its :class:`~repro.graph.csr.CompiledGraph` flat arrays.
  Loading reconstructs both without re-normalising, re-sorting or
  re-compiling; the compiled arrays are zero-copy views of the file
  mapping.  Vertex labels ride in the blob meta (JSON), which restricts
  persistable graphs to ``str``/``int`` labels.
* ``"core-index"`` — a :class:`~repro.core.index.CoreIndex` (VCT + ECS).
  The offset-indexed flat arrays written here are the index classes'
  *native* representation, so dumping copies the arrays out verbatim and
  loading hands the blob's sections straight to their ``from_flat``
  constructors — the in-memory and on-disk layouts coincide and a load
  is zero-copy.

Both blob kinds carry the graph *fingerprint* (edge count, span, raw
span and an edge-array crc32) in their meta, so staleness is detectable
from the file alone: an index whose fingerprint disagrees with the graph
it is asked to serve is treated as absent and rebuilt.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from repro.core.coretime import VertexCoreTimeIndex
from repro.core.index import CoreIndex
from repro.core.windows import EdgeCoreSkyline
from repro.errors import StoreError
from repro.graph.csr import CompiledGraph
from repro.graph.temporal_graph import TemporalEdge, TemporalGraph
from repro.store.format import read_blob, write_blob

GRAPH_KIND = "compiled-graph"
INDEX_KIND = "core-index"


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

def graph_fingerprint(graph: TemporalGraph) -> dict:
    """A cheap content fingerprint: counts, spans and content crc32s.

    Computed straight from the edge triples (no compile needed) in one
    numpy pass, plus crc32s of the vertex labels and the raw-timestamp
    table.  Two graphs with equal fingerprints hold the same edges with
    the same internal ids *and* the same labels and raw times — without
    the label/raw coverage, two structurally identical graphs over
    different vertex sets would silently share one store entry and a
    restore would resurrect the wrong labels.
    """
    m = graph.num_edges
    cg = graph._compiled_cache
    if cg is not None:
        # Already-compiled graphs (every loaded graph, most served ones)
        # have the edge columns as flat arrays: interleave vectorised
        # instead of converting m namedtuples in Python.
        triples = np.column_stack(
            (
                np.frombuffer(cg.edge_u, dtype=np.int64) if m else np.empty(0, np.int64),
                np.frombuffer(cg.edge_v, dtype=np.int64) if m else np.empty(0, np.int64),
                np.frombuffer(cg.edge_t, dtype=np.int64) if m else np.empty(0, np.int64),
            )
        )
    else:
        triples = np.asarray(graph.edges, dtype=np.int64).reshape(m, 3)
    if m:
        raw_span = [graph.raw_time_of(1), graph.raw_time_of(graph.tmax)]
    else:
        raw_span = [0, 0]
    raw_times = np.asarray(
        [graph.raw_time_of(t) for t in range(1, graph.tmax + 1)], dtype=np.int64
    )
    # Type-tagged reprs hash any hashable label (fingerprints are also
    # taken of graphs the store could never persist).
    labels_blob = "\x00".join(
        f"{type(graph.label_of(u)).__name__}:{graph.label_of(u)!r}"
        for u in range(graph.num_vertices)
    ).encode("utf-8", "backslashreplace")
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": m,
        "tmax": graph.tmax,
        "raw_span": raw_span,
        "edge_crc32": zlib.crc32(triples.astype("<i8", copy=False).tobytes()),
        "label_crc32": zlib.crc32(labels_blob),
        "raw_time_crc32": zlib.crc32(raw_times.astype("<i8", copy=False).tobytes()),
    }


# ----------------------------------------------------------------------
# Graph blobs
# ----------------------------------------------------------------------

_COMPILED_SECTIONS = (
    "edge_u",
    "edge_v",
    "edge_t",
    "adj_offsets",
    "adj_neighbour",
    "slot_pid",
    "slot_times_start",
    "slot_times_end",
    "slot_count",
    "pair_offset",
    "pair_times",
    "full_degree",
    "edge_slot_u",
    "edge_slot_v",
    "inc_offsets",
)


def _json_safe_labels(graph: TemporalGraph) -> list:
    labels = [graph.label_of(u) for u in range(graph.num_vertices)]
    for label in labels:
        if not isinstance(label, (str, int)) or isinstance(label, bool):
            raise StoreError(
                f"cannot persist vertex label {label!r} of type "
                f"{type(label).__name__}; the store requires str or int labels"
            )
    return labels


def dump_graph(path: str | os.PathLike[str], graph: TemporalGraph) -> int:
    """Write a graph (and its compiled flat arrays) as one blob."""
    cg = graph.compiled()
    meta = {
        "num_vertices": cg.num_vertices,
        "num_edges": cg.num_edges,
        "tmax": cg.tmax,
        "num_slots": cg.num_slots,
        "num_pairs": cg.num_pairs,
        "num_dropped_self_loops": graph.num_dropped_self_loops,
        "labels": _json_safe_labels(graph),
        "fingerprint": graph_fingerprint(graph),
    }
    sections = {name: getattr(cg, name) for name in _COMPILED_SECTIONS}
    sections["inc_time"] = cg.np_inc_time
    sections["inc_other"] = cg.np_inc_other
    sections["inc_eid"] = cg.np_inc_eid
    sections["time_offset"] = cg.time_offset
    sections["raw_times"] = [graph.raw_time_of(t) for t in range(1, cg.tmax + 1)]
    return write_blob(path, GRAPH_KIND, meta, sections)


def load_graph(path: str | os.PathLike[str], *, verify: bool = True) -> TemporalGraph:
    """Reconstruct a graph blob: exact ids, compiled view attached.

    The compiled arrays are zero-copy views of the blob's mapping; the
    edge tuple and offset tables are materialised (O(m), no sorting).
    """
    blob = read_blob(path, verify=verify)
    if blob.kind != GRAPH_KIND:
        raise StoreError(f"{blob.path}: expected a {GRAPH_KIND} blob, got {blob.kind!r}")
    meta = blob.meta
    parts = blob.sections
    time_offset = tuple(parts["time_offset"])
    graph = TemporalGraph._from_parts(
        edges=tuple(map(TemporalEdge, parts["edge_u"], parts["edge_v"], parts["edge_t"])),
        labels=tuple(meta["labels"]),
        raw_times=tuple(parts["raw_times"]),
        time_offset=time_offset,
        num_dropped_self_loops=meta.get("num_dropped_self_loops", 0),
    )
    graph._compiled_cache = CompiledGraph._from_parts(meta, parts, time_offset)
    return graph


# ----------------------------------------------------------------------
# Index blobs
# ----------------------------------------------------------------------

def dump_index(path: str | os.PathLike[str], index: CoreIndex) -> int:
    """Write a CoreIndex (VCT + ECS) as one flat-array blob.

    The flat arrays *are* the index classes' native representation, so
    this is a straight copy-out — no per-entry conversion loop.
    """
    vct, ecs = index.vct, index.ecs
    vct_offsets, vct_starts, vct_cts = vct.flat_parts()
    ecs_offsets, ecs_t1, ecs_t2 = ecs.flat_parts()

    if vct.span != ecs.span:
        raise StoreError(f"index spans disagree: vct {vct.span} vs ecs {ecs.span}")
    meta = {
        "k": index.k,
        "span": list(vct.span),
        "num_vertices": vct.num_vertices,
        "num_edges": ecs.num_edges,
        "vct_size": vct.size(),
        "ecs_size": ecs.size(),
        "fingerprint": graph_fingerprint(index.graph),
    }
    sections = {
        "vct_offsets": vct_offsets,
        "vct_starts": vct_starts,
        "vct_cts": vct_cts,
        "ecs_offsets": ecs_offsets,
        "ecs_t1": ecs_t1,
        "ecs_t2": ecs_t2,
    }
    return write_blob(path, INDEX_KIND, meta, sections)


def load_index(
    path: str | os.PathLike[str], graph: TemporalGraph, *, verify: bool = True
) -> CoreIndex:
    """Open an index blob against ``graph`` (zero-copy flat arrays).

    The blob's sections feed the index classes' native ``from_flat``
    constructors directly — nothing is materialised at load time.
    Raises :class:`StoreError` when the blob's fingerprint does not
    match ``graph`` — serving an index for a different or stale graph
    would silently return wrong answers.
    """
    blob = read_blob(path, verify=verify)
    if blob.kind != INDEX_KIND:
        raise StoreError(f"{blob.path}: expected a {INDEX_KIND} blob, got {blob.kind!r}")
    meta = blob.meta
    if meta.get("fingerprint") != graph_fingerprint(graph):
        raise StoreError(
            f"{blob.path}: index fingerprint does not match the graph "
            f"(stale or foreign index)"
        )
    span = tuple(meta["span"])
    parts = blob.sections
    index = CoreIndex.__new__(CoreIndex)
    index.graph = graph
    index.k = meta["k"]
    # Opening from disk is (near-)free: the eviction spill policy must
    # never consider a loaded index worth re-persisting.
    index.build_seconds = 0.0
    index.vct = VertexCoreTimeIndex.from_flat(
        parts["vct_offsets"], parts["vct_starts"], parts["vct_cts"], meta["k"], span
    )
    index.ecs = EdgeCoreSkyline.from_flat(
        parts["ecs_offsets"], parts["ecs_t1"], parts["ecs_t2"], meta["k"], span
    )
    return index
