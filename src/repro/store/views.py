"""Compatibility aliases for the flat-array index views.

Historically this module held ``FlatVertexCoreTimes`` / ``FlatEdgeSkyline``
— lazy subclasses that served queries off persisted flat arrays while the
in-memory classes were list-of-tuples.  The offset-indexed flat int64
layout is now the *native* representation of
:class:`~repro.core.coretime.VertexCoreTimeIndex` and
:class:`~repro.core.windows.EdgeCoreSkyline` themselves (their
``from_flat`` constructors wrap store sections zero-copy), so the old
names are kept only as aliases for existing imports.
"""

from __future__ import annotations

from repro.core.coretime import INF_CT, VertexCoreTimeIndex
from repro.core.windows import EdgeCoreSkyline

#: Flat-array encoding of an infinite core time (re-exported).
INF_CT = INF_CT

#: The native classes serve flat arrays directly; the historic view
#: names now point straight at them.
FlatVertexCoreTimes = VertexCoreTimeIndex
FlatEdgeSkyline = EdgeCoreSkyline

__all__ = ["INF_CT", "FlatVertexCoreTimes", "FlatEdgeSkyline"]
