"""Flat-array views of the VCT and ECS backed by store sections.

A persisted index holds the per-vertex core-time transitions and the
per-edge skyline windows as offset-indexed flat int64 arrays (usually
``memoryview`` slices of an ``mmap``).  These classes serve queries
straight off those arrays — nothing is materialised at load time, so
opening an index is O(1) in the index size — while remaining drop-in
substitutes for the in-memory classes: lookups bisect the flat arrays,
and the list/tuple forms the rest of the library expects are built
lazily per call.

Infinite core times are encoded as ``-1`` in the flat ``ct`` array
(timestamps are always >= 1).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.coretime import VertexCoreTimeIndex
from repro.core.windows import EdgeCoreSkyline
from repro.errors import InvalidParameterError

#: Flat-array encoding of an infinite core time.
INF_CT = -1


class FlatVertexCoreTimes(VertexCoreTimeIndex):
    """VCT served from offset-indexed flat arrays (zero-copy load).

    ``offsets`` has ``num_vertices + 1`` entries; vertex ``u``'s
    transitions are ``starts[offsets[u]:offsets[u+1]]`` paired with
    ``cts`` (``-1`` meaning infinity).
    """

    __slots__ = ("_offsets", "_flat_starts", "_flat_cts")

    def __init__(self, offsets, starts, cts, k: int, span: tuple[int, int]):
        # The base-class storage (_entries/_starts) is deliberately left
        # unset; every accessor that would touch it is overridden below.
        self.k = k
        self.span = span
        self._offsets = offsets
        self._flat_starts = starts
        self._flat_cts = cts

    @property
    def num_vertices(self) -> int:
        return len(self._offsets) - 1

    def entries_of(self, u: int) -> list[tuple[int, int | None]]:
        lo, hi = self._offsets[u], self._offsets[u + 1]
        starts, cts = self._flat_starts, self._flat_cts
        return [
            (starts[i], None if cts[i] == INF_CT else cts[i]) for i in range(lo, hi)
        ]

    def size(self) -> int:
        return len(self._flat_starts)

    def core_time(self, u: int, ts: int) -> int | None:
        lo, hi = self.span
        if ts < lo or ts > hi:
            raise InvalidParameterError(f"start {ts} outside computed span {self.span}")
        left, right = self._offsets[u], self._offsets[u + 1]
        if left == right:
            return None
        pos = bisect_right(self._flat_starts, ts, left, right) - 1
        if pos < left:
            return None
        ct = self._flat_cts[pos]
        return None if ct == INF_CT else ct


class FlatEdgeSkyline(EdgeCoreSkyline):
    """ECS served from offset-indexed flat arrays (zero-copy load).

    ``offsets`` has ``num_edges + 1`` entries; edge ``eid``'s minimal
    core windows are ``zip(t1, t2)`` over ``offsets[eid]:offsets[eid+1]``.
    Within an edge both coordinates are strictly increasing (the skyline
    invariant), which :meth:`restricted_to` exploits: the windows inside
    ``[ts, te]`` are one contiguous run found by two bisections.
    """

    __slots__ = ("_offsets", "_t1", "_t2")

    def __init__(self, offsets, t1, t2, k: int, span: tuple[int, int]):
        # Base-class storage (_windows) left unset, as in the VCT view.
        self.k = k
        self.span = span
        self._offsets = offsets
        self._t1 = t1
        self._t2 = t2

    @property
    def num_edges(self) -> int:
        return len(self._offsets) - 1

    def windows_of(self, eid: int) -> tuple[tuple[int, int], ...]:
        lo, hi = self._offsets[eid], self._offsets[eid + 1]
        t1, t2 = self._t1, self._t2
        return tuple((t1[i], t2[i]) for i in range(lo, hi))

    def size(self) -> int:
        return len(self._t1)

    def restricted_to(self, ts: int, te: int) -> EdgeCoreSkyline:
        span_ts, span_te = self.span
        if ts < span_ts or te > span_te:
            raise InvalidParameterError(
                f"[{ts}, {te}] is not inside the computed span [{span_ts}, {span_te}]"
            )
        t1, t2 = self._t1, self._t2
        offsets = self._offsets
        filtered: list[tuple[tuple[int, int], ...]] = []
        for eid in range(len(offsets) - 1):
            lo, hi = offsets[eid], offsets[eid + 1]
            first = bisect_left(t1, ts, lo, hi)
            last = bisect_right(t2, te, lo, hi)
            filtered.append(
                tuple((t1[i], t2[i]) for i in range(first, last))
            )
        return EdgeCoreSkyline(filtered, self.k, (ts, te))
