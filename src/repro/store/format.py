"""The versioned binary container behind the on-disk index store.

A *blob* is one file holding named flat ``int64`` sections — the unit in
which compiled graphs and core indexes are persisted.  The layout is
designed so a reader can hand out zero-copy views of every section
straight from an ``mmap`` of the file:

::

    offset 0   magic        8 bytes   b"RPROSTOR"
    offset 8   version      u32 little-endian
    offset 12  header_len   u32 little-endian
    offset 16  header       UTF-8 JSON (see below)
    ...        zero padding to the next 16-byte boundary
    ...        payload      concatenated little-endian int64 arrays

The JSON header carries ``kind`` (what the blob encodes), ``meta`` (small
scalar metadata), a section table (``name``, byte ``offset`` into the
payload, element ``count``), the total ``payload_bytes`` and a ``crc32``
of the payload.  Truncation is detected by comparing the file size
against the declared payload length; corruption by the checksum.

Readers prefer ``mmap`` and fall back to reading the file into memory
where mapping is unavailable (empty files, exotic filesystems).  On
little-endian hosts sections are returned as ``memoryview.cast("q")``
views sharing the mapping — no copy; on big-endian hosts they are
decoded into ``array("q")`` with a byte swap.

Writes go through a temporary file and ``os.replace`` so a crash mid-
write never leaves a half-written blob under the final name — a torn
write is either invisible or caught by the truncation/checksum checks.
"""

from __future__ import annotations

import json
import mmap
import os
import sys
import zlib
from array import array
from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import StoreCorruptionError, StoreError
from repro.testing.crashpoints import crashpoint

#: First eight bytes of every store blob.
MAGIC = b"RPROSTOR"

#: Bumped on any incompatible layout change; readers reject other versions.
FORMAT_VERSION = 1

#: Payload alignment — keeps int64 sections naturally aligned for mmap views.
_ALIGN = 16


def _int64_bytes(values: Sequence[int] | np.ndarray) -> bytes:
    """Little-endian int64 encoding of any integer sequence or buffer."""
    arr = np.asarray(values, dtype=np.int64)
    return arr.astype("<i8", copy=False).tobytes()


def _section_view(buffer, start: int, stop: int):
    """An int64 sequence over ``buffer[start:stop]`` — zero-copy where possible."""
    view = memoryview(buffer)[start:stop]
    if sys.byteorder == "little":
        return view.cast("q")
    decoded = array("q")
    decoded.frombytes(view.tobytes())
    decoded.byteswap()
    return decoded


class Blob:
    """A read-only opened store blob: ``kind``, ``meta`` and section views.

    ``sections`` maps section names to flat int64 sequences that share
    the underlying mapping (keep the blob referenced while views are in
    use; the views themselves pin the buffer, so ordinary usage is safe).
    """

    __slots__ = ("path", "kind", "meta", "sections", "_buffer")

    def __init__(self, path: str, kind: str, meta: dict, sections: dict, buffer):
        self.path = path
        self.kind = kind
        self.meta = meta
        self.sections = sections
        self._buffer = buffer

    def __repr__(self) -> str:
        return f"Blob(kind={self.kind!r}, sections={sorted(self.sections)})"


def write_blob(
    path: str | os.PathLike[str],
    kind: str,
    meta: Mapping,
    sections: Mapping[str, Sequence[int] | np.ndarray],
) -> int:
    """Atomically write a blob; returns the number of bytes written."""
    table = []
    parts: list[bytes] = []
    offset = 0
    for name, values in sections.items():
        data = _int64_bytes(values)
        table.append({"name": name, "offset": offset, "count": len(data) // 8})
        parts.append(data)
        offset += len(data)
    payload = b"".join(parts)
    header = json.dumps(
        {
            "kind": kind,
            "meta": dict(meta),
            "sections": table,
            "payload_bytes": len(payload),
            "crc32": zlib.crc32(payload),
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    prefix = (
        MAGIC
        + FORMAT_VERSION.to_bytes(4, "little")
        + len(header).to_bytes(4, "little")
        + header
    )
    padding = b"\x00" * (-len(prefix) % _ALIGN)
    blob = prefix + padding + payload

    final = os.fspath(path)
    tmp = f"{final}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    crashpoint("blob.post-temp.pre-rename")
    os.replace(tmp, final)
    crashpoint("blob.post-rename")
    _fsync_parent_dir(final)
    return len(blob)


def _fsync_parent_dir(final: str) -> None:
    """Durably record the rename in the directory entry.

    Without this a crash after ``os.replace`` can roll the directory
    back to the temp name (or to nothing) on some filesystems; with it
    the rename is as durable as the blob bytes.
    """
    parent = os.path.dirname(final) or "."
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def read_blob(path: str | os.PathLike[str], *, verify: bool = True) -> Blob:
    """Open a blob, returning zero-copy section views where possible.

    ``verify=True`` (the default) checks the payload crc32 — a full
    sequential read of the mapping, still orders of magnitude cheaper
    than recomputing an index.  Raises :class:`StoreError` for files that
    are not blobs and :class:`StoreCorruptionError` for truncated or
    checksum-failing ones.
    """
    final = os.fspath(path)
    with open(final, "rb") as handle:
        try:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            buffer = handle.read()

    if len(buffer) < 16 or bytes(buffer[:8]) != MAGIC:
        raise StoreError(f"{final}: not a store blob")
    version = int.from_bytes(buffer[8:12], "little")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"{final}: unsupported store format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    header_len = int.from_bytes(buffer[12:16], "little")
    if 16 + header_len > len(buffer):
        raise StoreCorruptionError(f"{final}: truncated header")
    try:
        header = json.loads(bytes(buffer[16 : 16 + header_len]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreCorruptionError(f"{final}: unreadable header: {exc}") from exc

    payload_start = 16 + header_len
    payload_start += -payload_start % _ALIGN
    payload_bytes = header.get("payload_bytes", -1)
    if payload_bytes < 0 or payload_start + payload_bytes > len(buffer):
        raise StoreCorruptionError(
            f"{final}: truncated payload "
            f"(declared {payload_bytes} bytes, file holds "
            f"{max(0, len(buffer) - payload_start)})"
        )
    payload_view = memoryview(buffer)[payload_start : payload_start + payload_bytes]
    if verify and zlib.crc32(payload_view) != header.get("crc32"):
        raise StoreCorruptionError(f"{final}: payload checksum mismatch")

    sections: dict = {}
    for entry in header.get("sections", ()):
        start = payload_start + entry["offset"]
        stop = start + 8 * entry["count"]
        if stop > payload_start + payload_bytes:
            raise StoreCorruptionError(
                f"{final}: section {entry['name']!r} overruns the payload"
            )
        sections[entry["name"]] = _section_view(buffer, start, stop)
    return Blob(final, header.get("kind", ""), header.get("meta", {}), sections, buffer)
