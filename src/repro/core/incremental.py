"""Frontier delta-folds: incremental VCT/ECS maintenance for appends.

The streaming service ingests edges in raw-timestamp order, so a pending
batch is always a *frontier*: every new edge is stamped at or past the
end of the built span.  The paper leaves insertion maintenance to future
work, but the structure it proves makes the ordered-append case
tractable — this module folds a frontier batch into existing multi-k
indexes without a full rebuild, producing arrays **entry-identical** to
``build_core_indexes`` over the concatenated edge list.

Why frontier appends cannot rewrite history (the immutability argument,
spelled out in ``docs/STREAMING.md``):

* A finite core time ``CT_ts(v) = c`` is witnessed by the window
  ``[ts, c]`` with ``c <= T`` (the old span end).  Appended edges are
  stamped ``> T``, so they enter no window ending at or before ``T`` —
  the witness stands, and no window ending earlier gains edges that
  could shrink ``c``.  Finite VCT entries are immutable; only
  previously-*infinite* ``(vertex, start)`` cells can change (they may
  become finite at some time ``> T``), plus the brand-new start region
  ``(T, T']``.
* An ECS window ``[t1, t2]`` with ``t2 <= T`` is decided by core times
  at starts ``t1`` and ``t1 + 1``, all finite or provably unchanged —
  the per-edge skyline only *extends on the right* (bi-monotone).

The fold therefore:

1. **extends** the graph and its :class:`~repro.graph.csr.CompiledGraph`
   in place of a recompile — edge/timestamp columns grow through
   capacity-doubled append buffers, pair/adjacency/incident sections are
   repacked with vectorised scatters (O(m) memory moves, no Python
   per-edge work) — yielding arrays value-identical to compiling the
   concatenated edge list from scratch (property-tested);
2. computes the **fold start** ``s_A``: the earliest start time at which
   any vertex's core time can differ, by a bounded Dijkstra-style
   cascade from the new edges' endpoints over per-(vertex, level)
   change-eligibility intervals derived from the old VCT arrays;
3. reruns the shared multi-k kernel on the **sub-span** ``[s_A, T']``
   only (:func:`repro.core.multik.compute_core_times_multi` — the same
   level-fused rounds, seeded by the decremental scan over the affected
   window), which is exact there because ``CT_ts`` depends only on edges
   stamped in ``[ts, T']``;
4. **merges** each level's old and sub-span arrays with one stable
   vectorised splice per side: old entries with start (or window ``t1``)
   before ``s_A`` are kept, sub-span entries replace the rest, with two
   boundary corrections for VCT (drop the sub-span's first entry when
   the value did not actually change at ``s_A``; insert an explicit
   ``(s_A, INF)`` transition when a vertex's finite prefix ends exactly
   there) and one for ECS (a new edge whose endpoints' finite prefixes
   end below ``s_A`` contributes one minimal window closing at the
   boundary, synthesised directly).

Batches that violate the frontier precondition fall back to a full
rebuild via :class:`FoldFallback` — the fold is *never wrong, only
sometimes refused*: a batch sharing the built graph's last raw timestamp
(its sorted position would reshuffle existing edge ids), an oversized
cascade, or a fold window above the caller's cost-model fraction.
"""

from __future__ import annotations

import heapq
import time
from collections import defaultdict
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.coretime import INF_CT, CoreTimeResult, VertexCoreTimeIndex
from repro.core.index import CoreIndex
from repro.core.windows import EdgeCoreSkyline
from repro.errors import GraphFormatError
from repro.graph.csr import CompiledGraph
from repro.graph.temporal_graph import TemporalEdge, TemporalGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    pass

#: Sentinel "no change possible before this start" — beyond any span.
_FAR = 1 << 60

#: Default ceiling on the change-cascade exploration (vertices settled).
DEFAULT_MAX_CASCADE = 200_000


class FoldFallback(Exception):
    """The batch cannot be folded incrementally; rebuild in full.

    Carries ``reason`` — a short machine-readable token (``"boundary-tie"``,
    ``"empty-base"``, ``"cascade-limit"``, ``"window-fraction"``, ...)
    surfaced through service stats.  Falling back is always safe: the
    full rebuild recomputes from the complete edge list.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class FoldReport:
    """What one incremental fold did (attached to the fold result)."""

    delta_edges: int
    new_vertices: int
    fold_start: int
    span_end: int
    window_edges: int
    window_fraction: float
    cascade_vertices: int
    seconds: float = 0.0


@dataclass
class DeltaFoldResult:
    """An extended graph + merged indexes, entry-identical to a rebuild."""

    graph: TemporalGraph
    indexes: dict[int, CoreIndex]
    report: FoldReport
    bufs: dict = field(repr=False, default_factory=dict)


def _as_i64(section) -> np.ndarray:
    """Zero-copy-where-possible int64 ndarray over any flat int64 section."""
    if isinstance(section, np.ndarray):
        return section
    if isinstance(section, (list, tuple)):
        return np.asarray(section, dtype=np.int64)
    if len(section) == 0:
        return np.empty(0, dtype=np.int64)
    return np.frombuffer(section, dtype=np.int64)


def _seg_indices(base: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ranges ``[base[i], base[i] + counts[i])`` (vectorised)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(base, counts) + within


class _GrowBuf:
    """Capacity-doubling int64 append buffer (amortised O(1)/element).

    ``view()`` is a zero-copy window over the filled prefix.  Appends
    never move committed entries within a capacity generation, and a
    growth reallocation leaves earlier views pointing at the old buffer
    — so compiled-graph snapshots handed out before an append stay
    immutable while the buffer keeps absorbing the stream.
    """

    __slots__ = ("_buf", "_len")

    def __init__(self, initial):
        arr = _as_i64(initial)
        self._len = int(arr.shape[0])
        self._buf = np.empty(max(16, self._len), dtype=np.int64)
        self._buf[: self._len] = arr

    def __len__(self) -> int:
        return self._len

    def extend(self, values: np.ndarray) -> None:
        need = self._len + int(values.shape[0])
        if need > self._buf.shape[0]:
            capacity = int(self._buf.shape[0])
            while capacity < need:
                capacity *= 2
            fresh = np.empty(capacity, dtype=np.int64)
            fresh[: self._len] = self._buf[: self._len]
            self._buf = fresh
        self._buf[self._len : need] = values
        self._len = need

    def view(self) -> np.ndarray:
        return self._buf[: self._len]


# ----------------------------------------------------------------------
# Step 1: graph + compiled-array extension
# ----------------------------------------------------------------------


def extend_graph(
    graph: TemporalGraph,
    batch: Iterable[tuple[Hashable, Hashable, int]],
    *,
    bufs: dict | None = None,
) -> tuple[TemporalGraph, list[TemporalEdge], dict]:
    """Extend a normalised graph with strictly-newer raw-timestamped edges.

    Returns ``(extended_graph, new_edges, bufs)`` where the extended
    graph's vertex ids, edge ids, normalised timestamps and compiled
    flat arrays are **identical** to ``TemporalGraph(old_raw + batch)``
    — guaranteed because every batch timestamp is strictly greater than
    the old last raw time, so the global ``(raw_t, u, v)`` sort is the
    old order followed by the sorted batch.  ``bufs`` carries the
    capacity-doubled append buffers between folds.

    Raises :class:`FoldFallback` when the precondition fails:
    ``"empty-base"`` (nothing built yet), ``"unnormalised-graph"``
    (``normalize_time=False`` graphs have no raw-time table), or
    ``"boundary-tie"`` (a batch edge shares the built graph's last raw
    timestamp — its sorted position would interleave before existing
    same-timestamp edges and reshuffle their ids).
    """
    if graph.num_edges == 0:
        raise FoldFallback("empty-base")
    if not graph._raw_times:
        raise FoldFallback("unnormalised-graph")

    label_ids = dict(graph._label_ids)
    labels = list(graph._labels)
    dropped = graph._num_dropped_self_loops
    raw_triples: list[tuple[int, int, int]] = []
    for index, edge in enumerate(batch):
        try:
            raw_u, raw_v, raw_t = edge
        except (TypeError, ValueError) as exc:
            raise GraphFormatError(
                f"edge #{index} is not a (u, v, t) triple: {edge!r}"
            ) from exc
        if not isinstance(raw_t, int):
            raise GraphFormatError(f"edge #{index} has non-integer timestamp {raw_t!r}")
        if raw_u == raw_v:
            dropped += 1
            continue
        u = label_ids.setdefault(raw_u, len(labels))
        if u == len(labels):
            labels.append(raw_u)
        v = label_ids.setdefault(raw_v, len(labels))
        if v == len(labels):
            labels.append(raw_v)
        if u > v:
            u, v = v, u
        raw_triples.append((raw_t, u, v))

    if not raw_triples:
        return graph, [], bufs if bufs is not None else {}
    raw_triples.sort()
    if raw_triples[0][0] <= graph._raw_times[-1]:
        raise FoldFallback("boundary-tie")

    raw_times = list(graph._raw_times)
    new_edges: list[TemporalEdge] = []
    for raw_t, u, v in raw_triples:
        if raw_t != raw_times[-1]:
            raw_times.append(raw_t)
        new_edges.append(TemporalEdge(u, v, len(raw_times)))

    old_tmax = graph.tmax
    new_tmax = len(raw_times)
    time_offset = list(graph._time_offset)
    counts = [0] * (new_tmax - old_tmax)
    for e in new_edges:
        counts[e.t - old_tmax - 1] += 1
    running = time_offset[-1]
    for c in counts:
        running += c
        time_offset.append(running)

    extended = TemporalGraph._from_parts(
        edges=graph._edges + tuple(new_edges),
        labels=tuple(labels),
        raw_times=tuple(raw_times),
        time_offset=tuple(time_offset),
        num_dropped_self_loops=dropped,
    )
    compiled, bufs = _extend_compiled(graph.compiled(), extended, new_edges, bufs)
    extended._compiled_cache = compiled
    return extended, new_edges, bufs


def _extend_compiled(
    cg: CompiledGraph,
    extended: TemporalGraph,
    new_edges: list[TemporalEdge],
    bufs: dict | None,
) -> tuple[CompiledGraph, dict]:
    """Extend the compiled flat arrays by the (sorted, frontier) batch.

    Every section of the returned view is value-identical to
    ``CompiledGraph(extended_graph)`` — including pair numbering and
    adjacency slot order, because new pairs are assigned ids in the
    batch's sorted first-occurrence order, exactly where a fresh compile
    would place them (all old edges sort before all new ones).
    """
    n = cg.num_vertices
    n2 = extended.num_vertices
    m = cg.num_edges
    d = len(new_edges)
    m2 = m + d

    new_u = np.fromiter((e.u for e in new_edges), np.int64, d)
    new_v = np.fromiter((e.v for e in new_edges), np.int64, d)
    new_t = np.fromiter((e.t for e in new_edges), np.int64, d)

    # --- edge columns: capacity-doubled appends (amortised O(|delta|)) ---
    if (
        bufs is None
        or "edge_u" not in bufs
        or len(bufs["edge_u"]) != m
        or bufs["edge_u"].view().base is not None
        and not np.shares_memory(bufs["edge_u"].view(), _as_i64(cg.edge_u))
    ):
        bufs = {
            "edge_u": _GrowBuf(cg.edge_u),
            "edge_v": _GrowBuf(cg.edge_v),
            "edge_t": _GrowBuf(cg.edge_t),
        }
    bufs["edge_u"].extend(new_u)
    bufs["edge_v"].extend(new_v)
    bufs["edge_t"].extend(new_t)
    edge_u2 = bufs["edge_u"].view()
    edge_v2 = bufs["edge_v"].view()
    edge_t2 = bufs["edge_t"].view()

    adj_offsets = _as_i64(cg.adj_offsets)
    adj_neighbour = _as_i64(cg.adj_neighbour)
    slot_pid_old = _as_i64(cg.slot_pid)
    pair_offset_old = _as_i64(cg.pair_offset)
    pair_times_old = _as_i64(cg.pair_times)
    old_esu = _as_i64(cg.edge_slot_u)
    old_esv = _as_i64(cg.edge_slot_v)

    # --- pair membership of each new edge (ids in first-occurrence order) ---
    P = cg.num_pairs
    new_pair_ids: dict[tuple[int, int], int] = {}
    pid_of_new = np.empty(d, dtype=np.int64)
    # Old-pair slots located during lookup (reused for the edge→slot maps).
    su_old = np.full(d, -1, dtype=np.int64)
    sv_old = np.full(d, -1, dtype=np.int64)
    for i in range(d):
        u = int(new_u[i])
        v = int(new_v[i])
        pid = -1
        if u < n and v < n:
            lo, hi = int(adj_offsets[u]), int(adj_offsets[u + 1])
            slot = lo + int(np.searchsorted(adj_neighbour[lo:hi], v))
            if slot < hi and int(adj_neighbour[slot]) == v:
                pid = int(slot_pid_old[slot])
                su_old[i] = slot
                lo_v, hi_v = int(adj_offsets[v]), int(adj_offsets[v + 1])
                sv_old[i] = lo_v + int(
                    np.searchsorted(adj_neighbour[lo_v:hi_v], u)
                )
        if pid < 0:
            pid = new_pair_ids.setdefault((u, v), P + len(new_pair_ids))
        pid_of_new[i] = pid
    P2 = P + len(new_pair_ids)

    # --- pair_offset / pair_times: vectorised shift-scatter repack ---
    old_counts = pair_offset_old[1:] - pair_offset_old[:-1]
    add_counts = np.zeros(P2, dtype=np.int64)
    np.add.at(add_counts, pid_of_new, 1)
    counts2 = add_counts.copy()
    counts2[:P] += old_counts
    pair_offset2 = np.zeros(P2 + 1, dtype=np.int64)
    np.cumsum(counts2, out=pair_offset2[1:])
    pair_times2 = np.empty(int(pair_offset2[-1]), dtype=np.int64)
    old_total = int(pair_offset_old[-1])
    if old_total:
        shift = pair_offset2[:P] - pair_offset_old[:-1]
        pair_times2[np.arange(old_total) + np.repeat(shift, old_counts)] = (
            pair_times_old
        )
    if d:
        # New times land at each pair's tail (all are > old times), in
        # batch order within a pair (nondecreasing — the batch is sorted).
        order = np.argsort(pid_of_new, kind="stable")
        sorted_pids = pid_of_new[order]
        rank = np.arange(d) - np.searchsorted(sorted_pids, sorted_pids)
        tail = pair_offset2[sorted_pids] + (counts2 - add_counts)[sorted_pids]
        pair_times2[tail + rank] = new_t[order]

    # --- adjacency CSR: untouched unless the batch introduced pairs ---
    S = cg.num_slots
    if P2 == P and n2 == n:
        adj_offsets2 = adj_offsets
        adj_neighbour2 = adj_neighbour
        slot_pid2 = slot_pid_old
        slotmap: np.ndarray | None = None  # identity
        num_slots2 = S
        new_slot_of: dict[tuple[int, int], int] = {}
    else:
        inserts: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for (u, v), pid in new_pair_ids.items():
            inserts[u].append((v, pid))
            inserts[v].append((u, pid))
        old_deg = adj_offsets[1:] - adj_offsets[:-1]
        deg2 = np.zeros(n2, dtype=np.int64)
        deg2[:n] = old_deg
        for u, lst in inserts.items():
            deg2[u] += len(lst)
        adj_offsets2 = np.zeros(n2 + 1, dtype=np.int64)
        np.cumsum(deg2, out=adj_offsets2[1:])
        num_slots2 = int(adj_offsets2[-1])
        adj_neighbour2 = np.empty(num_slots2, dtype=np.int64)
        slot_pid2 = np.empty(num_slots2, dtype=np.int64)
        if S:
            slotmap = np.arange(S, dtype=np.int64) + np.repeat(
                adj_offsets2[:n] - adj_offsets[:-1], old_deg
            )
            adj_neighbour2[slotmap] = adj_neighbour
            slot_pid2[slotmap] = slot_pid_old
        else:
            slotmap = np.empty(0, dtype=np.int64)
        new_slot_of = {}
        for u, lst in inserts.items():
            lst.sort()
            base = int(adj_offsets2[u])
            if u < n:
                lo, hi = int(adj_offsets[u]), int(adj_offsets[u + 1])
                old_nb = adj_neighbour[lo:hi]
                old_pd = slot_pid_old[lo:hi]
            else:
                lo = hi = 0
                old_nb = old_pd = np.empty(0, dtype=np.int64)
            ins_nb = np.fromiter((v for v, _ in lst), np.int64, len(lst))
            ins_pd = np.fromiter((p for _, p in lst), np.int64, len(lst))
            ipos = np.searchsorted(old_nb, ins_nb)
            old_dst = (
                base
                + np.arange(old_nb.shape[0], dtype=np.int64)
                + np.searchsorted(
                    ipos, np.arange(old_nb.shape[0], dtype=np.int64), side="right"
                )
            )
            new_dst = base + ipos + np.arange(len(lst), dtype=np.int64)
            adj_neighbour2[old_dst] = old_nb
            slot_pid2[old_dst] = old_pd
            adj_neighbour2[new_dst] = ins_nb
            slot_pid2[new_dst] = ins_pd
            if u < n:
                slotmap[lo:hi] = old_dst
            for j, (v, _pid) in enumerate(lst):
                new_slot_of[(u, v)] = int(new_dst[j])

    # --- slot-derived sections (pair_offset moved, so always regathered) ---
    slot_pid2_np = _as_i64(slot_pid2)
    slot_times_start2 = pair_offset2[slot_pid2_np]
    slot_times_end2 = pair_offset2[slot_pid2_np + 1]
    slot_count2 = slot_times_end2 - slot_times_start2
    adj_offsets2_np = _as_i64(adj_offsets2)
    full_degree2 = adj_offsets2_np[1:] - adj_offsets2_np[:-1]

    # --- edge → slot maps ---
    new_su = np.empty(d, dtype=np.int64)
    new_sv = np.empty(d, dtype=np.int64)
    for i in range(d):
        if su_old[i] >= 0:
            if slotmap is None:
                new_su[i] = su_old[i]
                new_sv[i] = sv_old[i]
            else:
                new_su[i] = slotmap[su_old[i]]
                new_sv[i] = slotmap[sv_old[i]]
        else:
            u, v = int(new_u[i]), int(new_v[i])
            new_su[i] = new_slot_of[(u, v)]
            new_sv[i] = new_slot_of[(v, u)]
    if slotmap is None:
        if "edge_slot_u" not in bufs or len(bufs["edge_slot_u"]) != m:
            bufs["edge_slot_u"] = _GrowBuf(old_esu)
            bufs["edge_slot_v"] = _GrowBuf(old_esv)
        bufs["edge_slot_u"].extend(new_su)
        bufs["edge_slot_v"].extend(new_sv)
        edge_slot_u2 = bufs["edge_slot_u"].view()
        edge_slot_v2 = bufs["edge_slot_v"].view()
    else:
        edge_slot_u2 = np.concatenate([slotmap[old_esu], new_su])
        edge_slot_v2 = np.concatenate([slotmap[old_esv], new_sv])
        bufs["edge_slot_u"] = _GrowBuf(edge_slot_u2)
        bufs["edge_slot_v"] = _GrowBuf(edge_slot_v2)
        edge_slot_u2 = bufs["edge_slot_u"].view()
        edge_slot_v2 = bufs["edge_slot_v"].view()

    # --- incident CSR: shift-scatter old entries, append tails in eid order ---
    old_inc_off = _as_i64(cg.inc_offsets)
    old_inc_counts = old_inc_off[1:] - old_inc_off[:-1]
    add_inc = np.zeros(n2, dtype=np.int64)
    np.add.at(add_inc, new_u, 1)
    np.add.at(add_inc, new_v, 1)
    inc_counts2 = add_inc.copy()
    inc_counts2[:n] += old_inc_counts
    inc_offsets2 = np.zeros(n2 + 1, dtype=np.int64)
    np.cumsum(inc_counts2, out=inc_offsets2[1:])
    total_inc = int(inc_offsets2[-1])
    inc_time2 = np.empty(total_inc, dtype=np.int64)
    inc_other2 = np.empty(total_inc, dtype=np.int64)
    inc_eid2 = np.empty(total_inc, dtype=np.int64)
    old_inc_total = int(old_inc_off[-1])
    if old_inc_total:
        dst = np.arange(old_inc_total) + np.repeat(
            inc_offsets2[:n] - old_inc_off[:-1], old_inc_counts
        )
        inc_time2[dst] = _as_i64(cg.np_inc_time)
        inc_other2[dst] = _as_i64(cg.np_inc_other)
        inc_eid2[dst] = _as_i64(cg.np_inc_eid)
    cursor = (inc_offsets2[:n2] + inc_counts2 - add_inc).copy()
    for i in range(d):
        u, v, t = int(new_u[i]), int(new_v[i]), int(new_t[i])
        eid = m + i
        pos = cursor[u]
        inc_time2[pos] = t
        inc_other2[pos] = v
        inc_eid2[pos] = eid
        cursor[u] = pos + 1
        pos = cursor[v]
        inc_time2[pos] = t
        inc_other2[pos] = u
        inc_eid2[pos] = eid
        cursor[v] = pos + 1

    # --- assemble the extended compiled view ---
    cg2 = CompiledGraph.__new__(CompiledGraph)
    cg2.num_vertices = n2
    cg2.num_edges = m2
    cg2.tmax = extended.tmax
    cg2.num_slots = num_slots2
    cg2.num_pairs = P2
    cg2.edge_u = edge_u2
    cg2.edge_v = edge_v2
    cg2.edge_t = edge_t2
    cg2.time_offset = extended.time_offsets()
    cg2.adj_offsets = adj_offsets2_np
    cg2.adj_neighbour = _as_i64(adj_neighbour2)
    cg2.slot_pid = slot_pid2_np
    cg2.slot_times_start = slot_times_start2
    cg2.slot_times_end = slot_times_end2
    cg2.slot_count = slot_count2
    cg2.pair_offset = pair_offset2
    cg2.pair_times = pair_times2
    cg2.full_degree = full_degree2
    cg2.edge_slot_u = edge_slot_u2
    cg2.edge_slot_v = edge_slot_v2
    cg2.inc_offsets = inc_offsets2
    cg2.np_adj_neighbour = cg2.adj_neighbour
    cg2.np_slot_pid = slot_pid2_np
    cg2.np_slot_first_time = (
        pair_times2[slot_times_start2]
        if num_slots2
        else np.empty(0, dtype=np.int64)
    )
    cg2.np_edge_u = edge_u2
    cg2.np_edge_v = edge_v2
    cg2.np_edge_t = edge_t2
    cg2.np_edge_slot_u = edge_slot_u2
    cg2.np_inc_time = inc_time2
    cg2.np_inc_other = inc_other2
    cg2.np_inc_eid = inc_eid2
    return cg2, bufs


# ----------------------------------------------------------------------
# Step 2: the fold start — where can core times differ at all?
# ----------------------------------------------------------------------


def _first_inf_by_level(
    indexes: dict[int, CoreIndex], ks: list[int], n2: int, old_tmax: int
) -> dict[int, np.ndarray]:
    """Per level: the first start where each vertex's old core time is INF.

    Core times are monotone nondecreasing in the start, so every vertex
    is finite on a (possibly empty) *prefix* of starts and infinite
    after; the old VCT encodes that boundary as the start of a trailing
    ``INF`` entry.  Vertices with no entries were never in the k-core
    (boundary 1); vertices whose last entry is finite stay finite
    through the whole old span (boundary ``old_tmax + 1``).  New
    vertices (ids past the old count) get boundary 1.
    """
    out: dict[int, np.ndarray] = {}
    for k in ks:
        offsets, starts, cts = (
            _as_i64(part) for part in indexes[k].vct.flat_parts()
        )
        n_old = offsets.shape[0] - 1
        first_inf = np.ones(n2, dtype=np.int64)
        counts = offsets[1:] - offsets[:-1]
        holders = np.flatnonzero(counts > 0)
        if holders.shape[0]:
            last = offsets[holders + 1] - 1
            first_inf[holders] = np.where(
                cts[last] == INF_CT, starts[last], old_tmax + 1
            )
        out[k] = first_inf
    return out


def _fold_start(
    cg2: CompiledGraph,
    first_inf: dict[int, np.ndarray],
    ks: list[int],
    new_edges: list[TemporalEdge],
    old_tmax: int,
    *,
    max_cascade: int,
) -> tuple[int, int]:
    """Earliest start where any core time can change, via a bounded cascade.

    Per (vertex, level), changes are confined to starts in
    ``[first_inf, reach]`` where ``reach`` is the level-k-th largest
    last-pair-time in the extended graph (past it the vertex lacks k
    active pairs and stays infinite; finite old values are immutable, so
    below ``first_inf`` nothing moves either — and the old finite prefix
    forces ``reach >= first_inf - 1``, so an empty interval proves the
    vertex unchanged at that level).  A change propagates from ``x`` to
    a neighbour ``w`` only at a shared start where the pair is still
    active, so running Dijkstra from the new edges' endpoints over
    ``L(w) = max(L(x), f(w))`` edges (gated by each pair's last time)
    settles every potentially-affected vertex at the earliest start it
    can change.  Starts past ``old_tmax`` are always recomputed by the
    sub-span run, so candidates there are pruned immediately.

    Returns ``(fold_start, settled_count)``; raises
    :class:`FoldFallback` (``"cascade-limit"``) when the exploration
    exceeds ``max_cascade`` settled vertices.
    """
    adj_offsets = _as_i64(cg2.adj_offsets)
    adj_neighbour = cg2.np_adj_neighbour
    slot_times_end = _as_i64(cg2.slot_times_end)
    pair_times = _as_i64(cg2.pair_times)

    def reach(w: int, k: int) -> int:
        lo, hi = int(adj_offsets[w]), int(adj_offsets[w + 1])
        degree = hi - lo
        if degree < k:
            return 0
        last = pair_times[slot_times_end[lo:hi] - 1]
        if k == 1:
            return int(last.max())
        return int(np.partition(last, degree - k)[degree - k])

    f_cache: dict[int, int] = {}

    def f_eff(w: int) -> int:
        cached = f_cache.get(w)
        if cached is not None:
            return cached
        best = _FAR
        for k in ks:
            fi = int(first_inf[k][w])
            if fi < best and fi <= reach(w, k):
                best = fi
        f_cache[w] = best
        return best

    tentative: dict[int, int] = {}
    heap: list[tuple[int, int]] = []
    for w in {e.u for e in new_edges} | {e.v for e in new_edges}:
        f = f_eff(w)
        if f <= old_tmax:
            tentative[w] = f
            heapq.heappush(heap, (f, w))
    settled: set[int] = set()
    fold_start = old_tmax + 1
    while heap:
        lw, w = heapq.heappop(heap)
        if w in settled:
            continue
        settled.add(w)
        if len(settled) > max_cascade:
            raise FoldFallback("cascade-limit")
        if lw < fold_start:
            fold_start = lw
        for slot in range(int(adj_offsets[w]), int(adj_offsets[w + 1])):
            x = int(adj_neighbour[slot])
            if x in settled:
                continue
            fx = f_eff(x)
            candidate = lw if lw > fx else fx
            if candidate > old_tmax:
                continue
            if candidate > int(pair_times[int(slot_times_end[slot]) - 1]):
                continue  # pair inactive at every start the change reaches
            current = tentative.get(x)
            if current is None or candidate < current:
                tentative[x] = candidate
                heapq.heappush(heap, (candidate, x))
    return fold_start, len(settled)


# ----------------------------------------------------------------------
# Step 3 + 4: sub-span recompute and the per-level stable merges
# ----------------------------------------------------------------------


def _segment_cut(
    offsets: np.ndarray, values: np.ndarray, bound: int, stride: int
) -> np.ndarray:
    """Per segment, how many leading entries have ``value < bound``.

    ``values`` must be ascending within each CSR segment; one global
    ``searchsorted`` over the composite key ``segment * stride + value``
    answers every segment at once (the key is globally sorted because
    ``stride`` exceeds every value).
    """
    count = offsets.shape[0] - 1
    counts = offsets[1:] - offsets[:-1]
    composite = (
        np.repeat(np.arange(count, dtype=np.int64), counts) * stride + values
    )
    probes = np.arange(count, dtype=np.int64) * stride + bound
    return np.searchsorted(composite, probes) - offsets[:-1]


def _merge_level(
    k: int,
    old_index: CoreIndex,
    sub: CoreTimeResult,
    fold_start: int,
    first_inf_k: np.ndarray,
    new_edges: list[TemporalEdge],
    old_num_edges: int,
    new_tmax: int,
) -> CoreTimeResult:
    """Splice one level's old and sub-span arrays into full-span results."""
    stride = new_tmax + 2

    # ---- VCT ----
    off_o, st_o, ct_o = (_as_i64(p) for p in old_index.vct.flat_parts())
    off_s, st_s, ct_s = (_as_i64(p) for p in sub.vct.flat_parts())
    n_old = off_o.shape[0] - 1
    n2 = off_s.shape[0] - 1

    cut = np.zeros(n2, dtype=np.int64)
    cut[:n_old] = _segment_cut(off_o, st_o, fold_start, stride)
    # The old value at fold_start - 1 (INF when the prefix is empty).
    old_last = np.full(n2, INF_CT, dtype=np.int64)
    holders = np.flatnonzero(cut[:n_old] > 0)
    if holders.shape[0]:
        old_last[holders] = ct_o[off_o[holders] + cut[holders] - 1]

    sub_counts = off_s[1:] - off_s[:-1]
    has_sub = sub_counts > 0
    # A vertex finite at fold_start always opens the sub-span VCT with an
    # entry *at* fold_start (the initial scan emits every finite vertex),
    # and a vertex infinite there stays infinite for the whole sub-span
    # (monotone finite prefix) — so segment emptiness fully classifies
    # the boundary.
    first_ct = np.full(n2, INF_CT, dtype=np.int64)
    first_ct[has_sub] = ct_s[off_s[:-1][has_sub]]
    drop = (has_sub & (first_ct == old_last)).astype(np.int64)
    insert = (~has_sub & (old_last != INF_CT)).astype(np.int64)

    out_counts = cut + (sub_counts - drop) + insert
    out_off = np.zeros(n2 + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_off[1:])
    total = int(out_off[-1])
    out_st = np.empty(total, dtype=np.int64)
    out_ct = np.empty(total, dtype=np.int64)
    src = _seg_indices(off_o[:-1], cut[:n_old])
    dst = _seg_indices(out_off[:n_old], cut[:n_old])
    out_st[dst] = st_o[src]
    out_ct[dst] = ct_o[src]
    ins_at = (out_off[:-1] + cut)[insert.astype(bool)]
    out_st[ins_at] = fold_start
    out_ct[ins_at] = INF_CT
    take = sub_counts - drop
    src = _seg_indices(off_s[:-1] + drop, take)
    dst = _seg_indices(out_off[:-1] + cut + insert, take)
    out_st[dst] = st_s[src]
    out_ct[dst] = ct_s[src]
    vct = VertexCoreTimeIndex.from_flat(out_off, out_st, out_ct, k, (1, new_tmax))

    # ---- ECS ----
    assert sub.ecs is not None
    off_eo, t1_o, t2_o = (_as_i64(p) for p in old_index.ecs.flat_parts())
    off_es, t1_s, t2_s = (_as_i64(p) for p in sub.ecs.flat_parts())
    m2 = off_es.shape[0] - 1

    ecut = np.zeros(m2, dtype=np.int64)
    ecut[:old_num_edges] = _segment_cut(off_eo, t1_o, fold_start, stride)
    # A new edge whose endpoints were both finite below the boundary has
    # a constant window value equal to its own timestamp there; if the
    # value strictly rises at the boundary, exactly one minimal window
    # closes at boundary - 1 and the sub-span run (which starts at
    # fold_start) cannot see it — synthesise it.  The boundary is the
    # earlier of fold_start and the endpoints' finite-prefix end; in the
    # latter case the prefix ends on an unchanged (infinite) value, so
    # the rise is unconditional.
    pre_t1 = np.full(m2, -1, dtype=np.int64)
    pre_t2 = np.empty(m2, dtype=np.int64)
    big = np.int64(1 << 61)
    at_start = np.where(has_sub, first_ct, big)
    for j, edge in enumerate(new_edges):
        eid = old_num_edges + j
        finite_end = int(min(first_inf_k[edge.u], first_inf_k[edge.v]))
        boundary = min(finite_end, fold_start)
        if boundary < 2:
            continue
        if finite_end < fold_start:
            rises = True
        else:
            cu = int(at_start[edge.u])
            cv = int(at_start[edge.v])
            rises = max(cu, cv, edge.t) > edge.t
        if rises:
            pre_t1[eid] = boundary - 1
            pre_t2[eid] = edge.t
    pre = (pre_t1 >= 0).astype(np.int64)

    sub_ecounts = off_es[1:] - off_es[:-1]
    eout_counts = ecut + pre + sub_ecounts
    eout_off = np.zeros(m2 + 1, dtype=np.int64)
    np.cumsum(eout_counts, out=eout_off[1:])
    etotal = int(eout_off[-1])
    out_t1 = np.empty(etotal, dtype=np.int64)
    out_t2 = np.empty(etotal, dtype=np.int64)
    src = _seg_indices(off_eo[:-1], ecut[:old_num_edges])
    dst = _seg_indices(eout_off[:old_num_edges], ecut[:old_num_edges])
    out_t1[dst] = t1_o[src]
    out_t2[dst] = t2_o[src]
    pre_mask = pre.astype(bool)
    pre_at = (eout_off[:-1] + ecut)[pre_mask]
    out_t1[pre_at] = pre_t1[pre_mask]
    out_t2[pre_at] = pre_t2[pre_mask]
    src = _seg_indices(off_es[:-1], sub_ecounts)
    dst = _seg_indices(eout_off[:-1] + ecut + pre, sub_ecounts)
    out_t1[dst] = t1_s[src]
    out_t2[dst] = t2_s[src]
    ecs = EdgeCoreSkyline.from_flat(eout_off, out_t1, out_t2, k, (1, new_tmax))
    return CoreTimeResult(vct=vct, ecs=ecs)


# ----------------------------------------------------------------------
# The fold
# ----------------------------------------------------------------------


def delta_fold(
    graph: TemporalGraph,
    indexes: dict[int, CoreIndex],
    batch: Iterable[tuple[Hashable, Hashable, int]],
    *,
    max_window_fraction: float | None = None,
    max_cascade: int = DEFAULT_MAX_CASCADE,
    bufs: dict | None = None,
) -> DeltaFoldResult:
    """Fold a frontier batch into existing full-span multi-k indexes.

    ``indexes`` maps every registered ``k`` to its current
    :class:`~repro.core.index.CoreIndex` over ``graph``; the returned
    result carries the extended graph and, for each ``k``, an index
    entry-identical to ``build_core_indexes`` over the concatenated edge
    list.  Raises :class:`FoldFallback` when the batch is not foldable
    or the cost model refuses (``max_window_fraction`` bounds the share
    of edges the sub-span recompute may touch; ``max_cascade`` bounds
    the affected-vertex exploration).  Inputs are never mutated — a
    fallback can simply rebuild.
    """
    from repro.core.multik import compute_core_times_multi
    from repro.testing.crashpoints import crashpoint

    started = time.perf_counter()
    ks = sorted(indexes)
    if not ks:
        raise FoldFallback("no-indexes")
    for k in ks:
        if indexes[k].vct.flat_parts()[0].__len__() - 1 > graph.num_vertices:
            raise FoldFallback("index-graph-mismatch")

    old_tmax = graph.tmax
    extended, new_edges, bufs = extend_graph(graph, batch, bufs=bufs)
    if not new_edges:
        report = FoldReport(
            delta_edges=0,
            new_vertices=0,
            fold_start=old_tmax + 1,
            span_end=old_tmax,
            window_edges=0,
            window_fraction=0.0,
            cascade_vertices=0,
            seconds=time.perf_counter() - started,
        )
        return DeltaFoldResult(graph, dict(indexes), report, bufs)

    new_tmax = extended.tmax
    m2 = extended.num_edges
    cg2 = extended.compiled()
    first_inf = _first_inf_by_level(indexes, ks, extended.num_vertices, old_tmax)
    fold_start, cascade = _fold_start(
        cg2, first_inf, ks, new_edges, old_tmax, max_cascade=max_cascade
    )
    window_edges = m2 - extended.time_offsets()[fold_start]
    fraction = window_edges / m2
    if max_window_fraction is not None and fraction > max_window_fraction:
        raise FoldFallback("window-fraction")

    sub = compute_core_times_multi(
        extended, ks, ts=fold_start, te=new_tmax, with_skyline=True
    )
    crashpoint("fold.merge")
    per_level = (time.perf_counter() - started) / len(ks)
    merged: dict[int, CoreIndex] = {}
    for k in ks:
        result = _merge_level(
            k,
            indexes[k],
            sub[k],
            fold_start,
            first_inf[k],
            new_edges,
            graph.num_edges,
            new_tmax,
        )
        merged[k] = CoreIndex.from_core_times(
            extended, k, result, build_seconds=per_level
        )
    report = FoldReport(
        delta_edges=len(new_edges),
        new_vertices=extended.num_vertices - graph.num_vertices,
        fold_start=fold_start,
        span_end=new_tmax,
        window_edges=int(window_edges),
        window_fraction=float(fraction),
        cascade_vertices=cascade,
        seconds=time.perf_counter() - started,
    )
    return DeltaFoldResult(extended, merged, report, bufs)


class DeltaFold:
    """Stateful folder: carries the snapshot and append buffers between folds.

    The streaming service owns one of these per built graph generation;
    each :meth:`fold` advances ``graph``/``indexes`` to fresh immutable
    snapshots (earlier ones remain valid — readers never see a
    half-merged index) while the internal capacity-doubled buffers
    absorb the edge columns with amortised O(|delta|) copying.
    """

    def __init__(self, graph: TemporalGraph, indexes: dict[int, CoreIndex]):
        self.graph = graph
        self.indexes = dict(indexes)
        self._bufs: dict | None = None

    def fold(
        self,
        batch: Iterable[tuple[Hashable, Hashable, int]],
        *,
        max_window_fraction: float | None = None,
        max_cascade: int = DEFAULT_MAX_CASCADE,
    ) -> FoldReport:
        """Fold ``batch`` in; adopt the extended snapshot on success."""
        result = delta_fold(
            self.graph,
            self.indexes,
            batch,
            max_window_fraction=max_window_fraction,
            max_cascade=max_cascade,
            bufs=self._bufs,
        )
        self.graph = result.graph
        self.indexes = result.indexes
        self._bufs = result.bufs
        return result.report
