"""The high-level query façade — the library's front door.

:class:`TimeRangeCoreQuery` wraps the full pipeline (Algorithm 2 + 5) and
the alternative engines behind one object with validated parameters:

>>> from repro import TemporalGraph, TimeRangeCoreQuery
>>> g = TemporalGraph([("a", "b", 1), ("b", "c", 1), ("a", "c", 2)])
>>> result = TimeRangeCoreQuery(g, k=2, time_range=(1, 2)).run()
>>> result.num_results
1
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.baselines.bruteforce import enumerate_bruteforce
from repro.baselines.otcd import enumerate_otcd
from repro.core.coretime import CoreTimeResult, compute_core_times
from repro.core.enumbase import enumerate_temporal_kcores_base
from repro.core.index import CoreIndexRegistry, DEFAULT_REGISTRY
from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.timing import Deadline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.sinks import ResultSink

#: Engines selectable by name.  ``enum`` is the paper's final algorithm;
#: ``index`` answers from a shared full-span CoreIndex (built once per
#: ``(graph, k)`` and cached in an LRU registry), which is the serving
#: path for repeated queries against the same graph.
ENGINES = ("enum", "enumbase", "otcd", "otcd-nopruning", "bruteforce", "index")


@dataclass
class TimeRangeCoreQuery:
    """A time-range k-core query over a temporal graph.

    Parameters
    ----------
    graph:
        The temporal graph (timestamps normalised to ``1..tmax``).
        Graphs are immutable once constructed, so a query object never
        observes its graph changing underneath it.
    k:
        Minimum distinct-neighbour degree of the cores (``>= 1``).
    time_range:
        Query range ``(Ts, Te)`` in normalised timestamps; defaults to
        the graph's full span.  Validated on construction
        (:class:`~repro.errors.InvalidParameterError` on a window
        outside ``1..tmax`` or with ``Ts > Te``).
    engine:
        One of :data:`ENGINES`.  ``enum`` recomputes per query (the
        paper's pipeline); ``index`` serves from a shared full-span
        :class:`~repro.core.index.CoreIndex` and is the right choice for
        repeated queries against one graph.
    collect:
        Materialise cores (default) or stream counters only.
    timeout:
        Optional per-query soft deadline in seconds; on expiry the result
        is returned partially filled with ``completed=False``.  For
        ``engine="index"`` the deadline governs the enumeration only: a
        cold-cache index build runs to completion (a partial index would
        be useless to later queries), so the first query against a
        ``(graph, k)`` can overshoot the deadline by the build time.
    registry:
        Index registry consulted by ``engine="index"``; defaults to the
        process-wide :data:`repro.core.index.DEFAULT_REGISTRY`.  Ignored
        by the other engines.  Attach an
        :class:`~repro.store.index_store.IndexStore` to the registry to
        make cold queries open persisted indexes instead of computing.

    Thread-safety: instances are cheap value objects — build one per
    query rather than sharing one across threads.  Concurrent ``run()``
    calls are safe when they go through ``engine="index"`` (the registry
    locks internally) or operate on distinct graphs; the direct engines
    share nothing but the immutable graph.
    """

    graph: TemporalGraph
    k: int
    time_range: tuple[int, int] | None = None
    engine: str = "enum"
    collect: bool = True
    timeout: float | None = None
    registry: CoreIndexRegistry | None = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise InvalidParameterError(
                f"unknown engine {self.engine!r}; choose one of {ENGINES}"
            )
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        if self.time_range is None:
            self.time_range = (1, self.graph.tmax)
        self.graph.check_window(*self.time_range)

    # ------------------------------------------------------------------

    def run(self, *, sink: "ResultSink | None" = None) -> EnumerationResult:
        """Execute the query and return the enumeration result.

        Safe to call repeatedly; each call answers with the configured
        engine (``engine="index"`` reuses the registry-cached index, so
        only the first call on a cold ``(graph, k)`` pays a build).

        The serving engines (``enum`` and ``index``) plan the query
        through :mod:`repro.serve` — ``enum`` as a direct-compute plan
        (Algorithm 2 over the range, the paper's pipeline), ``index``
        as an index-cut plan against the registry — and accept an
        optional delivery ``sink`` (:mod:`repro.serve.sinks`): NDJSON
        streaming, counting, flat arrays.  The baseline engines ignore
        ``sink``.
        """
        ts, te = self.time_range
        deadline = Deadline(self.timeout) if self.timeout is not None else None
        if self.engine in ("enum", "index"):
            from repro.serve.executor import execute_plan
            from repro.serve.planner import QueryRequest, plan_queries

            plan = plan_queries(
                [QueryRequest(self.graph, self.k, ts, te, sink=sink)],
                engine="direct" if self.engine == "enum" else "index",
            )
            registry = self.registry if self.registry is not None else DEFAULT_REGISTRY
            return execute_plan(
                plan, registry=registry, collect=self.collect, deadline=deadline
            )[0]
        if self.engine == "enumbase":
            return enumerate_temporal_kcores_base(
                self.graph, self.k, ts, te, collect=self.collect, deadline=deadline
            )
        if self.engine == "otcd":
            return enumerate_otcd(
                self.graph, self.k, ts, te, collect=self.collect, deadline=deadline
            )
        if self.engine == "otcd-nopruning":
            return enumerate_otcd(
                self.graph,
                self.k,
                ts,
                te,
                use_pruning=False,
                collect=self.collect,
                deadline=deadline,
            )
        return enumerate_bruteforce(
            self.graph, self.k, ts, te, collect=self.collect, deadline=deadline
        )

    def core_times(self) -> CoreTimeResult:
        """The VCT index and edge skyline for this query's range.

        Always computed fresh over ``time_range`` (no registry/index
        involvement) — the inspection hook for the paper's Tables I/II.
        """
        ts, te = self.time_range
        return compute_core_times(self.graph, self.k, ts, te)
