"""Minimal core windows and the edge core window skyline (ECS).

Definition 5 of the paper: a *minimal core window* of an edge ``e`` is a
time window ``[t1, t2]`` such that ``e`` belongs to the k-core of
``G[t1, t2]`` but of no proper sub-window.  Per edge, minimal windows form
a *skyline*: sorted by start time they are strictly increasing in both
coordinates (a window dominated in both coordinates would not be minimal).

:class:`EdgeCoreSkyline` stores the skyline of every edge for a fixed k
and a computation range, and knows how to re-target itself onto a narrower
query range (used when one prebuilt index serves many queries).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import InvalidParameterError


class EdgeCoreSkyline:
    """Per-edge minimal core windows for a fixed ``k`` over ``[ts, te]``.

    Parameters
    ----------
    windows_by_edge:
        ``windows_by_edge[eid]`` is the tuple of ``(t1, t2)`` minimal core
        windows of temporal edge ``eid``, ordered by (strictly increasing)
        start time.  Edges that are never in any k-core have an empty
        tuple.
    k, span:
        The query integer and the computation range the skyline refers to.
    """

    __slots__ = ("k", "span", "_windows")

    def __init__(
        self,
        windows_by_edge: list[tuple[tuple[int, int], ...]],
        k: int,
        span: tuple[int, int],
    ):
        self.k = k
        self.span = span
        self._windows = windows_by_edge

    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self._windows)

    def windows_of(self, eid: int) -> tuple[tuple[int, int], ...]:
        """Minimal core windows of edge ``eid`` (possibly empty)."""
        return self._windows[eid]

    def size(self) -> int:
        """``|ECS|`` — total number of minimal core windows."""
        return sum(len(self.windows_of(eid)) for eid in range(self.num_edges))

    def __iter__(self) -> Iterator[tuple[int, tuple[int, int]]]:
        """Yield ``(eid, (t1, t2))`` for every window of every edge."""
        for eid in range(self.num_edges):
            for window in self.windows_of(eid):
                yield eid, window

    def check_skyline_invariant(self) -> None:
        """Assert the strict bi-monotonicity of every per-edge skyline."""
        ts, te = self.span
        for eid in range(self.num_edges):
            windows = self.windows_of(eid)
            previous: tuple[int, int] | None = None
            for t1, t2 in windows:
                if t1 < ts or t2 > te or t1 > t2:
                    raise AssertionError(
                        f"edge {eid}: window ({t1}, {t2}) outside span {self.span}"
                    )
                if previous is not None and (t1 <= previous[0] or t2 <= previous[1]):
                    raise AssertionError(
                        f"edge {eid}: skyline not strictly increasing at ({t1}, {t2})"
                    )
                previous = (t1, t2)

    # ------------------------------------------------------------------

    def restricted_to(self, ts: int, te: int) -> "EdgeCoreSkyline":
        """Skyline filtered to windows contained in ``[ts, te]``.

        Minimal core windows are intrinsic to the graph (Definition 5 does
        not depend on the query range), so the skyline of a sub-range is
        exactly the subset of windows inside it.  Used by
        :class:`~repro.core.index.CoreIndex` to reuse one whole-span
        computation across many query ranges.
        """
        span_ts, span_te = self.span
        if ts < span_ts or te > span_te:
            raise InvalidParameterError(
                f"[{ts}, {te}] is not inside the computed span [{span_ts}, {span_te}]"
            )
        filtered = [
            tuple(w for w in self.windows_of(eid) if ts <= w[0] and w[1] <= te)
            for eid in range(self.num_edges)
        ]
        return EdgeCoreSkyline(filtered, self.k, (ts, te))


class ActiveWindow:
    """A minimal core window decorated for enumeration (Algorithms 4–5).

    ``active`` is the activation time of Definition 6: the window is
    considered for start times ``ts`` in ``[active, start]``.  ``prev`` /
    ``next`` are the doubly-linked-list hooks of ``L_ts``.
    """

    __slots__ = ("start", "end", "edge_id", "active", "prev", "next")

    def __init__(self, start: int, end: int, edge_id: int, active: int):
        self.start = start
        self.end = end
        self.edge_id = edge_id
        self.active = active
        self.prev: "ActiveWindow | None" = None
        self.next: "ActiveWindow | None" = None

    def __repr__(self) -> str:
        return (
            f"ActiveWindow([{self.start}, {self.end}], edge={self.edge_id}, "
            f"active={self.active})"
        )


def build_active_windows(
    skyline: EdgeCoreSkyline, ts_lo: int
) -> list[ActiveWindow]:
    """Materialise every skyline window with its activation time.

    Implements lines 1–4 of Algorithm 5: per edge, the first window
    activates at the start of the range and each later window activates
    one past the previous window's start time.  The result preserves the
    skyline's per-edge order; no global order is imposed here.
    """
    windows: list[ActiveWindow] = []
    for eid in range(skyline.num_edges):
        previous_start: int | None = None
        for t1, t2 in skyline.windows_of(eid):
            active = ts_lo if previous_start is None else previous_start + 1
            windows.append(ActiveWindow(t1, t2, eid, active))
            previous_start = t1
    return windows
