"""Minimal core windows and the edge core window skyline (ECS).

Definition 5 of the paper: a *minimal core window* of an edge ``e`` is a
time window ``[t1, t2]`` such that ``e`` belongs to the k-core of
``G[t1, t2]`` but of no proper sub-window.  Per edge, minimal windows form
a *skyline*: sorted by start time they are strictly increasing in both
coordinates (a window dominated in both coordinates would not be minimal).

:class:`EdgeCoreSkyline` stores the skyline of every edge for a fixed k
and a computation range, and knows how to re-target itself onto a narrower
query range (used when one prebuilt index serves many queries).

Representation
--------------

The skyline is held *columnar*: three flat int64 arrays — ``offsets``
(``num_edges + 1`` entries), ``t1`` and ``t2`` — where edge ``eid``'s
windows are ``zip(t1, t2)`` over ``offsets[eid]:offsets[eid+1]``,
ascending in both coordinates.  This is the same offset-indexed layout
the on-disk store persists, so in-memory, store-loaded and multi-``k``
built skylines are one representation and a store load is zero-copy.

Per-query work is vectorised on top of it.  Restricting to a sub-range
``[ts, te]`` cuts a once-per-skyline *start-sorted permutation* of the
windows with two ``searchsorted`` calls (``ts <= t1 <= te``) and masks
``t2 <= te`` — no per-edge Python loop.  Because each edge's skyline is
bi-monotone, the surviving windows of an edge are one contiguous run of
flat indices, which also yields every window's activation time
(Definition 6) from its flat predecessor in one vectorised step.

The list-of-tuples constructor is kept as the conversion surface for the
reference oracle, the text loaders and hand-written tests; it converts
eagerly, so every live skyline is columnar.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.arrays import as_int64_array, flatten_pairs, offsets_from_keys


class EdgeCoreSkyline:
    """Per-edge minimal core windows for a fixed ``k`` over ``[ts, te]``.

    Parameters
    ----------
    windows_by_edge:
        ``windows_by_edge[eid]`` is the sequence of ``(t1, t2)`` minimal
        core windows of temporal edge ``eid``, ordered by (strictly
        increasing) start time.  Edges that are never in any k-core have
        an empty sequence.  Converted to the columnar representation on
        construction; computed skylines use :meth:`from_flat` instead.
    k, span:
        The query integer and the computation range the skyline refers to.
    """

    __slots__ = (
        "k",
        "span",
        "_offsets",
        "_t1",
        "_t2",
        "_start_order",
        "_t1_by_start",
        "_eids",
    )

    def __init__(
        self,
        windows_by_edge: Sequence[Sequence[tuple[int, int]]],
        k: int,
        span: tuple[int, int],
    ):
        self.k = k
        self.span = span
        self._offsets, self._t1, self._t2 = flatten_pairs(windows_by_edge)
        self._start_order = None
        self._t1_by_start = None
        self._eids = None

    @classmethod
    def from_flat(cls, offsets, t1, t2, k: int, span: tuple[int, int]):
        """Wrap existing offset-indexed flat arrays (zero-copy).

        ``offsets`` has ``num_edges + 1`` entries; ``t1``/``t2`` hold the
        window coordinates grouped by edge, ascending within each edge.
        Accepts ndarrays, ``array('q')`` buffers and ``memoryview`` store
        sections alike.
        """
        skyline = cls.__new__(cls)
        skyline.k = k
        skyline.span = span
        skyline._offsets = as_int64_array(offsets)
        skyline._t1 = as_int64_array(t1)
        skyline._t2 = as_int64_array(t2)
        skyline._start_order = None
        skyline._t1_by_start = None
        skyline._eids = None
        return skyline

    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self._offsets) - 1

    def flat_parts(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The native ``(offsets, t1, t2)`` arrays (shared, do not mutate)."""
        return self._offsets, self._t1, self._t2

    def windows_of(self, eid: int) -> tuple[tuple[int, int], ...]:
        """Minimal core windows of edge ``eid`` (possibly empty)."""
        lo, hi = int(self._offsets[eid]), int(self._offsets[eid + 1])
        t1, t2 = self._t1, self._t2
        return tuple((int(t1[i]), int(t2[i])) for i in range(lo, hi))

    def size(self) -> int:
        """``|ECS|`` — total number of minimal core windows.  O(1)."""
        return len(self._t1)

    def window_eids(self) -> np.ndarray:
        """Per-window edge ids (flat, parallel to ``t1``/``t2``); cached."""
        if self._eids is None:
            counts = self._offsets[1:] - self._offsets[:-1]
            self._eids = np.repeat(
                np.arange(self.num_edges, dtype=np.int64), counts
            )
        return self._eids

    def __iter__(self) -> Iterator[tuple[int, tuple[int, int]]]:
        """Yield ``(eid, (t1, t2))`` for every window of every edge."""
        eids = self.window_eids()
        t1, t2 = self._t1, self._t2
        for i in range(len(t1)):
            yield int(eids[i]), (int(t1[i]), int(t2[i]))

    def check_skyline_invariant(self) -> None:
        """Assert the strict bi-monotonicity of every per-edge skyline."""
        ts, te = self.span
        t1, t2 = self._t1, self._t2
        eids = self.window_eids()
        bad = ((t1 < ts) | (t2 > te) | (t1 > t2)).nonzero()[0]
        if bad.size:
            i = int(bad[0])
            raise AssertionError(
                f"edge {int(eids[i])}: window ({int(t1[i])}, {int(t2[i])}) "
                f"outside span {self.span}"
            )
        same_edge = eids[1:] == eids[:-1]
        bad = (same_edge & ((t1[1:] <= t1[:-1]) | (t2[1:] <= t2[:-1]))).nonzero()[0]
        if bad.size:
            i = int(bad[0]) + 1
            raise AssertionError(
                f"edge {int(eids[i])}: skyline not strictly increasing at "
                f"({int(t1[i])}, {int(t2[i])})"
            )

    # ------------------------------------------------------------------
    # Vectorised sub-range machinery
    # ------------------------------------------------------------------

    def _by_start(self) -> tuple[np.ndarray, np.ndarray]:
        """The start-sorted permutation ``(order, t1[order])``; cached.

        Built once per skyline (O(|ECS| log |ECS|)) and reused by every
        query against it — the per-query cost of a restriction drops to
        two binary searches plus work proportional to the windows that
        start inside the query range.
        """
        order = self._start_order
        if order is None:
            order = np.argsort(self._t1, kind="stable")
            # Sorted values are published before the order array: a
            # concurrent reader that observes _start_order non-None is
            # then guaranteed to see _t1_by_start as well (serving
            # threads share indexes; see CoreIndexRegistry).
            self._t1_by_start = self._t1[order]
            self._start_order = order
        return order, self._t1_by_start

    def _check_range(self, ts: int, te: int) -> None:
        span_ts, span_te = self.span
        if ts < span_ts or te > span_te:
            raise InvalidParameterError(
                f"[{ts}, {te}] is not inside the computed span [{span_ts}, {span_te}]"
            )

    def start_cuts(self, ts_values, te_values) -> tuple[np.ndarray, np.ndarray]:
        """Start-sorted cut positions for a whole batch of ranges at once.

        ``(lo, hi)`` arrays such that the windows with start time inside
        ``[ts_values[i], te_values[i]]`` are ``order[lo[i]:hi[i]]`` of
        the cached start-sorted permutation — one vectorised
        ``searchsorted`` pair for the entire batch, shared by
        :meth:`repro.core.index.CoreIndex.query_batch`.
        """
        _order, t1_sorted = self._by_start()
        lo = np.searchsorted(t1_sorted, np.asarray(ts_values, dtype=np.int64), "left")
        hi = np.searchsorted(t1_sorted, np.asarray(te_values, dtype=np.int64), "right")
        return lo, hi

    def selection_from_cut(self, lo: int, hi: int, ts: int, te: int) -> np.ndarray:
        """Flat indices of the windows inside ``[ts, te]``, ascending.

        ``lo``/``hi`` are the start-sorted cut positions for the range
        (see :meth:`start_cuts`).  Ascending flat order groups the
        selection by edge with per-edge ascending start times — the
        layout every consumer expects.
        """
        span_ts, span_te = self.span
        if ts == span_ts and te == span_te:
            return np.arange(len(self._t1), dtype=np.int64)
        order, _t1_sorted = self._by_start()
        candidates = order[lo:hi]
        selected = candidates[self._t2[candidates] <= te]
        selected.sort()
        return selected

    def _selection(self, ts: int, te: int) -> np.ndarray:
        self._check_range(ts, te)
        (lo,), (hi,) = self.start_cuts([ts], [te])
        return self.selection_from_cut(int(lo), int(hi), ts, te)

    def restricted_to(self, ts: int, te: int) -> "EdgeCoreSkyline":
        """Skyline filtered to windows contained in ``[ts, te]``.

        Minimal core windows are intrinsic to the graph (Definition 5 does
        not depend on the query range), so the skyline of a sub-range is
        exactly the subset of windows inside it.  Fully vectorised: two
        ``searchsorted`` cuts over the cached start-sorted permutation
        plus an end-time mask — no per-edge scan.
        """
        selected = self._selection(ts, te)
        offsets = offsets_from_keys(self.window_eids()[selected], self.num_edges)
        return EdgeCoreSkyline.from_flat(
            offsets, self._t1[selected], self._t2[selected], self.k, (ts, te)
        )

    def active_window_arrays(
        self, ts: int, te: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Columnar ``(eid, start, end, active)`` of the windows in ``[ts, te]``.

        The vectorised form of restriction followed by
        :func:`build_active_windows` — the enumeration driver's window
        prep, without materialising a restricted skyline or any per-edge
        tuples.  ``active`` is the activation time of Definition 6: the
        first surviving window of an edge activates at ``ts``, each later
        one at its predecessor's start time plus one.  Bi-monotonicity
        makes each edge's surviving windows a contiguous flat run, so the
        predecessor test is one shifted comparison.
        """
        return self.active_arrays_from_selection(self._selection(ts, te), ts)

    def active_arrays_from_selection(
        self, selected: np.ndarray, ts: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(eid, start, end, active)`` for an already-cut selection.

        ``selected`` are ascending flat window indices as produced by the
        selection machinery; ``ts`` is the query start the first window
        of each edge activates at.  Split out so the batch path can cut
        all its ranges first and activate each slice independently.
        """
        eids = self.window_eids()[selected]
        starts = self._t1[selected]
        ends = self._t2[selected]
        active = np.full(len(selected), ts, dtype=np.int64)
        if len(selected) > 1:
            follows = (selected[1:] == selected[:-1] + 1) & (eids[1:] == eids[:-1])
            active[1:][follows] = starts[:-1][follows] + 1
        return eids, starts, ends, active


class ActiveWindow:
    """A minimal core window decorated for enumeration (Algorithms 4–5).

    ``active`` is the activation time of Definition 6: the window is
    considered for start times ``ts`` in ``[active, start]``.  ``prev`` /
    ``next`` are the doubly-linked-list hooks of ``L_ts``.
    """

    __slots__ = ("start", "end", "edge_id", "active", "prev", "next")

    def __init__(self, start: int, end: int, edge_id: int, active: int):
        self.start = start
        self.end = end
        self.edge_id = edge_id
        self.active = active
        self.prev: "ActiveWindow | None" = None
        self.next: "ActiveWindow | None" = None

    def __repr__(self) -> str:
        return (
            f"ActiveWindow([{self.start}, {self.end}], edge={self.edge_id}, "
            f"active={self.active})"
        )


def build_active_windows(
    skyline: EdgeCoreSkyline, ts_lo: int
) -> list[ActiveWindow]:
    """Materialise every skyline window with its activation time.

    Implements lines 1–4 of Algorithm 5: per edge, the first window
    activates at the start of the range and each later window activates
    one past the previous window's start time.  The result preserves the
    skyline's per-edge order; no global order is imposed here.  Derived
    from the columnar arrays — the enumeration driver consumes
    :meth:`EdgeCoreSkyline.active_window_arrays` directly and never
    materialises these objects ahead of the end-time sort.
    """
    eids, starts, ends, active = skyline.active_window_arrays(
        ts_lo, skyline.span[1]
    )
    return [
        ActiveWindow(int(t1), int(t2), int(eid), int(act))
        for eid, t1, t2, act in zip(
            eids.tolist(), starts.tolist(), ends.tolist(), active.tolist()
        )
    ]
