"""Multi-``k`` core-time builds that share one decremental scan.

Real serving mixes many ``k`` values against the same graph, and each
``(graph, k)`` pair used to pay its own full Algorithm-2 run.
:func:`compute_core_times_multi` builds the VCT index and the
edge-core-window skyline for a whole *set* of ``k`` values in a single
pass over the compiled flat-array graph, with three devices the
one-``k``-at-a-time kernel cannot use:

* **One decremental scan.**  The per-pair live-edge counts maintained by
  the end-time scan, and the pair pointers / eager earliest-times
  (``ptr`` / ``ett``) refreshed by the advancing phase, do not depend on
  ``k`` — they are maintained once for all levels.  The widest-window
  peel exploits that the ``(k+1)``-core is nested in the ``k``-core: it
  proceeds through the requested ``k`` values in ascending order,
  *continuing* from the previous level's survivors, so every vertex is
  evicted at most once across all levels; the end-time scan then
  cascades per level only while both endpoints of a dying pair are still
  alive there.

* **Level-fused fixpoint.**  All core times live in one
  ``(levels, vertices)`` int64 matrix.  Per start time the expiring
  batch's seed masks are evaluated for every level in one broadcast,
  and the chaotic re-evaluation runs as *rounds*: each round's queued
  ``(level, vertex)`` pairs are evaluated together in one segmented
  sweep — gather the CSR slices, scatter the availabilities into a
  padded matrix, one axis sort, read each row's ``k``-th smallest —
  while short cascade tails fall back to a scalar drain.  Round-based
  evaluation reaches the same least fixpoint as the single-``k``
  kernel's per-vertex order, so the harvested output is identical
  (re-verified entry-by-entry against the single-``k`` kernel and the
  reference oracle by the property suite).

* **Columnar harvesting.**  VCT transitions and finalised skyline
  windows are accumulated as flat ``(key, value)`` array chunks — the
  incident-edge re-derivations of *all* levels batch into one
  composite-key ``searchsorted`` + gather sweep per step — and the
  result is assembled at the end with one stable sort per level into
  the offset-indexed flat arrays that
  :class:`~repro.core.coretime.VertexCoreTimeIndex` and
  :class:`~repro.core.windows.EdgeCoreSkyline` serve natively (and the
  on-disk store persists), with no per-entry Python tuples anywhere.

:func:`build_core_indexes` is the index-layer entry point: it resolves a
set of ``k`` values against an optional on-disk store first and builds
the remainder in one shared pass.  The serving layers
(:meth:`CoreIndexRegistry.get_many <repro.core.index.CoreIndexRegistry.get_many>`,
:meth:`IndexStore.build_all <repro.store.index_store.IndexStore.build_all>`,
:func:`~repro.bench.batch.run_mixed_batch`,
:class:`~repro.core.maintenance.StreamingCoreService`) all route through
it.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

from repro.core.coretime import (
    INF_CT,
    CoreTimeResult,
    VertexCoreTimeIndex,
    _WindowState,
    compute_core_times,
)
from repro.core.index import CoreIndex
from repro.core.windows import EdgeCoreSkyline
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.arrays import as_int64_array, offsets_from_keys

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.store.index_store import IndexStore


def _validated_ks(ks: Iterable[int]) -> list[int]:
    """Deduplicated, ascending ``k`` values (>= 1); rejects empty input."""
    unique = sorted(set(ks))
    if not unique:
        raise InvalidParameterError("ks must contain at least one k value")
    for k in unique:
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise InvalidParameterError(f"k must be an integer >= 1, got {k!r}")
    return unique


def _shared_initial_scan(
    base: _WindowState, ks: list[int], ct_matrix: np.ndarray
) -> None:
    """``CT_Ts`` for every level in one decremental end-time scan.

    Mirrors :meth:`_WindowState.initial_scan` with two multi-``k``
    devices: the widest-window peel *continues* from level to level
    (ascending ``k``, nested cores — each vertex is evicted at most once
    across all levels), and the end-time scan decrements the shared live
    counts once per edge, cascading per level only while both endpoints
    are still alive there.  Results land in the rows of ``ct_matrix``.
    """
    cg = base.cg
    ts_lo, ts_hi = base.ts_lo, base.ts_hi
    n = cg.num_vertices
    num_levels = len(ks)
    adj_offsets = cg.adj_offsets
    adj_neighbour = cg.adj_neighbour
    edge_slot_u = cg.edge_slot_u
    edge_slot_v = cg.edge_slot_v
    edge_u = cg.edge_u
    edge_v = cg.edge_v
    time_offset = cg.time_offset

    if ts_lo == 1 and ts_hi == cg.tmax:
        live = list(cg.slot_count)
        degree = list(cg.full_degree)
    else:
        # Window live counts and distinct-neighbour degrees, vectorised:
        # one bincount over both slot columns of the window's contiguous
        # edge-id range, then a prefix-sum of slot liveness differenced
        # at the adjacency offsets (empty adjacency segments fall out as
        # zero, which reduceat would get wrong).
        lo_eid = time_offset[ts_lo]
        hi_eid = time_offset[ts_hi + 1]
        live_np = np.bincount(
            as_int64_array(edge_slot_u)[lo_eid:hi_eid],
            minlength=cg.num_slots,
        ) + np.bincount(
            as_int64_array(edge_slot_v)[lo_eid:hi_eid],
            minlength=cg.num_slots,
        )
        live_prefix = np.zeros(cg.num_slots + 1, dtype=np.int64)
        np.cumsum(live_np > 0, out=live_prefix[1:])
        adj_off_np = as_int64_array(adj_offsets)
        degree_np = live_prefix[adj_off_np[1:]] - live_prefix[adj_off_np[:-1]]
        live = live_np.tolist()
        degree = degree_np.tolist()

    # Nested peel of G[ts_lo, ts_hi]: ascending k, continuing from the
    # previous level's k-core.  The first level seeds from the full
    # degree array exactly like the single-k scan; later levels only
    # re-examine survivors whose degree fell below the raised threshold.
    alive = bytearray(n)
    alives: list[bytearray] = []
    degrees: list[list[int]] = []
    stack: list[int] = []
    for level, k in enumerate(ks):
        if level == 0:
            for u in range(n):
                if degree[u] < k:
                    stack.append(u)
                else:
                    alive[u] = 1
            while stack:
                u = stack.pop()
                if alive[u]:
                    alive[u] = 0
                for s in range(adj_offsets[u], adj_offsets[u + 1]):
                    if live[s]:
                        v = adj_neighbour[s]
                        if alive[v]:
                            d = degree[v] - 1
                            degree[v] = d
                            if d == k - 1:
                                stack.append(v)
        else:
            stack.extend(u for u in range(n) if alive[u] and degree[u] < k)
            while stack:
                u = stack.pop()
                if not alive[u]:
                    continue
                alive[u] = 0
                for s in range(adj_offsets[u], adj_offsets[u + 1]):
                    if live[s]:
                        v = adj_neighbour[s]
                        if alive[v]:
                            d = degree[v] - 1
                            degree[v] = d
                            if d == k - 1:
                                stack.append(v)
        if level + 1 < num_levels:  # the last level mutates in place
            alives.append(bytearray(alive))
            degrees.append(list(degree))
        else:
            alives.append(alive)
            degrees.append(degree)

    cts = [ct_matrix[level] for level in range(num_levels)]

    # Decremental end-time scan, shared live counts: delete the edges
    # stamped te (a contiguous id range) once, cascade per level while
    # both endpoints are alive there; a vertex evicted while shrinking
    # to te - 1 has CT_Ts = te at that level.
    for te in range(ts_hi, ts_lo, -1):
        for eid in range(time_offset[te], time_offset[te + 1]):
            su = edge_slot_u[eid]
            remaining = live[su] - 1
            live[su] = remaining
            sv = edge_slot_v[eid]
            live[sv] -= 1
            if remaining == 0:
                u = edge_u[eid]
                v = edge_v[eid]
                for level in range(num_levels):
                    alive = alives[level]
                    if not (alive[u] and alive[v]):
                        # Nested cores: dead here means dead at every
                        # higher level too.
                        break
                    k = ks[level]
                    degree = degrees[level]
                    ct = cts[level]
                    du = degree[u] - 1
                    degree[u] = du
                    dv = degree[v] - 1
                    degree[v] = dv
                    if du == k - 1:
                        stack.append(u)
                    if dv == k - 1:
                        stack.append(v)
                    while stack:
                        w = stack.pop()
                        if not alive[w]:
                            continue
                        alive[w] = 0
                        ct[w] = te
                        for s in range(adj_offsets[w], adj_offsets[w + 1]):
                            if live[s]:
                                x = adj_neighbour[s]
                                if alive[x]:
                                    d = degree[x] - 1
                                    degree[x] = d
                                    if d == k - 1:
                                        stack.append(x)
    for level in range(num_levels):
        alive = alives[level]
        ct = cts[level]
        for u in range(n):
            if alive[u]:
                ct[u] = ts_lo


class _FusedMultiK:
    """The level-fused advancing phase over a 2-D core-time matrix.

    One instance drives all requested ``k`` values ("levels") through
    the start-time loop: the shared pointer/earliest-time refresh runs
    once per step via the base :class:`_WindowState`, seed masks are
    evaluated for all levels in one broadcast, and the fixpoint /
    harvest work of every level is batched into fused segmented numpy
    sweeps accumulating columnar output (see the module docstring).
    """

    #: Frontiers at most this large drain through the scalar chaotic
    #: path — the fused sweep's fixed numpy dispatch cost dwarfs the
    #: short cascade tails (nearly half of all rounds hold a few percent
    #: of the row volume).
    _SCALAR_FRONTIER = 10

    def __init__(
        self,
        graph: TemporalGraph,
        ks: list[int],
        ts_lo: int,
        ts_hi: int,
        with_skyline: bool,
    ):
        self.base = base = _WindowState(graph, ks[0], ts_lo, ts_hi)
        self.cg = cg = base.cg
        self.ks = ks
        self.ts_lo = ts_lo
        self.ts_hi = ts_hi
        self.inf = base.inf
        self.num_levels = len(ks)
        n = cg.num_vertices
        self.num_vertices = n
        self.num_edges = cg.num_edges
        self.ct_matrix = np.full((len(ks), n), self.inf, dtype=np.int64)
        self.ct_flat = self.ct_matrix.reshape(-1)
        base.ct = self.ct_matrix[0]
        # int64 copies of the offset tables feeding fused gathers (the
        # compiled graph keeps them as plain lists / buffer views).
        self.np_adj_offsets = np.asarray(cg.adj_offsets, dtype=np.int64)
        self.np_inc_offsets = np.asarray(cg.inc_offsets, dtype=np.int64)
        self.np_degree = self.np_adj_offsets[1:] - self.np_adj_offsets[:-1]
        self.np_km1 = np.asarray(ks, dtype=np.int64) - 1
        self.with_skyline = with_skyline
        self._inq = bytearray(len(ks) * n)
        # Columnar VCT accumulation: per step, the sorted changed keys
        # (level * n + vertex) and their new core times.
        self._vct_keys: list[np.ndarray] = []
        self._vct_cts: list[np.ndarray] = []
        self._vct_ts: list[int] = []
        # Columnar ECS accumulation: (level * m + edge, t1, t2) chunks.
        self._ecs_keys: list[np.ndarray] = []
        self._ecs_t1: list[np.ndarray] = []
        self._ecs_t2: list[np.ndarray] = []
        self.ect_matrix: np.ndarray | None = None
        self.ect_flat: np.ndarray | None = None
        self._inc_key: np.ndarray | None = None
        self._inc_stride = cg.tmax + 2
        # Reusable buffers for the fused sweeps (grown on demand).
        self._iota = np.arange(1024, dtype=np.int64)
        self._pad_buffer = np.empty(1024, dtype=np.int64)

    def _arange(self, total: int) -> np.ndarray:
        if total > len(self._iota):
            self._iota = np.arange(
                max(total, 2 * len(self._iota)), dtype=np.int64
            )
        return self._iota[:total]

    def _padded(self, size: int, fill: int) -> np.ndarray:
        if size > len(self._pad_buffer):
            self._pad_buffer = np.empty(
                max(size, 2 * len(self._pad_buffer)), dtype=np.int64
            )
        view = self._pad_buffer[:size]
        view.fill(fill)
        return view

    # ------------------------------------------------------------------

    def seed_from_initial_scan(self) -> None:
        """Record the ``ts_lo`` VCT entries and pending edge core times."""
        cg = self.cg
        inf = self.inf
        ts_lo, ts_hi = self.ts_lo, self.ts_hi
        ct_flat = self.ct_flat
        time_offset = cg.time_offset
        initial = (ct_flat < inf).nonzero()[0]
        self._vct_keys.append(initial)
        self._vct_cts.append(ct_flat[initial])
        self._vct_ts.append(ts_lo)
        if not self.with_skyline:
            return
        m = self.num_edges
        ct_matrix = self.ct_matrix
        self.ect_matrix = np.full((self.num_levels, m), inf, dtype=np.int64)
        self.ect_flat = self.ect_matrix.reshape(-1)
        window = slice(time_offset[ts_lo], time_offset[ts_hi + 1])
        self.ect_matrix[:, window] = np.maximum(
            np.maximum(
                ct_matrix[:, cg.np_edge_u[window]],
                ct_matrix[:, cg.np_edge_v[window]],
            ),
            cg.np_edge_t[window][None, :],
        )
        # Composite sort key over the incident CSR: segments are
        # per-vertex ascending-time, so `vertex * (tmax + 2) + time` is
        # *globally* sorted — one vectorised searchsorted then cuts every
        # changed vertex's incident suffix at once (the fused analogue of
        # the single-k kernel's per-vertex bisect).
        inc_counts = self.np_inc_offsets[1:] - self.np_inc_offsets[:-1]
        self._inc_key = (
            np.repeat(self._arange(self.num_vertices), inc_counts)
            * self._inc_stride
            + cg.np_inc_time
        )
        # Edges stamped with the very first start time leave the window
        # as soon as the start advances: their pending window finalises
        # now, at every level they are in a core at.
        self._emit_batch(ts_lo)

    def _emit_batch(self, stamp_ts: int) -> None:
        """Emit ``(stamp_ts, ect)`` for the edge batch stamped ``stamp_ts``."""
        time_offset = self.cg.time_offset
        base_eid = time_offset[stamp_ts]
        segment = self.ect_matrix[:, base_eid : time_offset[stamp_ts + 1]]
        if segment.size == 0:
            return
        levels, cols = (segment <= self.ts_hi).nonzero()
        if levels.size == 0:
            return
        m = self.num_edges
        t2 = segment[levels, cols]
        keys = levels * m + cols + base_eid
        self._ecs_keys.append(keys)
        self._ecs_t1.append(np.full(len(keys), stamp_ts, dtype=np.int64))
        self._ecs_t2.append(t2)

    # ------------------------------------------------------------------

    def _drain_scalar(self, frontier: np.ndarray, grew_out: list[np.ndarray]) -> None:
        """Chaotic scalar drain of a short frontier (single-k code path).

        Evaluates keys off a deque exactly like
        :meth:`_WindowState.run_fixpoint`, collecting every grown key
        into ``grew_out``; returns when the cascade is exhausted.
        """
        n = self.num_vertices
        ts_hi = self.ts_hi
        inf = self.inf
        ct_flat = self.ct_flat
        ett = self.base.ett
        adj_offsets = self.cg.adj_offsets
        np_adj_neighbour = self.cg.np_adj_neighbour
        ks = self.ks
        inq = self._inq
        grew_keys: list[int] = []
        queue: deque[int] = deque()
        for key in frontier.tolist():
            if not inq[key]:
                inq[key] = 1
                queue.append(key)
        while queue:
            key = queue.popleft()
            inq[key] = 0
            lev, u = divmod(key, n)
            level_base = lev * n
            old = int(ct_flat[key])
            if old >= inf:
                continue
            lo = adj_offsets[u]
            hi = adj_offsets[u + 1]
            neighbours = np_adj_neighbour[lo:hi]
            neighbour_ct = ct_flat[level_base + neighbours]
            slot_ett = ett[lo:hi]
            avail = np.maximum(slot_ett, neighbour_ct)
            km1 = ks[lev] - 1
            if avail.size <= km1:
                new = inf
            else:
                if km1 == 0:
                    candidate = int(avail.min())
                else:
                    avail.partition(km1)
                    candidate = int(avail[km1])
                new = candidate if candidate <= ts_hi else inf
            if new <= old:
                continue
            grew_keys.append(key)
            ct_flat[key] = new
            push = (np.maximum(slot_ett, old) <= neighbour_ct) & (
                neighbour_ct <= ts_hi
            )
            if new <= ts_hi:
                push &= np.maximum(slot_ett, new) > neighbour_ct
            for w in neighbours[push].tolist():
                target = level_base + w
                if not inq[target]:
                    inq[target] = 1
                    queue.append(target)
        if grew_keys:
            grew_out.append(np.asarray(grew_keys, dtype=np.int64))

    def advance(self, current_ts: int) -> np.ndarray:
        """Move every level's start to ``current_ts``.

        Runs the shared expiry once, then the fixpoint as *rounds*:
        every queued ``(level, vertex)`` pair of a round is either
        evaluated in one fused segmented sweep (large rounds) or through
        the scalar single-k code path (short cascade tails).  Both paths
        apply the same operator and re-scheduling filter, so the least
        fixpoint matches :meth:`_WindowState.advance_start` per level.
        Returns the sorted, deduplicated keys (``level * n + vertex``)
        whose core time grew this step.
        """
        base = self.base
        cg = self.cg
        n = self.num_vertices
        ts_hi = self.ts_hi
        ct_matrix = self.ct_matrix
        ct_flat = self.ct_flat
        base.expire_start(current_ts)

        time_offset = cg.time_offset
        batch_lo = time_offset[current_ts - 1]
        batch_hi = time_offset[current_ts]
        if batch_lo >= batch_hi:
            return np.empty(0, dtype=np.int64)
        # Seed filter of `_WindowState.seeds_after_expire`, broadcast
        # over all levels at once against the shared earliest-time row.
        batch = slice(batch_lo, batch_hi)
        endpoint_u = cg.np_edge_u[batch]
        endpoint_v = cg.np_edge_v[batch]
        ct_u = ct_matrix[:, endpoint_u]
        ct_v = ct_matrix[:, endpoint_v]
        next_time = base.ett[cg.np_edge_slot_u[batch]]
        seed_u = (ct_u <= ts_hi) & (ct_v <= ct_u) & (next_time > ct_v)
        seed_v = (ct_v <= ts_hi) & (ct_u <= ct_v) & (next_time > ct_u)
        lev_u, col_u = seed_u.nonzero()
        lev_v, col_v = seed_v.nonzero()
        frontier = np.unique(
            np.concatenate((lev_u * n + endpoint_u[col_u], lev_v * n + endpoint_v[col_v]))
        )

        adj_offsets = self.np_adj_offsets
        np_adj_neighbour = cg.np_adj_neighbour
        degree = self.np_degree
        km1 = self.np_km1
        max_km1 = int(km1[-1])
        ett = base.ett
        inf = self.inf
        no_time = 1 << 62
        grew_out: list[np.ndarray] = []
        while frontier.size:
            num_rows = len(frontier)
            if num_rows <= self._SCALAR_FRONTIER:
                self._drain_scalar(frontier, grew_out)
                break
            # Fused operator evaluation: gather every row's CSR slice,
            # scatter the availabilities into a NO_TIME-padded matrix and
            # read each row's k-th smallest off one axis sort.
            vert = frontier % n
            lev = frontier // n
            old = ct_flat[frontier]
            counts = degree[vert]
            prefix = np.zeros(num_rows, dtype=np.int64)
            np.cumsum(counts[:-1], out=prefix[1:])
            row = np.repeat(self._arange(num_rows), counts)
            total = int(prefix[-1]) + int(counts[-1])
            pos = self._arange(total) - prefix[row]
            flat = pos + adj_offsets[vert][row]
            target = (lev * n)[row] + np_adj_neighbour[flat]
            slot_ett = ett[flat]
            avail = np.maximum(slot_ett, ct_flat[target])
            pad = max(int(counts.max()), max_km1 + 1)
            padded = self._padded(num_rows * pad, no_time)
            padded[row * pad + pos] = avail
            padded = padded.reshape(num_rows, pad)
            padded.sort(axis=1)
            kth = padded[self._arange(num_rows), km1[lev]]
            new = np.where(kth <= ts_hi, kth, inf)
            grew = new > old
            if not grew.any():
                break
            grew_keys = frontier[grew]
            grew_out.append(grew_keys)
            ct_flat[grew_keys] = new[grew]
            # Re-schedule neighbours whose k-th-smallest input may have
            # grown (same filter as the single-k kernel, evaluated
            # against the post-round core times): only those for which
            # the grown vertex's available time was at most their core
            # time before the increase and above it after.
            neighbour_ct = ct_flat[target]
            old_r = old[row]
            new_r = new[row]
            push = (
                grew[row]
                & (np.maximum(slot_ett, old_r) <= neighbour_ct)
                & (neighbour_ct <= ts_hi)
                & ((new_r > ts_hi) | (np.maximum(slot_ett, new_r) > neighbour_ct))
            )
            pushed = target[push]
            if pushed.size <= 128:
                # Tiny frontiers dedup faster through a Python set than
                # numpy's sort-based unique.
                next_keys = sorted(set(pushed.tolist()))
                frontier = np.asarray(next_keys, dtype=np.int64)
            else:
                frontier = np.unique(pushed)
        if not grew_out:
            return np.empty(0, dtype=np.int64)
        if len(grew_out) == 1:
            return np.unique(grew_out[0])
        return np.unique(np.concatenate(grew_out))

    # ------------------------------------------------------------------

    def harvest(self, current_ts: int, changed_keys: np.ndarray) -> None:
        """Record VCT transitions and finalised windows for one step.

        The level-fused, columnar equivalent of single-k harvesting: the
        changed keys' new core times append one VCT chunk, then one
        segmented sweep over the incident suffixes of every changed
        vertex of every level re-derives edge core times; strict
        increases finalise the previously pending minimal window at
        ``current_ts - 1`` (Lemma 2), deduplicated per ``(level, edge)``.
        """
        if not changed_keys.size:
            return
        n = self.num_vertices
        m = self.num_edges
        ts_hi = self.ts_hi
        new_cts = self.ct_flat[changed_keys]
        self._vct_keys.append(changed_keys)
        self._vct_cts.append(new_cts)
        self._vct_ts.append(current_ts)
        if self.ect_flat is None:
            return
        levels = changed_keys // n
        verts = changed_keys - levels * n
        # Exact incident-CSR suffix of every event — time in
        # [current_ts, ts_hi] — via one composite-key searchsorted.
        stride = self._inc_stride
        cut_lo = np.searchsorted(
            self._inc_key, verts * stride + current_ts, side="left"
        )
        if ts_hi == self.cg.tmax:
            cut_hi = self.np_inc_offsets[verts + 1]
        else:
            cut_hi = np.searchsorted(
                self._inc_key, verts * stride + ts_hi, side="right"
            )
        counts = cut_hi - cut_lo
        total = int(counts.sum())
        if not total:
            return
        num_rows = len(verts)
        prefix = np.zeros(num_rows, dtype=np.int64)
        np.cumsum(counts[:-1], out=prefix[1:])
        row = np.repeat(self._arange(num_rows), counts)
        flat = self._arange(total) - prefix[row] + cut_lo[row]
        # Only edges whose pending core time lies *below* the grown
        # vertex core time can finalise: ect = max(ct_u, ct_v, t) grows
        # past old_ect only through an endpoint whose new core time
        # exceeds it, and that endpoint's event is in this batch — so
        # the filter loses no growth and skips the gathers for the
        # (many) incident edges whose pending windows are unaffected.
        lev_flat = levels[row]
        edge_key = lev_flat * m + self.cg.np_inc_eid[flat]
        old_ect = self.ect_flat[edge_key]
        candidate = old_ect < new_cts[row]
        if not candidate.any():
            return
        flat = flat[candidate]
        row = row[candidate]
        edge_key = edge_key[candidate]
        old_ect = old_ect[candidate]
        other_ct = self.ct_flat[
            lev_flat[candidate] * n + self.cg.np_inc_other[flat]
        ]
        new_ect = np.maximum(
            np.maximum(other_ct, self.cg.np_inc_time[flat]), new_cts[row]
        )
        # new_ect >= new_ct > old_ect: every candidate grows.
        unique_keys, first = np.unique(edge_key, return_index=True)
        finalised = old_ect[first]
        emit = finalised <= ts_hi
        if emit.any():
            self._ecs_keys.append(unique_keys[emit])
            self._ecs_t1.append(
                np.full(int(emit.sum()), current_ts - 1, dtype=np.int64)
            )
            self._ecs_t2.append(finalised[emit])
        self.ect_flat[edge_key] = new_ect

    def step(self, current_ts: int) -> None:
        """One advancing step: fixpoint, harvest, batch emission."""
        self.harvest(current_ts, self.advance(current_ts))
        if self.ect_matrix is not None:
            self._emit_batch(current_ts)

    # ------------------------------------------------------------------

    def results(self) -> dict[int, CoreTimeResult]:
        """Assemble per-level flat VCT/ECS views from the columnar chunks.

        Chunks were appended in ascending step order, so one stable sort
        by ``(level, id)`` key groups every vertex's transitions (and
        every edge's windows) contiguously in ascending time — the exact
        offset-indexed layout :class:`VertexCoreTimeIndex` and
        :class:`EdgeCoreSkyline` serve queries from natively.
        """
        n = self.num_vertices
        m = self.num_edges
        span = (self.ts_lo, self.ts_hi)
        vct_keys = np.concatenate(self._vct_keys) if self._vct_keys else np.empty(0, np.int64)
        vct_starts = (
            np.repeat(
                np.asarray(self._vct_ts, dtype=np.int64),
                np.asarray([len(c) for c in self._vct_keys], dtype=np.int64),
            )
            if self._vct_keys
            else np.empty(0, np.int64)
        )
        vct_cts = np.concatenate(self._vct_cts) if self._vct_cts else np.empty(0, np.int64)
        order = np.argsort(vct_keys, kind="stable")
        vct_keys = vct_keys[order]
        vct_starts = vct_starts[order]
        vct_cts = np.where(vct_cts[order] >= self.inf, INF_CT, vct_cts[order])

        if self.with_skyline:
            ecs_keys = (
                np.concatenate(self._ecs_keys) if self._ecs_keys else np.empty(0, np.int64)
            )
            ecs_t1 = np.concatenate(self._ecs_t1) if self._ecs_t1 else np.empty(0, np.int64)
            ecs_t2 = np.concatenate(self._ecs_t2) if self._ecs_t2 else np.empty(0, np.int64)
            order = np.argsort(ecs_keys, kind="stable")
            ecs_keys = ecs_keys[order]
            ecs_t1 = ecs_t1[order]
            ecs_t2 = ecs_t2[order]

        out: dict[int, CoreTimeResult] = {}
        for level, k in enumerate(self.ks):
            lo, hi = np.searchsorted(vct_keys, [level * n, (level + 1) * n])
            vct = VertexCoreTimeIndex.from_flat(
                offsets_from_keys(vct_keys[lo:hi] - level * n, n),
                vct_starts[lo:hi],
                vct_cts[lo:hi],
                k,
                span,
            )
            skyline = None
            if self.with_skyline:
                lo, hi = np.searchsorted(ecs_keys, [level * m, (level + 1) * m])
                skyline = EdgeCoreSkyline.from_flat(
                    offsets_from_keys(ecs_keys[lo:hi] - level * m, m),
                    ecs_t1[lo:hi],
                    ecs_t2[lo:hi],
                    k,
                    span,
                )
            out[k] = CoreTimeResult(vct=vct, ecs=skyline)
        return out


def compute_core_times_multi(
    graph: TemporalGraph,
    ks: Iterable[int],
    ts: int | None = None,
    te: int | None = None,
    *,
    with_skyline: bool = True,
) -> dict[int, CoreTimeResult]:
    """VCT (+ ECS) for every ``k`` in ``ks`` over one shared pass.

    Output is value-identical to calling
    :func:`~repro.core.coretime.compute_core_times` once per ``k``
    (property-tested against it and the reference oracle) at a fraction
    of the cost: the decremental scan and pointer maintenance run once,
    and the per-level fixpoint/harvest work is batched into fused numpy
    sweeps.  The returned indexes are served from offset-indexed flat
    arrays (the same views the on-disk store uses), not per-vertex
    Python lists.  Parameters default to the graph's full span; the
    result maps each requested ``k`` (deduplicated) to its
    :class:`CoreTimeResult`.
    """
    unique = _validated_ks(ks)
    if len(unique) == 1:
        return {
            unique[0]: compute_core_times(
                graph, unique[0], ts, te, with_skyline=with_skyline
            )
        }
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    fused = _FusedMultiK(graph, unique, ts_lo, ts_hi, with_skyline)
    _shared_initial_scan(fused.base, unique, fused.ct_matrix)
    fused.seed_from_initial_scan()
    for current_ts in range(ts_lo + 1, ts_hi + 1):
        fused.step(current_ts)
    return fused.results()


def build_core_indexes(
    graph: TemporalGraph,
    ks: Iterable[int],
    *,
    store: "IndexStore | None" = None,
) -> dict[int, CoreIndex]:
    """Full-span :class:`CoreIndex` for every ``k`` in ``ks``, one pass.

    When a ``store`` is given it is probed first (by content
    fingerprint): ``k`` values already persisted are *opened* from disk,
    and only the remainder is computed — in a single shared pass when
    more than one is missing.  Nothing is written back; persisting is
    the caller's policy (see :meth:`IndexStore.build_all
    <repro.store.index_store.IndexStore.build_all>`).

    Returns ``{k: index}`` for the deduplicated ``ks``.
    """
    unique = _validated_ks(ks)
    out: dict[int, CoreIndex] = {}
    missing: list[int] = []
    for k in unique:
        index = store.load_index(graph, k) if store is not None else None
        if index is not None:
            out[k] = index
        else:
            missing.append(k)
    if len(missing) == 1:
        # Single miss: the plain constructor keeps the single-k code
        # path (and its test monkeypatches) authoritative.
        out[missing[0]] = CoreIndex(graph, missing[0])
    elif missing:
        started = time.perf_counter()
        results = compute_core_times_multi(graph, missing)
        # Attribute the shared scan evenly: what each k "cost" to build,
        # consulted by the registry's eviction spill policy.
        per_k_seconds = (time.perf_counter() - started) / len(missing)
        for k in missing:
            out[k] = CoreIndex.from_core_times(
                graph, k, results[k], build_seconds=per_k_seconds
            )
    return out
