"""Optimal temporal k-core enumeration (Algorithms 4 and 5).

Given the edge core window skyline, :func:`enumerate_temporal_kcores`
reports every distinct temporal k-core of the query range exactly once,
in time bounded by the total result size ``O(|R|)`` (Theorem 3):

* Per start time ``ts``, the window list ``L_ts`` (ascending end times)
  is scanned once (**AS-Output**, Algorithm 4).  Lemma 4 restricts start
  times to those where some minimal core window starts; Lemma 5 and
  Lemma 6 (the ``valid`` flag) characterise the end times, and Theorem 2
  proves each reported window is a genuine TTI — hence no duplicates.
* Between start times, ``L_ts`` is updated in place: windows whose start
  expired are unlinked, windows whose activation time arrived are spliced
  in, pre-sorted by end time with one stable argsort over the columnar
  window arrays up front (**Enum**, Algorithm 5).

Window prep is columnar end-to-end: the skyline hands over flat
``(eid, start, end, active)`` arrays for the query range (a vectorised
cut of the prebuilt index — see
:meth:`EdgeCoreSkyline.active_window_arrays`), and the only per-window
Python objects are the linked-list cells the enumeration itself needs,
``O(windows in range)``, never ``O(num_edges)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.coretime import compute_core_times
from repro.core.linkedlist import WindowList
from repro.core.results import EnumerationResult, ResultCallback
from repro.core.windows import ActiveWindow, EdgeCoreSkyline
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.timer import Deadline


def _bucket_window_arrays(
    eids: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    actives: np.ndarray,
    ts_lo: int,
    ts_hi: int,
) -> tuple[list[list[ActiveWindow]], list[list[ActiveWindow]]]:
    """Build the activation (``Ba``) and start (``Bs``) buckets.

    Consumes the columnar ``(eid, start, end, active)`` slice of
    :meth:`EdgeCoreSkyline.active_window_arrays` directly: one stable
    end-time argsort (Algorithm 5 line 8) orders the windows, and the
    :class:`ActiveWindow` cells — the only per-window objects the
    enumeration ever materialises, O(windows in range), never
    O(num_edges) — are created straight into their buckets in ascending
    end-time order, the precondition of the roving-cursor insertion.
    """
    order = np.argsort(ends, kind="stable").tolist()
    eids_list = eids.tolist()
    starts_list = starts.tolist()
    ends_list = ends.tolist()
    actives_list = actives.tolist()
    span = ts_hi - ts_lo + 1
    activation: list[list[ActiveWindow]] = [[] for _ in range(span)]
    start: list[list[ActiveWindow]] = [[] for _ in range(span)]
    for i in order:
        window = ActiveWindow(
            starts_list[i], ends_list[i], eids_list[i], actives_list[i]
        )
        activation[window.active - ts_lo].append(window)
        start[window.start - ts_lo].append(window)
    return activation, start


def _as_output(
    window_list: WindowList,
    ts: int,
    result: EnumerationResult,
    collect: bool,
    on_result: ResultCallback | None,
) -> None:
    """AS-Output (Algorithm 4): report all cores starting exactly at ``ts``.

    Walks ``L_ts`` accumulating edges; a result is emitted at the last
    window of each end-time group once a window with start time ``ts``
    has been seen (the ``valid`` flag — Lemma 6).
    """
    accumulated: list[int] = []
    valid = False
    window = window_list.first
    while window is not None:
        accumulated.append(window.edge_id)
        if window.start == ts:
            valid = True
        nxt = window.next
        if valid and (nxt is None or nxt.end != window.end):
            result.record(ts, window.end, accumulated, collect)
            if on_result is not None:
                on_result(ts, window.end, accumulated)
        window = nxt


def enumerate_temporal_kcores(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    skyline: EdgeCoreSkyline | None = None,
    collect: bool = True,
    on_result: ResultCallback | None = None,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Enumerate all distinct temporal k-cores of ``[ts, te]`` (Enum).

    Parameters
    ----------
    skyline:
        A precomputed edge core window skyline whose span *contains* the
        query range (for example the full-span skyline of a
        :class:`repro.core.index.CoreIndex`).  A wider skyline is
        restricted to the range in one vectorised cut over its cached
        start-sorted permutation — minimal core windows are intrinsic to
        the graph, so the sub-range skyline is exactly the subset inside
        it.  When omitted, Algorithm 2 is run first over the query range.
    collect:
        When true (default), materialise every core; when false, only the
        counters of the returned :class:`EnumerationResult` are filled —
        this is the streaming mode the memory experiment (Fig. 12) uses.
    on_result:
        Optional streaming callback ``(ts, te, edge_id_prefix)``; the list
        argument is live and must be copied if retained.
    deadline:
        Optional soft deadline checked once per start time.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    if skyline is None:
        skyline = compute_core_times(graph, k, ts_lo, ts_hi).ecs
        assert skyline is not None
    elif (
        skyline.k != k
        or skyline.span[0] > ts_lo
        or skyline.span[1] < ts_hi
    ):
        raise InvalidParameterError(
            f"skyline computed for k={skyline.k}, span={skyline.span}; "
            f"query wants k={k}, span=({ts_lo}, {ts_hi}) — the skyline "
            "span must contain the query range"
        )

    arrays = skyline.active_window_arrays(ts_lo, ts_hi)
    return enumerate_active_window_arrays(
        k,
        ts_lo,
        ts_hi,
        arrays,
        collect=collect,
        on_result=on_result,
        deadline=deadline,
    )


def enumerate_active_window_arrays(
    k: int,
    ts_lo: int,
    ts_hi: int,
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    *,
    collect: bool = True,
    on_result: ResultCallback | None = None,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Run Enum over a prepared columnar ``(eid, start, end, active)`` slice.

    The inner half of :func:`enumerate_temporal_kcores`, exposed so the
    batch serving path (:meth:`repro.core.index.CoreIndex.query_batch`)
    can feed slices it cut for a whole group of ranges in one vectorised
    sweep.  ``arrays`` must describe exactly the minimal core windows
    inside ``[ts_lo, ts_hi]`` with their activation times
    (:meth:`EdgeCoreSkyline.active_window_arrays`).
    """
    result = EnumerationResult("enum", k, (ts_lo, ts_hi))
    if collect:
        result.cores = []
    eids, starts, ends, actives = arrays
    if not len(eids):
        return result
    activation, start = _bucket_window_arrays(
        eids, starts, ends, actives, ts_lo, ts_hi
    )

    window_list = WindowList()
    for current_ts in range(ts_lo, ts_hi + 1):
        if deadline is not None and deadline.expired():
            result.completed = False
            break
        offset = current_ts - ts_lo
        if current_ts > ts_lo:
            for window in start[offset - 1]:
                window_list.delete(window)
        window_list.insert_sorted_batch(activation[offset])
        if start[offset]:
            _as_output(window_list, current_ts, result, collect, on_result)
    return result
