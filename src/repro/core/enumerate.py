"""Optimal temporal k-core enumeration (Algorithms 4 and 5).

Given the edge core window skyline, :func:`enumerate_temporal_kcores`
reports every distinct temporal k-core of the query range exactly once,
in time bounded by the total result size ``O(|R|)`` (Theorem 3):

* Per start time ``ts``, the window list ``L_ts`` (ascending end times)
  is scanned once (**AS-Output**, Algorithm 4).  Lemma 4 restricts start
  times to those where some minimal core window starts; Lemma 5 and
  Lemma 6 (the ``valid`` flag) characterise the end times, and Theorem 2
  proves each reported window is a genuine TTI — hence no duplicates.
* Between start times, ``L_ts`` is updated in place: windows whose start
  expired are cut, windows whose activation time arrived are spliced in
  (**Enum**, Algorithm 5).

The walk itself is the *columnar* core of the serving layer
(:mod:`repro.serve.columnar`): ``L_ts`` is an end-sorted int64 matrix
updated by array cuts and ``searchsorted`` merges, and each start
time's cores are emitted as ``(end, prefix-length)`` pairs into a
result sink (:mod:`repro.serve.sinks`) — no per-window Python objects
at all.  The seed linked-list enumerator is preserved verbatim in
:mod:`repro.core.enumerate_ref` as the oracle the property suite
checks this path against.
"""

from __future__ import annotations

import numpy as np

from repro.core.coretime import compute_core_times
from repro.core.results import EnumerationResult, ResultCallback
from repro.core.windows import EdgeCoreSkyline
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.serve.columnar import run_columnar_walk
from repro.serve.sinks import ResultSink, make_sink
from repro.obs.timing import Deadline


def enumerate_temporal_kcores(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    skyline: EdgeCoreSkyline | None = None,
    collect: bool = True,
    on_result: ResultCallback | None = None,
    sink: ResultSink | None = None,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Enumerate all distinct temporal k-cores of ``[ts, te]`` (Enum).

    Parameters
    ----------
    skyline:
        A precomputed edge core window skyline whose span *contains* the
        query range (for example the full-span skyline of a
        :class:`repro.core.index.CoreIndex`).  A wider skyline is
        restricted to the range in one vectorised cut over its cached
        start-sorted permutation — minimal core windows are intrinsic to
        the graph, so the sub-range skyline is exactly the subset inside
        it.  When omitted, Algorithm 2 is run first over the query range.
    collect:
        When true (default), materialise every core; when false, only the
        counters of the returned :class:`EnumerationResult` are filled —
        this is the streaming mode the memory experiment (Fig. 12) uses.
    on_result:
        Optional streaming callback ``(ts, te, edge_id_prefix)``; the list
        argument is live and must be copied if retained.
    sink:
        Optional explicit :class:`~repro.serve.sinks.ResultSink` the
        emissions are delivered to (NDJSON, flat arrays, counters, ...).
        Overrides ``collect``/``on_result``; the returned result carries
        the sink's counters.
    deadline:
        Optional soft deadline checked once per visited start time.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    if skyline is None:
        skyline = compute_core_times(graph, k, ts_lo, ts_hi).ecs
        assert skyline is not None
    elif (
        skyline.k != k
        or skyline.span[0] > ts_lo
        or skyline.span[1] < ts_hi
    ):
        raise InvalidParameterError(
            f"skyline computed for k={skyline.k}, span={skyline.span}; "
            f"query wants k={k}, span=({ts_lo}, {ts_hi}) — the skyline "
            "span must contain the query range"
        )

    arrays = skyline.active_window_arrays(ts_lo, ts_hi)
    return enumerate_active_window_arrays(
        k,
        ts_lo,
        ts_hi,
        arrays,
        collect=collect,
        on_result=on_result,
        sink=sink,
        deadline=deadline,
    )


def enumerate_active_window_arrays(
    k: int,
    ts_lo: int,
    ts_hi: int,
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    *,
    collect: bool = True,
    on_result: ResultCallback | None = None,
    sink: ResultSink | None = None,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Run Enum over a prepared columnar ``(eid, start, end, active)`` slice.

    The inner half of :func:`enumerate_temporal_kcores`, exposed so
    callers that already cut a slice (the plan executor, benchmarks)
    can run the walk directly.  ``arrays`` must describe exactly the
    minimal core windows inside ``[ts_lo, ts_hi]`` with their
    activation times
    (:meth:`EdgeCoreSkyline.active_window_arrays`).
    """
    if sink is None:
        sink = make_sink(collect=collect, on_result=on_result)
    completed = run_columnar_walk(ts_lo, ts_hi, arrays, sink, deadline=deadline)
    sink.finish(completed)
    return sink.result("enum", k, (ts_lo, ts_hi))
