"""Optimal temporal k-core enumeration (Algorithms 4 and 5).

Given the edge core window skyline, :func:`enumerate_temporal_kcores`
reports every distinct temporal k-core of the query range exactly once,
in time bounded by the total result size ``O(|R|)`` (Theorem 3):

* Per start time ``ts``, the window list ``L_ts`` (ascending end times)
  is scanned once (**AS-Output**, Algorithm 4).  Lemma 4 restricts start
  times to those where some minimal core window starts; Lemma 5 and
  Lemma 6 (the ``valid`` flag) characterise the end times, and Theorem 2
  proves each reported window is a genuine TTI — hence no duplicates.
* Between start times, ``L_ts`` is updated in place: windows whose start
  expired are unlinked, windows whose activation time arrived are spliced
  in, pre-sorted by end time with one linear-time counting sort up front
  (**Enum**, Algorithm 5).
"""

from __future__ import annotations

from repro.core.coretime import compute_core_times
from repro.core.linkedlist import WindowList
from repro.core.results import EnumerationResult, ResultCallback
from repro.core.windows import ActiveWindow, EdgeCoreSkyline, build_active_windows
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.order import counting_sort_by
from repro.utils.timer import Deadline


def _bucket_windows(
    windows: list[ActiveWindow], ts_lo: int, ts_hi: int
) -> tuple[list[list[ActiveWindow]], list[list[ActiveWindow]]]:
    """Build the activation (``Ba``) and start (``Bs``) buckets.

    Windows are first counting-sorted by end time (Algorithm 5 line 8) so
    each bucket's contents are already in ascending end-time order — the
    precondition of the roving-cursor insertion.
    """
    ordered = counting_sort_by(windows, key=lambda w: w.end, lo=ts_lo, hi=ts_hi)
    span = ts_hi - ts_lo + 1
    activation: list[list[ActiveWindow]] = [[] for _ in range(span)]
    start: list[list[ActiveWindow]] = [[] for _ in range(span)]
    for window in ordered:
        activation[window.active - ts_lo].append(window)
        start[window.start - ts_lo].append(window)
    return activation, start


def _as_output(
    window_list: WindowList,
    ts: int,
    result: EnumerationResult,
    collect: bool,
    on_result: ResultCallback | None,
) -> None:
    """AS-Output (Algorithm 4): report all cores starting exactly at ``ts``.

    Walks ``L_ts`` accumulating edges; a result is emitted at the last
    window of each end-time group once a window with start time ``ts``
    has been seen (the ``valid`` flag — Lemma 6).
    """
    accumulated: list[int] = []
    valid = False
    window = window_list.first
    while window is not None:
        accumulated.append(window.edge_id)
        if window.start == ts:
            valid = True
        nxt = window.next
        if valid and (nxt is None or nxt.end != window.end):
            result.record(ts, window.end, accumulated, collect)
            if on_result is not None:
                on_result(ts, window.end, accumulated)
        window = nxt


def enumerate_temporal_kcores(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    skyline: EdgeCoreSkyline | None = None,
    collect: bool = True,
    on_result: ResultCallback | None = None,
    deadline: Deadline | None = None,
) -> EnumerationResult:
    """Enumerate all distinct temporal k-cores of ``[ts, te]`` (Enum).

    Parameters
    ----------
    skyline:
        A precomputed edge core window skyline whose span equals the
        query range (for example from :class:`repro.core.index.CoreIndex`).
        When omitted, Algorithm 2 is run first over the query range.
    collect:
        When true (default), materialise every core; when false, only the
        counters of the returned :class:`EnumerationResult` are filled —
        this is the streaming mode the memory experiment (Fig. 12) uses.
    on_result:
        Optional streaming callback ``(ts, te, edge_id_prefix)``; the list
        argument is live and must be copied if retained.
    deadline:
        Optional soft deadline checked once per start time.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    if skyline is None:
        skyline = compute_core_times(graph, k, ts_lo, ts_hi).ecs
        assert skyline is not None
    elif skyline.span != (ts_lo, ts_hi) or skyline.k != k:
        raise InvalidParameterError(
            f"skyline computed for k={skyline.k}, span={skyline.span}; "
            f"query wants k={k}, span=({ts_lo}, {ts_hi}) — use "
            "EdgeCoreSkyline.restricted_to or CoreIndex"
        )

    result = EnumerationResult("enum", k, (ts_lo, ts_hi))
    if collect:
        result.cores = []
    windows = build_active_windows(skyline, ts_lo)
    if not windows:
        return result
    activation, start = _bucket_windows(windows, ts_lo, ts_hi)

    window_list = WindowList()
    for current_ts in range(ts_lo, ts_hi + 1):
        if deadline is not None and deadline.expired():
            result.completed = False
            break
        offset = current_ts - ts_lo
        if current_ts > ts_lo:
            for window in start[offset - 1]:
                window_list.delete(window)
        window_list.insert_sorted_batch(activation[offset])
        if start[offset]:
            _as_output(window_list, current_ts, result, collect, on_result)
    return result
