"""Reference (pre-compiled-kernel) implementation of Algorithm 2.

This is the original dict-and-list CoreTime kernel, kept verbatim after
the hot path moved to the flat-array representation of
:mod:`repro.graph.csr`.  It serves two purposes:

* the equivalence oracle for the compiled kernel — the property tests
  assert that :func:`repro.core.coretime.compute_core_times` returns
  bit-identical VCT entries and ECS windows to this implementation;
* the "before" side of the PR 1 kernel benchmark
  (``benchmarks/bench_pr1_kernel.py``), which reports the speedup of the
  flat-array rewrite against this baseline.

It intentionally re-creates all per-query working state (pair-timestamp
dict, per-neighbour ``[v, times, ptr]`` cells, per-vertex incident lists)
on every call, exactly as the seed implementation did.
"""

from __future__ import annotations

from collections import deque

from repro.errors import InvalidParameterError
from repro.graph.static_core import DecrementalCore, peel_k_core
from repro.graph.temporal_graph import TemporalGraph
from repro.core.coretime import CoreTimeResult, VertexCoreTimeIndex
from repro.core.windows import EdgeCoreSkyline
from repro.utils.order import kth_smallest


class _ReferenceWindowState:
    """Mutable per-query working state shared by both phases.

    ``adjacency[u]`` holds one entry per distinct neighbour with at least
    one edge in the computed span: ``[v, times, ptr]`` where ``times`` is
    the sorted list of the pair's edge timestamps inside the span and
    ``ptr`` indexes the first time at or after the current start (advanced
    lazily and monotonically).  ``incident[u]`` lists the temporal edges of
    ``u`` sorted by *descending* timestamp so that skyline maintenance can
    stop scanning once edge times drop below the current start.
    """

    __slots__ = ("graph", "k", "ts_lo", "ts_hi", "inf", "adjacency", "incident", "ct")

    def __init__(self, graph: TemporalGraph, k: int, ts_lo: int, ts_hi: int):
        self.graph = graph
        self.k = k
        self.ts_lo = ts_lo
        self.ts_hi = ts_hi
        self.inf = ts_hi + 1
        n = graph.num_vertices

        pair_times: dict[tuple[int, int], list[int]] = {}
        incident: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
        for eid in graph.window_edge_ids(ts_lo, ts_hi):
            u, v, t = graph.edges[eid]
            pair_times.setdefault((u, v), []).append(t)
            incident[u].append((t, v, eid))
            incident[v].append((t, u, eid))
        adjacency: list[list[list]] = [[] for _ in range(n)]
        for (u, v), times in pair_times.items():
            # window_edge_ids yields in timestamp order, so times is sorted.
            adjacency[u].append([v, times, 0])
            adjacency[v].append([u, times, 0])
        for lst in incident:
            lst.sort(key=lambda item: -item[0])

        self.adjacency = adjacency
        self.incident = incident
        self.ct: list[int] = [self.inf] * n

    # ------------------------------------------------------------------

    def initial_scan(self) -> None:
        """Compute ``CT_Ts`` for all vertices by the decremental scan."""
        graph, k = self.graph, self.k
        ts_lo, ts_hi = self.ts_lo, self.ts_hi
        adjacency_sets: dict[int, set[int]] = {}
        for u, entries in enumerate(self.adjacency):
            if entries:
                adjacency_sets[u] = {entry[0] for entry in entries}
        members = peel_k_core(adjacency_sets, k) if adjacency_sets else set()
        if not members:
            return
        core_adjacency = {
            u: {v for v in adjacency_sets[u] if v in members} for u in members
        }
        pair_live: dict[tuple[int, int], int] = {}
        for u, entries in enumerate(self.adjacency):
            for v, times, _ in entries:
                if u < v:
                    pair_live[(u, v)] = len(times)

        current_te = ts_hi
        ct = self.ct

        def on_evict(w: int) -> None:
            ct[w] = current_te

        core = DecrementalCore(core_adjacency, k, on_evict=on_evict)
        for te in range(ts_hi, ts_lo, -1):
            current_te = te
            for eid in graph.edge_ids_at(te):
                u, v, _ = graph.edges[eid]
                pair = (u, v)
                remaining = pair_live[pair] - 1
                pair_live[pair] = remaining
                if remaining == 0:
                    core.delete_pair(u, v)
        for u in core.members:
            ct[u] = ts_lo

    def earliest_time(self, entry: list, ts: int) -> int | None:
        """Earliest edge time of a pair entry at or after ``ts`` (or None).

        Advances the entry's pointer; pointers only move forward because
        start times are processed in increasing order.
        """
        times = entry[1]
        ptr = entry[2]
        n = len(times)
        while ptr < n and times[ptr] < ts:
            ptr += 1
        entry[2] = ptr
        return times[ptr] if ptr < n else None

    def evaluate(self, u: int, ts: int) -> int:
        """The operator ``T(f)(u)`` at start ``ts`` under the current cts."""
        k = self.k
        inf = self.inf
        ct = self.ct
        avails: list[int] = []
        for entry in self.adjacency[u]:
            ett = self.earliest_time(entry, ts)
            if ett is None:
                continue
            cv = ct[entry[0]]
            if cv >= inf:
                continue
            avails.append(ett if ett >= cv else cv)
        if len(avails) < k:
            return inf
        return kth_smallest(avails, k)

    def advance_start(self, ts: int) -> dict[int, int]:
        """Move the start time to ``ts`` (from ``ts - 1``).

        Runs the chaotic fixpoint iteration seeded at the endpoints of the
        edges stamped ``ts - 1`` and returns ``{vertex: previous core
        time}`` for every vertex whose core time increased.
        """
        graph = self.graph
        ct = self.ct
        inf = self.inf
        changed: dict[int, int] = {}
        queue: deque[int] = deque()
        queued: set[int] = set()
        for eid in graph.edge_ids_at(ts - 1):
            u, v, _ = graph.edges[eid]
            for w in (u, v):
                if ct[w] < inf and w not in queued:
                    queue.append(w)
                    queued.add(w)
        while queue:
            u = queue.popleft()
            queued.discard(u)
            old = ct[u]
            if old >= inf:
                continue
            new = self.evaluate(u, ts)
            if new <= old:
                continue
            if u not in changed:
                changed[u] = old
            ct[u] = new
            for entry in self.adjacency[u]:
                v = entry[0]
                cv = ct[v]
                if cv >= inf or v in queued:
                    continue
                ett = self.earliest_time(entry, ts)
                if ett is None:
                    continue
                old_avail = ett if ett >= old else old
                if old_avail <= cv:
                    new_avail = ett if ett >= new else new
                    if new_avail > cv:
                        queue.append(v)
                        queued.add(v)
        return changed


def compute_core_times_reference(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    with_skyline: bool = True,
) -> CoreTimeResult:
    """Reference Algorithm 2: VCT index (and optionally ECS) over ``[ts, te]``.

    Semantically identical to
    :func:`repro.core.coretime.compute_core_times`; kept as the oracle for
    the compiled flat-array kernel.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    state = _ReferenceWindowState(graph, k, ts_lo, ts_hi)
    inf = state.inf
    ct = state.ct
    state.initial_scan()

    vct_entries: list[list[tuple[int, int | None]]] = [
        [] for _ in range(graph.num_vertices)
    ]
    for u in range(graph.num_vertices):
        if ct[u] < inf:
            vct_entries[u].append((ts_lo, ct[u]))

    ecs: list[list[tuple[int, int]]] | None = None
    ect: list[int] | None = None
    if with_skyline:
        ecs = [[] for _ in range(graph.num_edges)]
        ect = [inf] * graph.num_edges
        for eid in graph.window_edge_ids(ts_lo, ts_hi):
            u, v, t = graph.edges[eid]
            cu, cv = ct[u], ct[v]
            ect[eid] = max(cu, cv, t)
        # Edges stamped with the very first start time leave the window as
        # soon as the start advances: their pending window finalises now.
        for eid in graph.edge_ids_at(ts_lo):
            if ect[eid] <= ts_hi:
                ecs[eid].append((ts_lo, ect[eid]))

    for current_ts in range(ts_lo + 1, ts_hi + 1):
        changed = state.advance_start(current_ts)
        for u, _previous in changed.items():
            new_ct = ct[u]
            vct_entries[u].append((current_ts, new_ct if new_ct < inf else None))
            if ecs is None or ect is None:
                continue
            cu = new_ct
            for t, v, eid in state.incident[u]:
                if t < current_ts:
                    break
                new_ect = max(cu, ct[v], t)
                old_ect = ect[eid]
                if new_ect > old_ect:
                    if old_ect <= ts_hi:
                        ecs[eid].append((current_ts - 1, old_ect))
                    ect[eid] = new_ect
        if ecs is not None and ect is not None:
            for eid in graph.edge_ids_at(current_ts):
                if ect[eid] <= ts_hi:
                    ecs[eid].append((current_ts, ect[eid]))

    vct = VertexCoreTimeIndex(vct_entries, k, (ts_lo, ts_hi))
    skyline = (
        EdgeCoreSkyline([tuple(w) for w in ecs], k, (ts_lo, ts_hi))
        if ecs is not None
        else None
    )
    return CoreTimeResult(vct=vct, ecs=skyline)


def core_time_by_rescan_reference(
    graph: TemporalGraph, k: int, ts: int, te: int
) -> dict[int, int]:
    """Reference ``CT_ts`` for a single start time by direct scan."""
    graph.check_window(ts, te)
    state = _ReferenceWindowState(graph, k, ts, te)
    state.initial_scan()
    return {u: c for u, c in enumerate(state.ct) if c < state.inf}
