"""The doubly linked window list ``L_ts`` of Algorithm 5.

``L_ts`` holds every minimal core window whose activation time is at most
``ts`` and whose start time is at least ``ts``, in ascending end-time
order.  Moving from one start time to the next deletes the windows whose
start time just expired (O(1) each) and splices in the newly activated
windows (pre-sorted by end time, inserted with a forward-roving cursor) —
the ``O(|L \\ L'|)`` update the paper highlights in Section V-C.

This structure now backs only the **oracle** enumerator
(:mod:`repro.core.enumerate_ref`); the serving path maintains ``L_ts``
as an end-sorted int64 matrix instead (:mod:`repro.serve.columnar`).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.windows import ActiveWindow


class WindowList:
    """Doubly linked list of :class:`ActiveWindow`, ordered by end time."""

    __slots__ = ("_head",)

    def __init__(self) -> None:
        # Dummy head; head.next is the first real window.
        self._head = ActiveWindow(-1, -1, -1, -1)

    @property
    def first(self) -> ActiveWindow | None:
        return self._head.next

    def is_empty(self) -> bool:
        return self._head.next is None

    def delete(self, window: ActiveWindow) -> None:
        """Unlink ``window`` (procedure *Delete* of Algorithm 5)."""
        prev = window.prev
        if prev is None:
            raise ValueError("window is not linked")
        prev.next = window.next
        if window.next is not None:
            window.next.prev = prev
        window.prev = None
        window.next = None

    def insert_after(self, window: ActiveWindow, anchor: ActiveWindow) -> None:
        """Link ``window`` right after ``anchor`` (procedure *Insert*)."""
        follower = anchor.next
        window.prev = anchor
        window.next = follower
        anchor.next = window
        if follower is not None:
            follower.prev = window

    def insert_sorted_batch(self, windows: list[ActiveWindow]) -> None:
        """Splice a batch of windows already sorted by ascending end time.

        Implements lines 17–22 of Algorithm 5: a single cursor starts at
        the dummy head and only moves forward, so the whole batch costs
        ``O(|batch| + positions advanced)``.
        """
        cursor = self._head
        for window in windows:
            nxt = cursor.next
            while nxt is not None and nxt.end < window.end:
                cursor = nxt
                nxt = cursor.next
            self.insert_after(window, cursor)
            cursor = window

    def __iter__(self) -> Iterator[ActiveWindow]:
        node = self._head.next
        while node is not None:
            yield node
            node = node.next

    def to_list(self) -> list[ActiveWindow]:
        return list(self)

    def check_sorted(self) -> None:
        """Assert ascending end-time order (test hook)."""
        previous_end: int | None = None
        for window in self:
            if previous_end is not None and window.end < previous_end:
                raise AssertionError("window list not sorted by end time")
            previous_end = window.end
