"""A small serving layer: append-only edge streams over core indexes.

The paper's pipeline is offline: given a graph, build the skyline,
answer queries.  Deployments (fraud monitoring, trace analysis) instead
see an *append-only stream* of interactions and interleave queries with
ingestion.  :class:`StreamingCoreService` packages the honest version of
that pattern:

* edges are appended in raw-timestamp order (out-of-order appends are
  rejected — matching how interaction logs are produced);
* one service serves one or many registered ``k`` values; the VCT/ECS
  indexes are rebuilt lazily, governed by a staleness budget
  (``max_pending``): a query first folds in pending edges when the
  budget is exceeded or when ``strict`` freshness is requested, and a
  rebuild refreshes **all** registered ``k`` values in a single shared
  decremental scan (:func:`repro.core.multik.build_core_indexes`);
* queries can be asked in raw timestamps, translated through the
  current normalisation;
* the service can :meth:`~StreamingCoreService.snapshot` its graph and
  every index into an :class:`~repro.store.index_store.IndexStore` and a
  restarted process can :meth:`~StreamingCoreService.restore` from it —
  resuming from the last persisted indexes (fingerprint-checked) so only
  the edges appended after the snapshot need folding in.

Incrementally *maintaining* the skyline under general insertions is an
open problem the paper leaves to future work — but the append-only
ordering this service enforces makes the frontier case tractable:
:meth:`refresh` folds pending edges through
:func:`repro.core.incremental.delta_fold` when the cost model approves
(``mode="auto"``), touching only the fold window instead of rescanning
every edge, and falls back to the full shared multi-``k`` rebuild
whenever the fold declines (boundary timestamp ties, oversized change
cascades, fold windows above ``max_window_fraction``) — never wrong,
only slower.  See ``docs/STREAMING.md`` for the contract.

Thread-safety: the service is **not** internally locked — it is a
single-writer object.  Interleave appends and queries from one thread
(or protect it externally); concurrent readers of a *fresh* service are
safe because queries on a fresh index do not mutate state.
"""

from __future__ import annotations

import time as _time
from collections.abc import Hashable, Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.index import CoreIndex
from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.parallel import WorkerPool
    from repro.serve.sinks import ResultSink
    from repro.store.index_store import IndexStore
    from repro.store.wal import WriteAheadLog
    from repro.obs.timing import Deadline


def _normalise_ks(k: int | Iterable[int]) -> tuple[int, ...]:
    """``k`` (or several) as a validated ascending tuple."""
    ks = (k,) if isinstance(k, int) else tuple(sorted(set(k)))
    if not ks:
        raise InvalidParameterError("at least one k value is required")
    for value in ks:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise InvalidParameterError(f"k must be an integer >= 1, got {value!r}")
    return ks


def _fold_seconds_histogram():
    return get_registry().histogram(
        "repro_stream_fold_seconds",
        "Streaming refresh latency by resolved mode",
        ("mode",),
    )


def _lag_edges_gauge():
    return get_registry().gauge(
        "repro_stream_lag_edges", "Edges appended but not yet folded into indexes"
    )


def _lag_seconds_gauge():
    return get_registry().gauge(
        "repro_stream_lag_seconds", "Age of the oldest pending (unfolded) edge"
    )


class StreamingCoreService:
    """Append edges, query temporal k-cores, rebuild indexes lazily.

    Parameters
    ----------
    k:
        The ``k`` value to serve — or an iterable of them.  All
        registered values are rebuilt together in one shared pass;
        :meth:`query` defaults to the smallest and selects others via
        its ``k=`` argument.
    initial_edges:
        Optional backlog ingested at construction (still counts as
        pending until the first build).
    max_pending:
        Staleness budget: a non-``strict`` query tolerates up to this
        many pending appends before forcing a rebuild.
    max_lag:
        Time-based staleness budget in seconds (``None`` disables it):
        a non-``strict`` query also folds pending edges in when the
        *oldest* pending edge has been waiting longer than this — so a
        slow trickle of appends cannot stay unserved forever just
        because it never trips the count budget.
    max_window_fraction:
        Cost-model bound for ``refresh(mode="auto")``: an incremental
        fold whose recompute window would cover more than this fraction
        of all edges falls back to the full rebuild (the fold's
        advantage has evaporated by then).
    wal:
        Optional :class:`~repro.store.wal.WriteAheadLog` making appends
        durable: every :meth:`append`/:meth:`extend` is written (and,
        in the log's ``sync="always"`` mode, fsynced) to the log
        *before* it reaches the in-memory edge list, so an
        acknowledged append survives any crash — :meth:`restore`
        replays the log past the last snapshot.  ``initial_edges``
        are **not** written to the log (they are assumed to predate
        it or to have come *from* it via recovery).
    """

    def __init__(
        self,
        k: int | Iterable[int],
        initial_edges: Iterable[tuple[Hashable, Hashable, int]] = (),
        *,
        max_pending: int = 1_000,
        max_lag: float | None = None,
        max_window_fraction: float = 0.5,
        wal: "WriteAheadLog | None" = None,
    ):
        self.ks = _normalise_ks(k)
        self.k = self.ks[0]
        if max_pending < 0:
            raise InvalidParameterError("max_pending must be non-negative")
        if max_lag is not None and max_lag < 0:
            raise InvalidParameterError("max_lag must be non-negative")
        if not 0.0 <= max_window_fraction <= 1.0:
            raise InvalidParameterError("max_window_fraction must be in [0, 1]")
        self.max_pending = max_pending
        self.max_lag = max_lag
        self.max_window_fraction = max_window_fraction
        self.wal = wal
        self._edges: list[tuple[Hashable, Hashable, int]] = list(initial_edges)
        self._pending = len(self._edges)
        self._pending_since: float | None = (
            _time.monotonic() if self._pending else None
        )
        self._last_raw_time = max((t for _, _, t in self._edges), default=None)
        self._graph: TemporalGraph | None = None
        self._indexes: dict[int, CoreIndex] = {}
        self._fold_bufs: dict | None = None
        self._window_cache: dict[tuple[int, int], dict[int, CoreIndex]] = {}
        self._window_cache_edges = -1
        self.num_rebuilds = 0
        self.num_full_rebuilds = 0
        self.num_incremental_folds = 0
        self.last_fold_report = None
        self.last_fallback_reason: str | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def append(
        self, u: Hashable, v: Hashable, raw_t: int, *, token: str | None = None
    ) -> int | None:
        """Append one interaction; timestamps must be non-decreasing.

        Appending never rebuilds anything — it only grows the pending
        backlog, which invalidates the current indexes lazily (they keep
        serving until a query decides freshness matters; see
        :meth:`query`).

        With a write-ahead log attached the edge is made durable
        *before* it enters memory, and the assigned LSN is returned
        (``None`` otherwise); an ``OSError`` from the log (disk full)
        leaves the in-memory state untouched — nothing was
        acknowledged, nothing is half-applied.  ``token`` passes a
        dedupe token through to the log; a duplicate token is absorbed
        without growing the edge list and answers with the *original*
        LSN, so a retried acknowledgement is byte-identical.
        """
        first, _count = self._ingest([(u, v, raw_t)], token=token)
        return first

    def extend(
        self,
        edges: Iterable[tuple[Hashable, Hashable, int]],
        *,
        token: str | None = None,
    ) -> int:
        """Append many interactions (same ordering rule as :meth:`append`).

        The whole batch is validated up front and — with a WAL attached
        — written as **one** durable record (one fsync), so a crash
        admits all of the batch or none of it.  Returns the number of
        edges applied (0 when ``token`` deduplicated the batch).
        """
        _first, count = self._ingest(edges, token=token)
        return count

    def _ingest(
        self,
        edges: Iterable[tuple[Hashable, Hashable, int]],
        *,
        token: str | None = None,
    ) -> tuple[int | None, int]:
        batch = [(u, v, t) for u, v, t in edges]
        if not batch:
            return None, 0
        last = self._last_raw_time
        for _, _, t in batch:
            if last is not None and t < last:
                raise InvalidParameterError(
                    f"out-of-order append: {t} < last seen {last}"
                )
            last = t
        first: int | None = None
        if self.wal is not None:
            before = self.wal.last_lsn
            first, _n = self.wal.append_edges(batch, token=token)
            if first <= before:
                # The log already held this token: the original append
                # was acknowledged and is (or will be) in our edge list
                # via that acknowledgement — applying it again would
                # double-count the edges.
                return first, 0
        self._edges.extend(batch)
        self._last_raw_time = batch[-1][2]
        self._pending += len(batch)
        if self._pending_since is None:
            self._pending_since = _time.monotonic()
        _lag_edges_gauge().set(self._pending)
        return first, len(batch)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_pending(self) -> int:
        """Edges appended since the indexes were last built."""
        return self._pending

    @property
    def is_stale(self) -> bool:
        """Whether a strict query would trigger a rebuild right now."""
        return (
            self._pending > 0
            or any(k not in self._indexes for k in self.ks)
        )

    @property
    def lag_seconds(self) -> float:
        """Age of the oldest pending edge (0.0 when nothing is pending)."""
        if self._pending_since is None:
            return 0.0
        return _time.monotonic() - self._pending_since

    @property
    def lag_exceeded(self) -> bool:
        """Whether the time-based staleness budget is currently blown."""
        return self.max_lag is not None and self.lag_seconds > self.max_lag

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------

    def refresh(self, mode: str = "auto") -> str:
        """Fold every pending edge into the served graph and indexes.

        ``mode`` selects the maintenance strategy and the resolved mode
        is returned:

        * ``"full"`` — re-normalise the graph and rebuild all registered
          ``k`` values in one shared decremental scan (the only strategy
          before incremental folds existed).
        * ``"incremental"`` — fold the pending batch through
          :func:`repro.core.incremental.delta_fold`: extend the compiled
          arrays in place, recompute only the fold window, splice.  The
          result is entry-identical to a full rebuild.  Falls back to
          ``"full"`` when the fold is impossible (no base build yet, a
          pending edge ties the built graph's last raw timestamp, an
          oversized change cascade) — the fold is never wrong, only
          sometimes refused, and the fallback reason lands in
          ``last_fallback_reason``.
        * ``"auto"`` (default) — ``"incremental"`` plus the cost model:
          a fold whose recompute window would exceed
          ``max_window_fraction`` of all edges rebuilds in full instead.

        Counts as one rebuild in ``num_rebuilds`` regardless of mode and
        of how many ``k`` values are registered; the full/incremental
        split is in ``num_full_rebuilds`` / ``num_incremental_folds``.
        """
        if mode not in ("auto", "incremental", "full"):
            raise InvalidParameterError(
                f"refresh mode must be auto|incremental|full, got {mode!r}"
            )
        if not self._edges:
            raise InvalidParameterError("no edges ingested yet")
        started = _time.perf_counter()
        resolved = "full"
        if (
            mode != "full"
            and self._graph is not None
            and self._pending > 0
            and self._pending < len(self._edges)
            and all(k in self._indexes for k in self.ks)
        ):
            from repro.core.incremental import FoldFallback, delta_fold

            batch = self._edges[len(self._edges) - self._pending :]
            try:
                result = delta_fold(
                    self._graph,
                    self._indexes,
                    batch,
                    max_window_fraction=(
                        self.max_window_fraction if mode == "auto" else None
                    ),
                    bufs=self._fold_bufs,
                )
            except FoldFallback as fallback:
                self.last_fallback_reason = fallback.reason
            else:
                self._graph = result.graph
                self._indexes = result.indexes
                self._fold_bufs = result.bufs
                self.last_fold_report = result.report
                self.num_incremental_folds += 1
                resolved = "incremental"
        if resolved == "full":
            from repro.core.multik import build_core_indexes

            self._graph = TemporalGraph(self._edges)
            self._indexes = build_core_indexes(self._graph, self.ks)
            self._fold_bufs = None
            self.num_full_rebuilds += 1
        self._pending = 0
        self._pending_since = None
        self.num_rebuilds += 1
        _fold_seconds_histogram().labels(resolved).observe(
            _time.perf_counter() - started
        )
        _lag_edges_gauge().set(0)
        _lag_seconds_gauge().set(0.0)
        return resolved

    def _ensure_fresh(self, strict: bool) -> None:
        if self.is_stale and (
            strict
            or any(k not in self._indexes for k in self.ks)
            or self._pending > self.max_pending
            or self.lag_exceeded
        ):
            self.refresh()

    @property
    def graph(self) -> TemporalGraph:
        """The graph snapshot behind the current indexes (builds if needed)."""
        self._ensure_fresh(strict=False)
        assert self._graph is not None
        return self._graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _index_for(self, k: int | None) -> CoreIndex:
        chosen = self.k if k is None else k
        if chosen not in self.ks:
            raise InvalidParameterError(
                f"k={chosen} is not served by this service (registered: {self.ks})"
            )
        return self._indexes[chosen]

    def query(
        self,
        ts: int,
        te: int,
        *,
        k: int | None = None,
        strict: bool = False,
        collect: bool = True,
        sink: "ResultSink | None" = None,
    ) -> EnumerationResult:
        """Temporal k-cores of normalised range ``[ts, te]``.

        ``k`` selects among the registered values (default: the
        smallest).  ``strict=True`` forces pending edges to be folded in
        first; otherwise the answer may lag by up to ``max_pending``
        edges — the staleness contract callers opt into for throughput.
        The answer is planned and executed against the service's index
        (:meth:`CoreIndex.query <repro.core.index.CoreIndex.query>`);
        ``sink`` optionally streams it (:mod:`repro.serve.sinks`)
        instead of materialising — the long-poll daemon shape.
        """
        self._ensure_fresh(strict)
        return self._index_for(k).query(ts, te, collect=collect, sink=sink)

    def query_batch(
        self,
        ranges: Iterable[tuple[int, int]],
        *,
        k: int | None = None,
        strict: bool = False,
        collect: bool = False,
        sinks: "Sequence[ResultSink | None] | None" = None,
        deadline: "Deadline | None" = None,
        parallel: "WorkerPool | None" = None,
    ) -> list[EnumerationResult]:
        """Answer many ranges against the service's index, in input order.

        One staleness check covers the whole batch (``strict=True``
        folds pending edges in first, once), then the ranges go through
        :meth:`CoreIndex.query_batch
        <repro.core.index.CoreIndex.query_batch>` — deduped, merged
        into covering windows, cut with one vectorised sweep.
        ``sinks`` optionally streams per-range results through caller
        sinks (one entry per range, ``None`` falling back to the
        ``collect`` default), exactly as on ``CoreIndex.query_batch``.
        ``parallel`` fans the covering windows out over a
        :class:`~repro.serve.parallel.WorkerPool`; the service's
        current index is persisted into the pool store so workers mmap
        it (a rebuilt index after further appends is a new fingerprint
        — workers attach to the new blob, never a stale one).
        """
        self._ensure_fresh(strict)
        return self._index_for(k).query_batch(
            ranges,
            collect=collect,
            sinks=sinks,
            deadline=deadline,
            parallel=parallel,
        )

    def query_raw(
        self,
        raw_ts: int,
        raw_te: int,
        *,
        k: int | None = None,
        strict: bool = False,
        collect: bool = True,
    ) -> EnumerationResult:
        """Temporal k-cores between two *raw* timestamps (inclusive).

        Raw bounds are snapped inward to the nearest ingested timestamps
        (with ``strict=True`` pending edges are folded in *before*
        snapping, so the range can cover them); an empty snap (no data
        in the interval) raises.
        """
        if raw_ts > raw_te:
            raise InvalidParameterError(f"empty raw range [{raw_ts}, {raw_te}]")
        self._ensure_fresh(strict)
        window = self.graph.snap_raw_window(raw_ts, raw_te)
        if window is None:
            raise InvalidParameterError(
                f"no ingested timestamps inside raw range [{raw_ts}, {raw_te}]"
            )
        return self.query(window[0], window[1], k=k, strict=False, collect=collect)

    # ------------------------------------------------------------------
    # Restricted-window serving (sub-span builds)
    # ------------------------------------------------------------------

    def window_indexes(self, ts: int, te: int) -> dict[int, CoreIndex]:
        """Fresh indexes restricted to the normalised window ``[ts, te]``.

        Builds every registered ``k`` over just the requested sub-span
        (:func:`repro.core.multik.compute_core_times_multi` with
        ``ts``/``te`` bounds) against a graph containing **all** ingested
        edges — pending ones included — so the answer is always fresh
        without paying for a full-span rebuild.  Results are cached per
        window and invalidated by the next append or refresh.  Core
        times depend only on edges inside the window, so the sub-span
        arrays are exact over it (oracle-tested).
        """
        if not self._edges:
            raise InvalidParameterError("no edges ingested yet")
        if self._window_cache_edges != len(self._edges):
            self._window_cache.clear()
            self._window_cache_edges = len(self._edges)
        cached = self._window_cache.get((ts, te))
        if cached is not None:
            return cached
        from repro.core.multik import compute_core_times_multi

        if self._pending == 0 and self._graph is not None:
            graph = self._graph
        else:
            graph = TemporalGraph(self._edges)
        results = compute_core_times_multi(graph, self.ks, ts=ts, te=te)
        built = {
            k: CoreIndex.from_core_times(graph, k, results[k]) for k in self.ks
        }
        self._window_cache[(ts, te)] = built
        return built

    def query_window(
        self,
        ts: int,
        te: int,
        *,
        k: int | None = None,
        collect: bool = True,
        sink: "ResultSink | None" = None,
    ) -> EnumerationResult:
        """Temporal k-cores of ``[ts, te]`` via a restricted sub-span build.

        Unlike :meth:`query` this never consults (or builds) the
        full-span indexes: the window's own indexes are computed on
        demand (and cached), covering pending edges immediately.  The
        right tool when a stale service gets a narrow query and a whole
        backlog fold would cost more than answering directly.
        """
        chosen = self.k if k is None else k
        if chosen not in self.ks:
            raise InvalidParameterError(
                f"k={chosen} is not served by this service (registered: {self.ks})"
            )
        index = self.window_indexes(ts, te)[chosen]
        return index.query(ts, te, collect=collect, sink=sink)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Freshness and maintenance counters (registry-backed views)."""
        lag_seconds = self.lag_seconds
        _lag_edges_gauge().set(self._pending)
        _lag_seconds_gauge().set(lag_seconds)
        report = self.last_fold_report
        return {
            "num_edges": len(self._edges),
            "num_pending": self._pending,
            "lag_edges": self._pending,
            "lag_seconds": lag_seconds,
            "max_pending": self.max_pending,
            "max_lag": self.max_lag,
            "rebuilds": self.num_rebuilds,
            "full_rebuilds": self.num_full_rebuilds,
            "incremental_folds": self.num_incremental_folds,
            "last_fallback_reason": self.last_fallback_reason,
            "last_fold": None if report is None else vars(report).copy(),
        }

    # ------------------------------------------------------------------
    # Persistence: streaming snapshots
    # ------------------------------------------------------------------

    def snapshot(self, store: "IndexStore", *, name: str | None = None) -> str:
        """Persist the current graph + every index into ``store``.

        Pending edges are folded in first (one shared rebuild if stale),
        so the snapshot always captures everything ingested so far — for
        *all* registered ``k`` values.  Blob and manifest writes are
        atomic — a crash mid-snapshot leaves the previous snapshot
        intact.  Returns the store key.

        With a write-ahead log attached, the snapshot also advances the
        durable *recovery point*: the graph is committed together with
        the log position it covers (one atomic manifest replace — see
        :meth:`IndexStore.save_graph
        <repro.store.index_store.IndexStore.save_graph>`), and log
        segments the snapshot now covers are trimmed.  A crash anywhere
        in between is safe: before the manifest commit, recovery
        replays against the *old* snapshot; after it, replay starts
        past the new position; before the trim, replay simply filters
        out the already-covered records.
        """
        from repro.testing.crashpoints import crashpoint

        if self.is_stale:
            self.refresh()
        assert self._graph is not None
        covered = self.wal.last_lsn if self.wal is not None else None
        crashpoint("snapshot.pre-graph")
        key = store.save_graph(self._graph, name=name, stream_lsn=covered)
        crashpoint("snapshot.post-graph.pre-indexes")
        for k in self.ks:
            store.save_index(self._indexes[k], name=key)
        crashpoint("snapshot.post-indexes.pre-trim")
        if self.wal is not None and covered is not None:
            self.wal.trim(covered)
        return key

    @classmethod
    def restore(
        cls,
        store: "IndexStore",
        k: int | Iterable[int],
        *,
        name: str | None = None,
        max_pending: int = 1_000,
        max_lag: float | None = None,
        wal: "bool | str" = "auto",
        wal_segment_bytes: int | None = None,
    ) -> "StreamingCoreService":
        """Resume a service from the last durable state in ``store``.

        ``name`` selects the stored graph; when omitted the store must
        hold exactly one.  The ingested edge log is reconstructed from
        the persisted graph (labels and raw timestamps round-trip), and
        the persisted indexes are attached when their fingerprints still
        match — when **every** requested ``k`` loads, the first query
        runs with **zero** core-time computation.  Any missing, stale or
        corrupt index leaves the restored service stale: the next query
        folds everything in with one shared rebuild, never serving bad
        data.

        ``wal`` controls the write-ahead log: ``"auto"`` (default)
        attaches and replays one iff the key already has log segments;
        ``True`` always attaches (creating an empty log — how a fresh
        service opts into durability); ``False`` never touches it.
        Replayed records past the snapshot's recovery point re-enter
        the edge list as *pending* edges — they are **not** re-written
        to the log (they are already durable there) — so a restored
        service with attached indexes answers immediately at the
        snapshot's freshness and folds the replayed tail in under the
        usual staleness budget.  A key that has log segments but no
        snapshot yet (a crash before the first snapshot) restores to a
        service holding exactly the replayed edges.
        """
        keys = store.keys()
        if name is None:
            if len(keys) != 1:
                raise InvalidParameterError(
                    f"store holds {len(keys)} graphs; pass name= to choose one"
                )
            name = keys[0]
        elif name not in keys and not (wal is not False and store.has_wal(name)):
            raise InvalidParameterError(f"store has no graph named {name!r}")

        attach = wal is True or (wal == "auto" and store.has_wal(name))
        if not attach:
            graph = store.load_graph(name)
            edges = [
                (graph.label_of(u), graph.label_of(v), graph.raw_time_of(t))
                for u, v, t in graph.edges
            ]
            service = cls(k, edges, max_pending=max_pending, max_lag=max_lag)
            loaded: dict[int, CoreIndex] = {}
            for wanted in service.ks:
                index = store.load_index(graph, wanted, key=name)
                if index is not None:
                    loaded[wanted] = index
            if len(loaded) == len(service.ks):
                service._graph = graph
                service._indexes = loaded
                service._pending = 0
            return service

        recovery = store.recover(name, segment_bytes=wal_segment_bytes)
        graph = recovery.graph
        base_edges: list[tuple[Hashable, Hashable, int]] = []
        if graph is not None:
            base_edges = [
                (graph.label_of(u), graph.label_of(v), graph.raw_time_of(t))
                for u, v, t in graph.edges
            ]
        replayed = [(e.u, e.v, e.t) for e in recovery.events]
        service = cls(
            k,
            base_edges + replayed,
            max_pending=max_pending,
            max_lag=max_lag,
            wal=recovery.wal,
        )
        if graph is not None:
            loaded = {}
            for wanted in service.ks:
                index = store.load_index(graph, wanted, key=name)
                if index is not None:
                    loaded[wanted] = index
            if len(loaded) == len(service.ks):
                # Serve from the snapshot immediately; the replayed tail
                # stays pending under the normal staleness contract.
                service._graph = graph
                service._indexes = loaded
                service._pending = len(replayed)
        return service
