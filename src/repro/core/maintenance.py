"""A small serving layer: append-only edge streams over core indexes.

The paper's pipeline is offline: given a graph, build the skyline,
answer queries.  Deployments (fraud monitoring, trace analysis) instead
see an *append-only stream* of interactions and interleave queries with
ingestion.  :class:`StreamingCoreService` packages the honest version of
that pattern:

* edges are appended in raw-timestamp order (out-of-order appends are
  rejected — matching how interaction logs are produced);
* one service serves one or many registered ``k`` values; the VCT/ECS
  indexes are rebuilt lazily, governed by a staleness budget
  (``max_pending``): a query first folds in pending edges when the
  budget is exceeded or when ``strict`` freshness is requested, and a
  rebuild refreshes **all** registered ``k`` values in a single shared
  decremental scan (:func:`repro.core.multik.build_core_indexes`);
* queries can be asked in raw timestamps, translated through the
  current normalisation;
* the service can :meth:`~StreamingCoreService.snapshot` its graph and
  every index into an :class:`~repro.store.index_store.IndexStore` and a
  restarted process can :meth:`~StreamingCoreService.restore` from it —
  resuming from the last persisted indexes (fingerprint-checked) so only
  the edges appended after the snapshot need folding in.

Incrementally *maintaining* the skyline under insertions is an open
problem the paper leaves to future work; this layer deliberately
rebuilds (costs one shared multi-``k`` pass) rather than pretend
otherwise.

Thread-safety: the service is **not** internally locked — it is a
single-writer object.  Interleave appends and queries from one thread
(or protect it externally); concurrent readers of a *fresh* service are
safe because queries on a fresh index do not mutate state.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.index import CoreIndex
from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.parallel import WorkerPool
    from repro.serve.sinks import ResultSink
    from repro.store.index_store import IndexStore
    from repro.store.wal import WriteAheadLog
    from repro.obs.timing import Deadline


def _normalise_ks(k: int | Iterable[int]) -> tuple[int, ...]:
    """``k`` (or several) as a validated ascending tuple."""
    ks = (k,) if isinstance(k, int) else tuple(sorted(set(k)))
    if not ks:
        raise InvalidParameterError("at least one k value is required")
    for value in ks:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise InvalidParameterError(f"k must be an integer >= 1, got {value!r}")
    return ks


class StreamingCoreService:
    """Append edges, query temporal k-cores, rebuild indexes lazily.

    Parameters
    ----------
    k:
        The ``k`` value to serve — or an iterable of them.  All
        registered values are rebuilt together in one shared pass;
        :meth:`query` defaults to the smallest and selects others via
        its ``k=`` argument.
    initial_edges:
        Optional backlog ingested at construction (still counts as
        pending until the first build).
    max_pending:
        Staleness budget: a non-``strict`` query tolerates up to this
        many pending appends before forcing a rebuild.
    wal:
        Optional :class:`~repro.store.wal.WriteAheadLog` making appends
        durable: every :meth:`append`/:meth:`extend` is written (and,
        in the log's ``sync="always"`` mode, fsynced) to the log
        *before* it reaches the in-memory edge list, so an
        acknowledged append survives any crash — :meth:`restore`
        replays the log past the last snapshot.  ``initial_edges``
        are **not** written to the log (they are assumed to predate
        it or to have come *from* it via recovery).
    """

    def __init__(
        self,
        k: int | Iterable[int],
        initial_edges: Iterable[tuple[Hashable, Hashable, int]] = (),
        *,
        max_pending: int = 1_000,
        wal: "WriteAheadLog | None" = None,
    ):
        self.ks = _normalise_ks(k)
        self.k = self.ks[0]
        if max_pending < 0:
            raise InvalidParameterError("max_pending must be non-negative")
        self.max_pending = max_pending
        self.wal = wal
        self._edges: list[tuple[Hashable, Hashable, int]] = list(initial_edges)
        self._pending = len(self._edges)
        self._last_raw_time = max((t for _, _, t in self._edges), default=None)
        self._graph: TemporalGraph | None = None
        self._indexes: dict[int, CoreIndex] = {}
        self.num_rebuilds = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def append(
        self, u: Hashable, v: Hashable, raw_t: int, *, token: str | None = None
    ) -> int | None:
        """Append one interaction; timestamps must be non-decreasing.

        Appending never rebuilds anything — it only grows the pending
        backlog, which invalidates the current indexes lazily (they keep
        serving until a query decides freshness matters; see
        :meth:`query`).

        With a write-ahead log attached the edge is made durable
        *before* it enters memory, and the assigned LSN is returned
        (``None`` otherwise); an ``OSError`` from the log (disk full)
        leaves the in-memory state untouched — nothing was
        acknowledged, nothing is half-applied.  ``token`` passes a
        dedupe token through to the log; a duplicate token is absorbed
        without growing the edge list and answers with the *original*
        LSN, so a retried acknowledgement is byte-identical.
        """
        first, _count = self._ingest([(u, v, raw_t)], token=token)
        return first

    def extend(
        self,
        edges: Iterable[tuple[Hashable, Hashable, int]],
        *,
        token: str | None = None,
    ) -> int:
        """Append many interactions (same ordering rule as :meth:`append`).

        The whole batch is validated up front and — with a WAL attached
        — written as **one** durable record (one fsync), so a crash
        admits all of the batch or none of it.  Returns the number of
        edges applied (0 when ``token`` deduplicated the batch).
        """
        _first, count = self._ingest(edges, token=token)
        return count

    def _ingest(
        self,
        edges: Iterable[tuple[Hashable, Hashable, int]],
        *,
        token: str | None = None,
    ) -> tuple[int | None, int]:
        batch = [(u, v, t) for u, v, t in edges]
        if not batch:
            return None, 0
        last = self._last_raw_time
        for _, _, t in batch:
            if last is not None and t < last:
                raise InvalidParameterError(
                    f"out-of-order append: {t} < last seen {last}"
                )
            last = t
        first: int | None = None
        if self.wal is not None:
            before = self.wal.last_lsn
            first, _n = self.wal.append_edges(batch, token=token)
            if first <= before:
                # The log already held this token: the original append
                # was acknowledged and is (or will be) in our edge list
                # via that acknowledgement — applying it again would
                # double-count the edges.
                return first, 0
        self._edges.extend(batch)
        self._last_raw_time = batch[-1][2]
        self._pending += len(batch)
        return first, len(batch)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_pending(self) -> int:
        """Edges appended since the indexes were last built."""
        return self._pending

    @property
    def is_stale(self) -> bool:
        """Whether a strict query would trigger a rebuild right now."""
        return (
            self._pending > 0
            or any(k not in self._indexes for k in self.ks)
        )

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild the graph and every registered index over all edges.

        One call folds the whole backlog in: the graph is re-normalised
        and all registered ``k`` values are rebuilt in a single shared
        decremental scan.  Counts as one rebuild regardless of how many
        ``k`` values are registered.
        """
        if not self._edges:
            raise InvalidParameterError("no edges ingested yet")
        from repro.core.multik import build_core_indexes

        self._graph = TemporalGraph(self._edges)
        self._indexes = build_core_indexes(self._graph, self.ks)
        self._pending = 0
        self.num_rebuilds += 1

    def _ensure_fresh(self, strict: bool) -> None:
        if self.is_stale and (
            strict
            or any(k not in self._indexes for k in self.ks)
            or self._pending > self.max_pending
        ):
            self.refresh()

    @property
    def graph(self) -> TemporalGraph:
        """The graph snapshot behind the current indexes (builds if needed)."""
        self._ensure_fresh(strict=False)
        assert self._graph is not None
        return self._graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _index_for(self, k: int | None) -> CoreIndex:
        chosen = self.k if k is None else k
        if chosen not in self.ks:
            raise InvalidParameterError(
                f"k={chosen} is not served by this service (registered: {self.ks})"
            )
        return self._indexes[chosen]

    def query(
        self,
        ts: int,
        te: int,
        *,
        k: int | None = None,
        strict: bool = False,
        collect: bool = True,
        sink: "ResultSink | None" = None,
    ) -> EnumerationResult:
        """Temporal k-cores of normalised range ``[ts, te]``.

        ``k`` selects among the registered values (default: the
        smallest).  ``strict=True`` forces pending edges to be folded in
        first; otherwise the answer may lag by up to ``max_pending``
        edges — the staleness contract callers opt into for throughput.
        The answer is planned and executed against the service's index
        (:meth:`CoreIndex.query <repro.core.index.CoreIndex.query>`);
        ``sink`` optionally streams it (:mod:`repro.serve.sinks`)
        instead of materialising — the long-poll daemon shape.
        """
        self._ensure_fresh(strict)
        return self._index_for(k).query(ts, te, collect=collect, sink=sink)

    def query_batch(
        self,
        ranges: Iterable[tuple[int, int]],
        *,
        k: int | None = None,
        strict: bool = False,
        collect: bool = False,
        sinks: "Sequence[ResultSink | None] | None" = None,
        deadline: "Deadline | None" = None,
        parallel: "WorkerPool | None" = None,
    ) -> list[EnumerationResult]:
        """Answer many ranges against the service's index, in input order.

        One staleness check covers the whole batch (``strict=True``
        folds pending edges in first, once), then the ranges go through
        :meth:`CoreIndex.query_batch
        <repro.core.index.CoreIndex.query_batch>` — deduped, merged
        into covering windows, cut with one vectorised sweep.
        ``sinks`` optionally streams per-range results through caller
        sinks (one entry per range, ``None`` falling back to the
        ``collect`` default), exactly as on ``CoreIndex.query_batch``.
        ``parallel`` fans the covering windows out over a
        :class:`~repro.serve.parallel.WorkerPool`; the service's
        current index is persisted into the pool store so workers mmap
        it (a rebuilt index after further appends is a new fingerprint
        — workers attach to the new blob, never a stale one).
        """
        self._ensure_fresh(strict)
        return self._index_for(k).query_batch(
            ranges,
            collect=collect,
            sinks=sinks,
            deadline=deadline,
            parallel=parallel,
        )

    def query_raw(
        self,
        raw_ts: int,
        raw_te: int,
        *,
        k: int | None = None,
        strict: bool = False,
        collect: bool = True,
    ) -> EnumerationResult:
        """Temporal k-cores between two *raw* timestamps (inclusive).

        Raw bounds are snapped inward to the nearest ingested timestamps
        (with ``strict=True`` pending edges are folded in *before*
        snapping, so the range can cover them); an empty snap (no data
        in the interval) raises.
        """
        if raw_ts > raw_te:
            raise InvalidParameterError(f"empty raw range [{raw_ts}, {raw_te}]")
        self._ensure_fresh(strict)
        window = self.graph.snap_raw_window(raw_ts, raw_te)
        if window is None:
            raise InvalidParameterError(
                f"no ingested timestamps inside raw range [{raw_ts}, {raw_te}]"
            )
        return self.query(window[0], window[1], k=k, strict=False, collect=collect)

    # ------------------------------------------------------------------
    # Persistence: streaming snapshots
    # ------------------------------------------------------------------

    def snapshot(self, store: "IndexStore", *, name: str | None = None) -> str:
        """Persist the current graph + every index into ``store``.

        Pending edges are folded in first (one shared rebuild if stale),
        so the snapshot always captures everything ingested so far — for
        *all* registered ``k`` values.  Blob and manifest writes are
        atomic — a crash mid-snapshot leaves the previous snapshot
        intact.  Returns the store key.

        With a write-ahead log attached, the snapshot also advances the
        durable *recovery point*: the graph is committed together with
        the log position it covers (one atomic manifest replace — see
        :meth:`IndexStore.save_graph
        <repro.store.index_store.IndexStore.save_graph>`), and log
        segments the snapshot now covers are trimmed.  A crash anywhere
        in between is safe: before the manifest commit, recovery
        replays against the *old* snapshot; after it, replay starts
        past the new position; before the trim, replay simply filters
        out the already-covered records.
        """
        from repro.testing.crashpoints import crashpoint

        if self.is_stale:
            self.refresh()
        assert self._graph is not None
        covered = self.wal.last_lsn if self.wal is not None else None
        crashpoint("snapshot.pre-graph")
        key = store.save_graph(self._graph, name=name, stream_lsn=covered)
        crashpoint("snapshot.post-graph.pre-indexes")
        for k in self.ks:
            store.save_index(self._indexes[k], name=key)
        crashpoint("snapshot.post-indexes.pre-trim")
        if self.wal is not None and covered is not None:
            self.wal.trim(covered)
        return key

    @classmethod
    def restore(
        cls,
        store: "IndexStore",
        k: int | Iterable[int],
        *,
        name: str | None = None,
        max_pending: int = 1_000,
        wal: "bool | str" = "auto",
        wal_segment_bytes: int | None = None,
    ) -> "StreamingCoreService":
        """Resume a service from the last durable state in ``store``.

        ``name`` selects the stored graph; when omitted the store must
        hold exactly one.  The ingested edge log is reconstructed from
        the persisted graph (labels and raw timestamps round-trip), and
        the persisted indexes are attached when their fingerprints still
        match — when **every** requested ``k`` loads, the first query
        runs with **zero** core-time computation.  Any missing, stale or
        corrupt index leaves the restored service stale: the next query
        folds everything in with one shared rebuild, never serving bad
        data.

        ``wal`` controls the write-ahead log: ``"auto"`` (default)
        attaches and replays one iff the key already has log segments;
        ``True`` always attaches (creating an empty log — how a fresh
        service opts into durability); ``False`` never touches it.
        Replayed records past the snapshot's recovery point re-enter
        the edge list as *pending* edges — they are **not** re-written
        to the log (they are already durable there) — so a restored
        service with attached indexes answers immediately at the
        snapshot's freshness and folds the replayed tail in under the
        usual staleness budget.  A key that has log segments but no
        snapshot yet (a crash before the first snapshot) restores to a
        service holding exactly the replayed edges.
        """
        keys = store.keys()
        if name is None:
            if len(keys) != 1:
                raise InvalidParameterError(
                    f"store holds {len(keys)} graphs; pass name= to choose one"
                )
            name = keys[0]
        elif name not in keys and not (wal is not False and store.has_wal(name)):
            raise InvalidParameterError(f"store has no graph named {name!r}")

        attach = wal is True or (wal == "auto" and store.has_wal(name))
        if not attach:
            graph = store.load_graph(name)
            edges = [
                (graph.label_of(u), graph.label_of(v), graph.raw_time_of(t))
                for u, v, t in graph.edges
            ]
            service = cls(k, edges, max_pending=max_pending)
            loaded: dict[int, CoreIndex] = {}
            for wanted in service.ks:
                index = store.load_index(graph, wanted, key=name)
                if index is not None:
                    loaded[wanted] = index
            if len(loaded) == len(service.ks):
                service._graph = graph
                service._indexes = loaded
                service._pending = 0
            return service

        recovery = store.recover(name, segment_bytes=wal_segment_bytes)
        graph = recovery.graph
        base_edges: list[tuple[Hashable, Hashable, int]] = []
        if graph is not None:
            base_edges = [
                (graph.label_of(u), graph.label_of(v), graph.raw_time_of(t))
                for u, v, t in graph.edges
            ]
        replayed = [(e.u, e.v, e.t) for e in recovery.events]
        service = cls(
            k, base_edges + replayed, max_pending=max_pending, wal=recovery.wal
        )
        if graph is not None:
            loaded = {}
            for wanted in service.ks:
                index = store.load_index(graph, wanted, key=name)
                if index is not None:
                    loaded[wanted] = index
            if len(loaded) == len(service.ks):
                # Serve from the snapshot immediately; the replayed tail
                # stays pending under the normal staleness contract.
                service._graph = graph
                service._indexes = loaded
                service._pending = len(replayed)
        return service
