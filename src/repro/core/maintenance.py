"""A small serving layer: append-only edge streams over a core index.

The paper's pipeline is offline: given a graph, build the skyline,
answer queries.  Deployments (fraud monitoring, trace analysis) instead
see an *append-only stream* of interactions and interleave queries with
ingestion.  :class:`StreamingCoreService` packages the honest version of
that pattern:

* edges are appended in raw-timestamp order (out-of-order appends are
  rejected — matching how interaction logs are produced);
* the VCT/ECS index is rebuilt lazily, governed by a staleness budget
  (``max_pending``): a query first folds in pending edges when the
  budget is exceeded or when ``strict`` freshness is requested;
* queries can be asked in raw timestamps, translated through the
  current normalisation;
* the service can :meth:`~StreamingCoreService.snapshot` its graph and
  index into an :class:`~repro.store.index_store.IndexStore` and a
  restarted process can :meth:`~StreamingCoreService.restore` from it —
  resuming from the last persisted index (fingerprint-checked) so only
  the edges appended after the snapshot need folding in.

Incrementally *maintaining* the skyline under insertions is an open
problem the paper leaves to future work; this layer deliberately
rebuilds (costs one Algorithm-2 run) rather than pretend otherwise.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TYPE_CHECKING

from repro.core.index import CoreIndex
from repro.core.results import EnumerationResult
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.store.index_store import IndexStore


class StreamingCoreService:
    """Append edges, query temporal k-cores, rebuild the index lazily."""

    def __init__(
        self,
        k: int,
        initial_edges: Iterable[tuple[Hashable, Hashable, int]] = (),
        *,
        max_pending: int = 1_000,
    ):
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        if max_pending < 0:
            raise InvalidParameterError("max_pending must be non-negative")
        self.k = k
        self.max_pending = max_pending
        self._edges: list[tuple[Hashable, Hashable, int]] = list(initial_edges)
        self._pending = len(self._edges)
        self._last_raw_time = max((t for _, _, t in self._edges), default=None)
        self._graph: TemporalGraph | None = None
        self._index: CoreIndex | None = None
        self.num_rebuilds = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def append(self, u: Hashable, v: Hashable, raw_t: int) -> None:
        """Append one interaction; timestamps must be non-decreasing."""
        if self._last_raw_time is not None and raw_t < self._last_raw_time:
            raise InvalidParameterError(
                f"out-of-order append: {raw_t} < last seen {self._last_raw_time}"
            )
        self._edges.append((u, v, raw_t))
        self._last_raw_time = raw_t
        self._pending += 1

    def extend(self, edges: Iterable[tuple[Hashable, Hashable, int]]) -> None:
        for u, v, t in edges:
            self.append(u, v, t)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_pending(self) -> int:
        """Edges appended since the index was last built."""
        return self._pending

    @property
    def is_stale(self) -> bool:
        return self._index is None or self._pending > 0

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild the graph and index over everything ingested so far."""
        if not self._edges:
            raise InvalidParameterError("no edges ingested yet")
        self._graph = TemporalGraph(self._edges)
        self._index = CoreIndex(self._graph, self.k)
        self._pending = 0
        self.num_rebuilds += 1

    def _ensure_fresh(self, strict: bool) -> None:
        if self._index is None or (strict and self._pending > 0):
            self.refresh()
        elif self._pending > self.max_pending:
            self.refresh()

    @property
    def graph(self) -> TemporalGraph:
        """The graph snapshot behind the current index (builds if needed)."""
        self._ensure_fresh(strict=False)
        assert self._graph is not None
        return self._graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self, ts: int, te: int, *, strict: bool = False, collect: bool = True
    ) -> EnumerationResult:
        """Temporal k-cores of normalised range ``[ts, te]``.

        ``strict=True`` forces pending edges to be folded in first;
        otherwise the answer may lag by up to ``max_pending`` edges.
        """
        self._ensure_fresh(strict)
        assert self._index is not None
        return self._index.query(ts, te, collect=collect)

    def query_raw(
        self,
        raw_ts: int,
        raw_te: int,
        *,
        strict: bool = False,
        collect: bool = True,
    ) -> EnumerationResult:
        """Temporal k-cores between two *raw* timestamps (inclusive).

        Raw bounds are snapped inward to the nearest ingested timestamps;
        an empty snap (no data in the interval) raises.
        """
        if raw_ts > raw_te:
            raise InvalidParameterError(f"empty raw range [{raw_ts}, {raw_te}]")
        self._ensure_fresh(strict)
        window = self.graph.snap_raw_window(raw_ts, raw_te)
        if window is None:
            raise InvalidParameterError(
                f"no ingested timestamps inside raw range [{raw_ts}, {raw_te}]"
            )
        return self.query(window[0], window[1], strict=False, collect=collect)

    # ------------------------------------------------------------------
    # Persistence: streaming snapshots
    # ------------------------------------------------------------------

    def snapshot(self, store: "IndexStore", *, name: str | None = None) -> str:
        """Persist the current graph + index into ``store``; returns the key.

        Pending edges are folded in first (one rebuild if stale), so the
        snapshot always captures everything ingested so far.  Blob and
        manifest writes are atomic — a crash mid-snapshot leaves the
        previous snapshot intact.
        """
        if self._index is None or self._pending:
            self.refresh()
        assert self._index is not None
        return store.save_index(self._index, name=name)

    @classmethod
    def restore(
        cls,
        store: "IndexStore",
        k: int,
        *,
        name: str | None = None,
        max_pending: int = 1_000,
    ) -> "StreamingCoreService":
        """Resume a service from the last snapshot in ``store``.

        ``name`` selects the stored graph; when omitted the store must
        hold exactly one.  The ingested edge log is reconstructed from
        the persisted graph (labels and raw timestamps round-trip), and
        the persisted index for ``k`` is attached when its fingerprint
        still matches — in that case the first query runs with **zero**
        core-time computation.  A missing, stale or corrupt index simply
        leaves the restored service stale: the next query folds
        everything in with one rebuild, never serving bad data.
        """
        keys = store.keys()
        if name is None:
            if len(keys) != 1:
                raise InvalidParameterError(
                    f"store holds {len(keys)} graphs; pass name= to choose one"
                )
            name = keys[0]
        elif name not in keys:
            raise InvalidParameterError(f"store has no graph named {name!r}")
        graph = store.load_graph(name)
        edges = [
            (graph.label_of(u), graph.label_of(v), graph.raw_time_of(t))
            for u, v, t in graph.edges
        ]
        service = cls(k, edges, max_pending=max_pending)
        index = store.load_index(graph, k, key=name)
        if index is not None:
            service._graph = graph
            service._index = index
            service._pending = 0
        return service
