"""Vertex-set view of temporal k-cores — the paper's stated future work.

Section VII notes that representing cores as *vertex sets* can be far
more compact than edge sets, since many distinct edge sets span the same
vertices.  This module provides that view on top of the edge-set
enumeration:

* :func:`distinct_vertex_sets` — the distinct vertex sets among all
  temporal k-cores of a range, each with the TTIs it appears at;
* :func:`vertex_set_compression` — the compression ratio the future-work
  paragraph hypothesises (distinct vertex sets / distinct edge sets).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.results import EnumerationResult, TemporalKCore
from repro.graph.temporal_graph import TemporalGraph


def distinct_vertex_sets(
    graph: TemporalGraph,
    result_or_cores: EnumerationResult | Iterable[TemporalKCore],
) -> dict[frozenset[int], list[tuple[int, int]]]:
    """Group temporal k-cores by their vertex set.

    Returns ``{vertex_set: [tti, ...]}`` with TTIs sorted.  Accepts
    either a collected :class:`EnumerationResult` or any iterable of
    cores.
    """
    cores: Iterable[TemporalKCore]
    if isinstance(result_or_cores, EnumerationResult):
        cores = iter(result_or_cores)
    else:
        cores = result_or_cores
    grouped: dict[frozenset[int], list[tuple[int, int]]] = {}
    for core in cores:
        members = frozenset(core.vertices(graph))
        grouped.setdefault(members, []).append(core.tti)
    for ttis in grouped.values():
        ttis.sort()
    return grouped


def enumerate_vertex_sets(
    graph: TemporalGraph, k: int, ts: int | None = None, te: int | None = None
) -> dict[frozenset[int], list[tuple[int, int]]]:
    """Convenience: run Enum and return its distinct vertex sets."""
    result = enumerate_temporal_kcores(graph, k, ts, te, collect=True)
    return distinct_vertex_sets(graph, result)


def vertex_set_compression(
    graph: TemporalGraph, result: EnumerationResult
) -> float:
    """``distinct vertex sets / distinct edge sets`` in ``(0, 1]``.

    Values well below 1 support the future-work claim that a vertex-set
    representation de-duplicates a large share of the output.  Defined as
    1.0 for an empty result.
    """
    if result.num_results == 0:
        return 1.0
    return len(distinct_vertex_sets(graph, result)) / result.num_results
