"""Vertex core times and the edge core window skyline (Algorithm 2).

This module re-implements, for a fixed ``k``, the historical core-time
machinery of Yu et al. [13] that the paper builds on, and extends it with
the paper's Algorithm 2 to emit every edge's minimal core windows as a
byproduct.

Definitions (Section IV of the paper):

* ``CT_ts(u)`` — the earliest end time ``te`` such that ``u`` belongs to
  the k-core of the projected graph ``G[ts, te]``; infinite when no such
  window exists.
* The VCT index records, per vertex, the distinct core-time values with
  the earliest start time they hold from (Table I).
* The edge core time is ``CT_ts(u, v, t) = max(CT_ts(u), CT_ts(v), t)``
  (Lemma 1); a strict increase of an edge's core time when the start
  moves from ``ts`` to ``ts+1`` certifies ``[ts, CT_ts(e)]`` as a minimal
  core window (Lemma 2).

Algorithmic structure
---------------------

1. **First start time** (``ts = Ts``): a *decremental end-time scan*.
   Peel the k-core of ``G[Ts, Te]``, then shrink ``te`` from ``Te`` down
   to ``Ts`` deleting edge batches and cascading evictions; a vertex
   evicted while shrinking to ``te - 1`` has ``CT_Ts = te``.  Amortised
   ``O(n + m)``.

2. **Advancing the start time**: ``CT_ts`` is the least fixpoint of the
   monotone operator ``T(f)(u) = k-th smallest over distinct neighbours v
   of max(ett(u, v, ts), f(v))``, where ``ett`` is the earliest edge time
   of the pair at or after ``ts``.  Because core times never decrease in
   ``ts``, moving to ``ts+1`` only requires chaotic re-evaluation seeded
   at the endpoints of the edges stamped ``ts`` — the scheme whose cost
   matches the ``O(|VCT| * deg_avg)`` bound quoted by the paper.

Implementation notes
--------------------

The kernel runs entirely over the flat-array graph representation of
:class:`repro.graph.csr.CompiledGraph` (built once per graph and cached
via :meth:`TemporalGraph.compiled`): CSR distinct-neighbour adjacency,
one flat ``array('q')`` of pair timestamps with per-slot slices, a
timestamp→edge-id offset table making every window a contiguous edge-id
range, and a per-vertex incident-edge CSR for the skyline-emission loop.
Per query the only allocations are the pair-pointer array, the
earliest-time cache, the live-count array and the core-time array — no
pair dict, no nested list cells, no closures in inner loops.

Three further devices cut the fixpoint cost:

* **Eager earliest-times** — ``ett[s]``, the first edge time of slot
  ``s`` at or after the current start, is maintained incrementally: it
  only changes for pairs with an edge stamped at the expiring start
  time, whose ids are one contiguous range.  Operator evaluation then
  needs no pointer chasing at all.
* **Seed filtering** — when the start moves past ``ts - 1``, an endpoint
  ``u`` of an expiring edge ``(u, v)`` needs re-evaluation only if the
  pair's available time was at most ``CT(u)`` and strictly grows, an
  O(1) test (``CT(v) <= CT(u)`` and next pair time ``> CT(v)``).
* **Vectorised operator** — evaluating ``T(f)(u)`` is a gather of the
  neighbour core times over the CSR slice, an elementwise max against
  the slot earliest-times and a k-th-smallest partition, all on int64
  arrays; neighbour re-scheduling reuses the same slices.

The output side is *columnar*: :class:`_Harvester` accumulates VCT
transitions and finalised skyline windows as flat ``(id, value)`` array
chunks and assembles them with one stable sort into the offset-indexed
flat arrays that :class:`VertexCoreTimeIndex` and
:class:`~repro.core.windows.EdgeCoreSkyline` serve natively — the same
layout the on-disk store persists and the shared-scan multi-``k`` builder
of :mod:`repro.core.multik` produces, so every index in the system is one
representation.

The original dict-based kernel is preserved verbatim in
:mod:`repro.core.coretime_ref` as the equivalence oracle and benchmark
baseline; the property suite asserts bit-identical VCT and ECS output.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.core.windows import EdgeCoreSkyline
from repro.utils.arrays import as_int64_array, flatten_pairs, offsets_from_keys

#: Sentinel for "no remaining edge time" — larger than any timestamp.
_NO_TIME = 1 << 62

#: Flat-array encoding of an infinite core time (timestamps are >= 1).
INF_CT = -1


class VertexCoreTimeIndex:
    """The VCT index: per-vertex ``(start, core_time)`` transition lists.

    ``core_time`` is ``None`` for infinity.  Entry ``(s, c)`` means the
    core time equals ``c`` for every start time from ``s`` until the next
    entry's start (exclusive); vertices never in any k-core over the span
    have no entries at all.

    Stored columnar: ``offsets`` (``num_vertices + 1`` entries) indexes
    flat ``starts``/``cts`` arrays, with :data:`INF_CT` encoding infinity
    — the same layout the on-disk store serves zero-copy.  Scalar lookups
    bisect one vertex's segment; :meth:`core_members` answers a whole
    historical query in one vectorised ``searchsorted`` sweep.  The
    list-of-entries constructor converts eagerly and is kept for the
    reference oracle and the text loader.
    """

    __slots__ = ("k", "span", "_offsets", "_starts", "_cts", "_key")

    def __init__(
        self,
        entries: Sequence[Sequence[tuple[int, int | None]]],
        k: int,
        span: tuple[int, int],
    ):
        self.k = k
        self.span = span
        self._offsets, self._starts, self._cts = flatten_pairs(
            [
                [(start, INF_CT if ct is None else ct) for start, ct in vertex]
                for vertex in entries
            ]
        )
        self._key = None

    @classmethod
    def from_flat(cls, offsets, starts, cts, k: int, span: tuple[int, int]):
        """Wrap existing offset-indexed flat arrays (zero-copy).

        ``cts`` uses :data:`INF_CT` for infinite core times.  Accepts
        ndarrays, ``array('q')`` buffers and ``memoryview`` store
        sections alike.
        """
        index = cls.__new__(cls)
        index.k = k
        index.span = span
        index._offsets = as_int64_array(offsets)
        index._starts = as_int64_array(starts)
        index._cts = as_int64_array(cts)
        index._key = None
        return index

    @property
    def num_vertices(self) -> int:
        return len(self._offsets) - 1

    def flat_parts(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The native ``(offsets, starts, cts)`` arrays (shared, do not mutate)."""
        return self._offsets, self._starts, self._cts

    def entries_of(self, u: int) -> list[tuple[int, int | None]]:
        """Transition list of vertex ``u`` (ordered by start time)."""
        lo, hi = int(self._offsets[u]), int(self._offsets[u + 1])
        starts, cts = self._starts, self._cts
        return [
            (int(starts[i]), None if cts[i] == INF_CT else int(cts[i]))
            for i in range(lo, hi)
        ]

    def size(self) -> int:
        """``|VCT|`` — the total number of index entries.  O(1)."""
        return len(self._starts)

    def core_time(self, u: int, ts: int) -> int | None:
        """``CT_ts(u)`` — None when infinite (never in a k-core from ts).

        Binary-searches the vertex's segment; ``O(log |entries(u)|)``.
        """
        lo, hi = self.span
        if ts < lo or ts > hi:
            raise InvalidParameterError(f"start {ts} outside computed span {self.span}")
        left, right = int(self._offsets[u]), int(self._offsets[u + 1])
        if left == right:
            return None
        pos = bisect_right(self._starts, ts, left, right) - 1
        if pos < left:
            # Before the first recorded start; the first entry starts at
            # the span start, so this only happens for ts < span start,
            # which the guard above already excluded.
            return None
        ct = int(self._cts[pos])
        return None if ct == INF_CT else ct

    def in_core(self, u: int, ts: int, te: int) -> bool:
        """Is ``u`` in the k-core of ``G[ts, te]``?  (Historical query.)"""
        ct = self.core_time(u, ts)
        return ct is not None and ct <= te

    def _composite_key(self) -> np.ndarray:
        """Globally sorted ``vertex * stride + start`` keys; cached.

        Segments are per-vertex ascending starts, so with ``stride >
        span end`` the composite is globally ascending — one vectorised
        ``searchsorted`` then locates every vertex's active entry at
        once.
        """
        if self._key is None:
            counts = self._offsets[1:] - self._offsets[:-1]
            stride = self.span[1] + 2
            self._key = (
                np.repeat(np.arange(self.num_vertices, dtype=np.int64), counts)
                * stride
                + self._starts
            )
        return self._key

    def core_members(self, ts: int, te: int) -> np.ndarray:
        """Vertex ids in the k-core of ``G[ts, te]``, one vectorised sweep.

        The whole-graph historical query: for every vertex, the entry
        active at start ``ts`` is found by one ``searchsorted`` over the
        cached composite key, and membership is ``ct <= te`` — no
        per-vertex Python loop.
        """
        lo, hi = self.span
        if ts < lo or ts > hi:
            raise InvalidParameterError(f"start {ts} outside computed span {self.span}")
        n = self.num_vertices
        if not len(self._starts):
            return np.empty(0, dtype=np.int64)
        stride = self.span[1] + 2
        key = self._composite_key()
        pos = (
            np.searchsorted(
                key, np.arange(n, dtype=np.int64) * stride + ts, side="right"
            )
            - 1
        )
        valid = pos >= self._offsets[:-1]
        cts = self._cts[np.maximum(pos, 0)]
        return (valid & (cts != INF_CT) & (cts <= te)).nonzero()[0]


@dataclass(frozen=True)
class CoreTimeResult:
    """Output of :func:`compute_core_times`.

    Attributes
    ----------
    vct:
        The vertex core time index.
    ecs:
        The edge core window skyline, or ``None`` when skyline emission
        was disabled.
    """

    vct: VertexCoreTimeIndex
    ecs: EdgeCoreSkyline | None


class _WindowState:
    """Mutable per-query working state over the compiled flat arrays.

    The compiled graph supplies all immutable structure; per query only
    four mutable pieces exist: ``ct`` (current core times, int64),
    ``ptr`` (per adjacency slot, the index into the flat pair-timestamp
    array of the first time at or after the current start, advanced
    monotonically), ``ett`` (the timestamp that pointer designates, or a
    sentinel when the pair has no further edge) and, during the initial
    scan, per-slot live-edge counts.  Sub-windows need no rebuilt
    structure: pointers are positioned once at ``ts_lo`` and the end
    bound is a comparison against ``ts_hi``.
    """

    __slots__ = (
        "graph",
        "cg",
        "k",
        "ts_lo",
        "ts_hi",
        "inf",
        "ct",
        "ptr",
        "ett",
        "_inq",
        "_inc_end",
    )

    def __init__(self, graph: TemporalGraph, k: int, ts_lo: int, ts_hi: int):
        self.graph = graph
        self.cg = cg = graph.compiled()
        self.k = k
        self.ts_lo = ts_lo
        self.ts_hi = ts_hi
        self.inf = ts_hi + 1
        self.ct = np.full(cg.num_vertices, self.inf, dtype=np.int64)
        if ts_lo == 1:
            self.ptr = list(cg.slot_times_start)
            self.ett = cg.np_slot_first_time.copy()
        else:
            # Position each pair's pointer at its first edge time >= ts_lo.
            # All pairs bisect at once: each pair's slice of ``pair_times``
            # is ascending and times never exceed ``tmax``, so the
            # composite key ``pid * stride + time`` is globally sorted and
            # one searchsorted answers every pair (both directional slots
            # share the result).
            pair_times = as_int64_array(cg.pair_times)
            pair_offset = as_int64_array(cg.pair_offset)
            num_pairs = cg.num_pairs
            stride = np.int64(cg.tmax + 2)
            counts = pair_offset[1:] - pair_offset[:-1]
            pids = np.arange(num_pairs, dtype=np.int64)
            composite = np.repeat(pids, counts) * stride + pair_times
            first_index = np.searchsorted(composite, pids * stride + ts_lo)
            self.ptr = first_index[cg.np_slot_pid].tolist()
            exhausted = first_index >= pair_offset[1:]
            pair_first_time = np.where(
                exhausted,
                _NO_TIME,
                pair_times[np.minimum(first_index, max(len(pair_times) - 1, 0))],
            )
            self.ett = pair_first_time[cg.np_slot_pid]
        self._inq = bytearray(cg.num_vertices)
        self._inc_end: dict[int, int] | None = None if ts_hi >= cg.tmax else {}

    # ------------------------------------------------------------------

    def initial_scan(self) -> None:
        """Compute ``CT_Ts`` for all vertices by the decremental scan.

        Peels the k-core of the widest window with flat degree/live-count
        arrays, then shrinks the end time deleting contiguous edge-id
        batches; per-pair live counts are maintained through the
        edge→slot maps with two array writes per edge.
        """
        cg = self.cg
        k = self.k
        ts_lo, ts_hi = self.ts_lo, self.ts_hi
        n = cg.num_vertices
        adj_offsets = cg.adj_offsets
        adj_neighbour = cg.adj_neighbour
        edge_slot_u = cg.edge_slot_u
        edge_slot_v = cg.edge_slot_v
        edge_u = cg.edge_u
        edge_v = cg.edge_v
        time_offset = cg.time_offset

        if ts_lo == 1 and ts_hi == cg.tmax:
            live = list(cg.slot_count)
            degree = list(cg.full_degree)
        else:
            live = [0] * cg.num_slots
            for eid in range(time_offset[ts_lo], time_offset[ts_hi + 1]):
                live[edge_slot_u[eid]] += 1
                live[edge_slot_v[eid]] += 1
            degree = [0] * n
            for u in range(n):
                d = 0
                for s in range(adj_offsets[u], adj_offsets[u + 1]):
                    if live[s]:
                        d += 1
                degree[u] = d

        # Peel the k-core of G[ts_lo, ts_hi].
        alive = bytearray(n)
        stack: list[int] = []
        for u in range(n):
            if degree[u] < k:
                stack.append(u)
            else:
                alive[u] = 1
        while stack:
            u = stack.pop()
            if alive[u]:
                alive[u] = 0
            for s in range(adj_offsets[u], adj_offsets[u + 1]):
                if live[s]:
                    v = adj_neighbour[s]
                    if alive[v]:
                        d = degree[v] - 1
                        degree[v] = d
                        if d == k - 1:
                            stack.append(v)

        # Decremental end-time scan: delete the edges stamped te (a
        # contiguous id range), cascading evictions; a vertex evicted
        # while shrinking to te - 1 has CT_Ts = te.
        ct = self.ct
        for te in range(ts_hi, ts_lo, -1):
            for eid in range(time_offset[te], time_offset[te + 1]):
                su = edge_slot_u[eid]
                remaining = live[su] - 1
                live[su] = remaining
                sv = edge_slot_v[eid]
                live[sv] -= 1
                if remaining == 0:
                    u = edge_u[eid]
                    v = edge_v[eid]
                    if alive[u] and alive[v]:
                        du = degree[u] - 1
                        degree[u] = du
                        dv = degree[v] - 1
                        degree[v] = dv
                        if du == k - 1:
                            stack.append(u)
                        if dv == k - 1:
                            stack.append(v)
                        while stack:
                            w = stack.pop()
                            if not alive[w]:
                                continue
                            alive[w] = 0
                            ct[w] = te
                            for s in range(adj_offsets[w], adj_offsets[w + 1]):
                                if live[s]:
                                    x = adj_neighbour[s]
                                    if alive[x]:
                                        d = degree[x] - 1
                                        degree[x] = d
                                        if d == k - 1:
                                            stack.append(x)
        for u in range(n):
            if alive[u]:
                ct[u] = ts_lo

    def expire_start(self, ts: int) -> None:
        """Advance pair pointers past the edges stamped ``ts - 1``.

        The earliest time of a pair changes exactly when the start moves
        past one of its edge times, so only the (contiguous) edge batch at
        ``ts - 1`` needs its two directional slots refreshed.
        """
        cg = self.cg
        ptr = self.ptr
        ett = self.ett
        times = cg.pair_times
        slot_times_end = cg.slot_times_end
        edge_slot_u = cg.edge_slot_u
        edge_slot_v = cg.edge_slot_v
        time_offset = cg.time_offset
        for eid in range(time_offset[ts - 1], time_offset[ts]):
            s = edge_slot_u[eid]
            p = ptr[s]
            end = slot_times_end[s]
            while p < end and times[p] < ts:
                p += 1
            ptr[s] = p
            ett[s] = times[p] if p < end else _NO_TIME
            s = edge_slot_v[eid]
            p = ptr[s]
            end = slot_times_end[s]
            while p < end and times[p] < ts:
                p += 1
            ptr[s] = p
            ett[s] = times[p] if p < end else _NO_TIME

    def advance_start(self, ts: int) -> dict[int, int]:
        """Move the start time to ``ts`` (from ``ts - 1``).

        Refreshes the earliest-times of the expiring edge batch, then
        runs the chaotic fixpoint iteration seeded at the endpoints whose
        core time can actually grow, and returns ``{vertex: previous core
        time}`` for every vertex whose core time increased.
        """
        self.expire_start(ts)
        return self.run_fixpoint(self.seeds_after_expire(ts))

    def seeds_after_expire(self, ts: int) -> list[int]:
        """Fixpoint seeds for the move to start ``ts`` (after expiry).

        Seed filter, vectorised over the expiring batch: endpoint ``u``
        of pair ``(u, v)`` needs re-evaluation only if the pair's
        available time ``max(ett, CT(v))`` contributed to ``CT(u)``
        before (``CT(v) <= CT(u)``, since the expiring time made the max
        ``CT(v)``) and strictly grows now (next pair time ``> CT(v)``).
        Must be called after :meth:`expire_start` has advanced the
        pointers past the edges stamped ``ts - 1``.
        """
        cg = self.cg
        ct = self.ct
        ett = self.ett
        ts_hi = self.ts_hi
        time_offset = cg.time_offset
        batch_lo = time_offset[ts - 1]
        batch_hi = time_offset[ts]
        if batch_lo >= batch_hi:
            return []
        batch = slice(batch_lo, batch_hi)
        endpoint_u = cg.np_edge_u[batch]
        endpoint_v = cg.np_edge_v[batch]
        ct_u = ct[endpoint_u]
        ct_v = ct[endpoint_v]
        next_time = ett[cg.np_edge_slot_u[batch]]
        seed_u = (ct_u <= ts_hi) & (ct_v <= ct_u) & (next_time > ct_v)
        seed_v = (ct_v <= ts_hi) & (ct_u <= ct_v) & (next_time > ct_u)
        return np.concatenate((endpoint_u[seed_u], endpoint_v[seed_v])).tolist()

    def run_fixpoint(self, seeds: list[int]) -> dict[int, int]:
        """Chaotic re-evaluation of the core-time operator from ``seeds``.

        Returns ``{vertex: previous core time}`` for every vertex whose
        core time increased.  Seeds are deduplicated on entry (repeats
        are harmless); re-scheduling cascades through the CSR slices.
        """
        cg = self.cg
        ct = self.ct
        ett = self.ett
        k = self.k
        inf = self.inf
        ts_hi = self.ts_hi
        adj_offsets = cg.adj_offsets
        np_adj_neighbour = cg.np_adj_neighbour
        changed: dict[int, int] = {}
        queue: deque[int] = deque()
        inq = self._inq
        for w in seeds:
            if not inq[w]:
                inq[w] = 1
                queue.append(w)

        km1 = k - 1
        while queue:
            u = queue.popleft()
            inq[u] = 0
            old = int(ct[u])
            if old >= inf:
                continue
            lo = adj_offsets[u]
            hi = adj_offsets[u + 1]
            neighbours = np_adj_neighbour[lo:hi]
            neighbour_ct = ct[neighbours]
            slot_ett = ett[lo:hi]
            avail = np.maximum(slot_ett, neighbour_ct)
            # Entries past ts_hi (neighbour or pair exhausted) sort after
            # every finite value, so the k-th smallest of the raw array is
            # either the k-th finite value or a witness that fewer than k
            # finite values exist.
            if avail.size <= km1:
                new = inf
            else:
                if k == 1:
                    candidate = int(avail.min())
                else:
                    avail.partition(km1)
                    candidate = int(avail[km1])
                new = candidate if candidate <= ts_hi else inf
            if new <= old:
                continue
            if u not in changed:
                changed[u] = old
            ct[u] = new
            # Re-schedule neighbours whose k-th-smallest input may have
            # grown: only those for which u's available time was at most
            # their core time before the increase and above it after.
            push = (np.maximum(slot_ett, old) <= neighbour_ct) & (
                neighbour_ct <= ts_hi
            )
            if new <= ts_hi:
                push &= np.maximum(slot_ett, new) > neighbour_ct
            for w in neighbours[push].tolist():
                if not inq[w]:
                    inq[w] = 1
                    queue.append(w)
        return changed

    def incident_end(self, u: int) -> int:
        """One past the last incident-CSR index of ``u`` inside the span.

        Incident edges are sorted by ascending time; for full-span
        queries this is just the CSR offset, for sub-windows the cut at
        ``ts_hi`` is binary-searched once per vertex and memoised.
        """
        cg = self.cg
        if self._inc_end is None:
            return cg.inc_offsets[u + 1]
        cached = self._inc_end.get(u)
        if cached is not None:
            return cached
        inc_time = cg.np_inc_time
        lo = cg.inc_offsets[u]
        hi = cg.inc_offsets[u + 1]
        end = lo + int(np.searchsorted(inc_time[lo:hi], self.ts_hi, side="right"))
        self._inc_end[u] = end
        return end


class _Harvester:
    """Per-``k`` columnar accumulation of VCT entries and skyline windows.

    The output side of Algorithm 2, factored out of the driver loop so
    the single-``k`` path here and the shared-scan multi-``k`` path of
    :mod:`repro.core.multik` run the *same* emission scheme: seeded from
    the initial-scan core times, then fed every ``(ts, changed)`` step of
    the advancing phase via :meth:`harvest`.  Entries are appended as
    flat ``(id, value)`` array chunks in ascending step order and frozen
    into the native offset-indexed arrays by one stable sort per side —
    no per-entry Python tuples anywhere on the build path.
    """

    __slots__ = (
        "state",
        "ect",
        "_vct_verts",
        "_vct_cts",
        "_vct_ts",
        "_ecs_eids",
        "_ecs_t1",
        "_ecs_t2",
    )

    def __init__(self, state: _WindowState, with_skyline: bool):
        cg = state.cg
        inf = state.inf
        ct = state.ct
        ts_lo, ts_hi = state.ts_lo, state.ts_hi
        time_offset = cg.time_offset
        self.state = state
        initial = (ct < inf).nonzero()[0]
        self._vct_verts: list[np.ndarray] = [initial]
        self._vct_cts: list[np.ndarray] = [ct[initial]]
        self._vct_ts: list[int] = [ts_lo]
        self._ecs_eids: list[np.ndarray] = []
        self._ecs_t1: list[np.ndarray] = []
        self._ecs_t2: list[np.ndarray] = []
        self.ect: "np.ndarray | None" = None
        if with_skyline:
            self.ect = np.full(cg.num_edges, inf, dtype=np.int64)
            window = slice(time_offset[ts_lo], time_offset[ts_hi + 1])
            self.ect[window] = np.maximum(
                np.maximum(ct[cg.np_edge_u[window]], ct[cg.np_edge_v[window]]),
                cg.np_edge_t[window],
            )
            # Edges stamped with the very first start time leave the
            # window as soon as the start advances: their pending window
            # finalises now.
            self._emit_batch(ts_lo)

    def _emit_batch(self, stamp_ts: int) -> None:
        """Emit ``(stamp_ts, ect)`` for the edge batch stamped ``stamp_ts``."""
        time_offset = self.state.cg.time_offset
        base = time_offset[stamp_ts]
        batch = self.ect[base : time_offset[stamp_ts + 1]]
        emit = (batch <= self.state.ts_hi).nonzero()[0]
        if emit.size:
            self._ecs_eids.append(emit + base)
            self._ecs_t1.append(np.full(len(emit), stamp_ts, dtype=np.int64))
            self._ecs_t2.append(batch[emit])

    def harvest(self, current_ts: int, changed: dict[int, int]) -> None:
        """Fold in one advancing step: VCT transitions + finalised windows."""
        state = self.state
        cg = state.cg
        ct = state.ct
        ts_hi = state.ts_hi
        ect = self.ect
        if changed:
            verts = np.fromiter(changed, np.int64, len(changed))
            self._vct_verts.append(verts)
            self._vct_cts.append(ct[verts])
            self._vct_ts.append(current_ts)
            if ect is not None:
                # Collect the incident-CSR suffixes (time >= current_ts) of
                # every changed vertex and re-derive the core times of those
                # edges in one vectorised pass: any strict increase finalises
                # the previously pending minimal window at current_ts - 1
                # (Lemma 2).  An edge with both endpoints changed appears
                # twice with the same re-derived value (both gathers read the
                # final cts), so increases are deduplicated per edge id.
                inc_offsets = cg.inc_offsets
                inc_time = cg.np_inc_time
                inc_other = cg.np_inc_other
                inc_eid = cg.np_inc_eid
                pieces: list[np.ndarray] = []
                piece_ct: list[int] = []
                piece_len: list[int] = []
                for u in changed:
                    lo = inc_offsets[u]
                    hi = state.incident_end(u)
                    lo += inc_time[lo:hi].searchsorted(current_ts)
                    if lo < hi:
                        pieces.append(np.arange(lo, hi))
                        piece_ct.append(int(ct[u]))
                        piece_len.append(hi - lo)
                if pieces:
                    index = np.concatenate(pieces)
                    changed_ct = np.repeat(
                        np.asarray(piece_ct, dtype=np.int64),
                        np.asarray(piece_len),
                    )
                    new_ect = np.maximum(ct[inc_other[index]], inc_time[index])
                    np.maximum(new_ect, changed_ct, out=new_ect)
                    edge_ids = inc_eid[index]
                    old_ect = ect[edge_ids]
                    grew = (new_ect > old_ect).nonzero()[0]
                    if grew.size:
                        grew_ids = edge_ids[grew]
                        grew_old = old_ect[grew]
                        unique_ids, first = np.unique(grew_ids, return_index=True)
                        finalised = grew_old[first]
                        emit = (finalised <= ts_hi).nonzero()[0]
                        if emit.size:
                            self._ecs_eids.append(unique_ids[emit])
                            self._ecs_t1.append(
                                np.full(len(emit), current_ts - 1, dtype=np.int64)
                            )
                            self._ecs_t2.append(finalised[emit])
                        ect[grew_ids] = new_ect[grew]
        if ect is not None:
            self._emit_batch(current_ts)

    def result(self) -> CoreTimeResult:
        """Assemble the columnar chunks into the native flat-array result.

        Chunks were appended in ascending step order, so one stable sort
        by id groups every vertex's transitions (and every edge's
        windows) contiguously in ascending time — exactly the
        offset-indexed layout the index classes serve queries from.
        """
        state = self.state
        inf = state.inf
        span = (state.ts_lo, state.ts_hi)
        n = state.cg.num_vertices

        verts = np.concatenate(self._vct_verts)
        starts = np.repeat(
            np.asarray(self._vct_ts, dtype=np.int64),
            np.asarray([len(c) for c in self._vct_verts], dtype=np.int64),
        )
        cts = np.concatenate(self._vct_cts)
        order = np.argsort(verts, kind="stable")
        verts = verts[order]
        cts = cts[order]
        vct = VertexCoreTimeIndex.from_flat(
            offsets_from_keys(verts, n),
            starts[order],
            np.where(cts >= inf, INF_CT, cts),
            state.k,
            span,
        )

        skyline = None
        if self.ect is not None:
            m = state.cg.num_edges
            if self._ecs_eids:
                eids = np.concatenate(self._ecs_eids)
                t1 = np.concatenate(self._ecs_t1)
                t2 = np.concatenate(self._ecs_t2)
            else:
                eids = np.empty(0, dtype=np.int64)
                t1 = np.empty(0, dtype=np.int64)
                t2 = np.empty(0, dtype=np.int64)
            order = np.argsort(eids, kind="stable")
            eids = eids[order]
            skyline = EdgeCoreSkyline.from_flat(
                offsets_from_keys(eids, m), t1[order], t2[order], state.k, span
            )
        return CoreTimeResult(vct=vct, ecs=skyline)


def compute_core_times(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    with_skyline: bool = True,
) -> CoreTimeResult:
    """Compute the VCT index (and optionally the ECS) over ``[ts, te]``.

    This is the paper's Algorithm 2 (*CoreTime*): the historical
    core-time maintenance of [13] for a fixed ``k``, with minimal core
    windows of every edge emitted as a byproduct.

    Parameters default to the graph's full span.  Complexity:
    ``O(|VCT| * deg_avg)`` plus the ``O(n + m)`` initial scan.  The first
    call on a graph compiles its flat-array representation (cached on the
    graph); subsequent calls reuse it.  The returned VCT/ECS are served
    from offset-indexed flat int64 arrays — the same representation the
    on-disk store persists and :mod:`repro.core.multik` builds.  For
    several ``k`` values over the same window,
    :func:`repro.core.multik.compute_core_times_multi` shares the scan
    across them.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    state = _WindowState(graph, k, ts_lo, ts_hi)
    state.initial_scan()
    harvester = _Harvester(state, with_skyline)
    for current_ts in range(ts_lo + 1, ts_hi + 1):
        harvester.harvest(current_ts, state.advance_start(current_ts))
    return harvester.result()


def compute_vertex_core_times(
    graph: TemporalGraph, k: int, ts: int | None = None, te: int | None = None
) -> VertexCoreTimeIndex:
    """VCT index only (skyline emission disabled)."""
    return compute_core_times(graph, k, ts, te, with_skyline=False).vct


def core_time_by_rescan(graph: TemporalGraph, k: int, ts: int, te: int) -> dict[int, int]:
    """Reference ``CT_ts`` for a *single* start time by direct scan.

    Used by tests and the CoreTime ablation: peel the widest window, then
    shrink the end time with cascading deletions.  Returns only vertices
    with finite core time.
    """
    graph.check_window(ts, te)
    state = _WindowState(graph, k, ts, te)
    state.initial_scan()
    return {u: c for u, c in enumerate(state.ct.tolist()) if c < state.inf}
