"""The baseline skyline-driven enumerator (Algorithm 3, EnumBase).

EnumBase already exploits the edge core window skyline (Lemma 3: an edge
belongs to the core of ``[ts, te]`` iff one of its minimal core windows is
contained in ``[ts, te]``) but still visits ``O(tmax^2)`` windows and
de-duplicates cores by hashing their full edge sets — the two drawbacks
Section V-A calls out and the final Enum algorithm removes.  It is kept
both as the paper's comparison point and as an independently-implemented
cross-check of Enum.
"""

from __future__ import annotations

from repro.core.coretime import compute_core_times
from repro.core.results import EnumerationResult
from repro.core.windows import EdgeCoreSkyline
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.timing import Deadline


def enumerate_temporal_kcores_base(
    graph: TemporalGraph,
    k: int,
    ts: int | None = None,
    te: int | None = None,
    *,
    skyline: EdgeCoreSkyline | None = None,
    collect: bool = True,
    deadline: Deadline | None = None,
    max_stored_edges: int | None = None,
) -> EnumerationResult:
    """Enumerate all distinct temporal k-cores with EnumBase (Algorithm 3).

    For every start time, edges are scattered into end-time buckets via
    the first skyline window starting at or after ``ts``; scanning end
    times in ascending order accumulates the core of ``[ts, te]``, and a
    hash table over edge sets suppresses duplicates found at multiple
    windows.  The hash table is what makes this baseline memory-hungry
    (Figure 12).

    ``max_stored_edges`` caps the total number of edge ids retained in
    the de-duplication table; exceeding it aborts the run with
    ``completed=False`` — the graceful version of the out-of-memory
    failures the paper reports for this baseline on large workloads.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    ts_lo = 1 if ts is None else ts
    ts_hi = graph.tmax if te is None else te
    graph.check_window(ts_lo, ts_hi)

    if skyline is None:
        skyline = compute_core_times(graph, k, ts_lo, ts_hi).ecs
        assert skyline is not None
    elif skyline.span != (ts_lo, ts_hi) or skyline.k != k:
        raise InvalidParameterError(
            f"skyline computed for k={skyline.k}, span={skyline.span}; "
            f"query wants k={k}, span=({ts_lo}, {ts_hi})"
        )

    result = EnumerationResult("enumbase", k, (ts_lo, ts_hi))
    if collect:
        result.cores = []
    # Edges with at least one minimal core window, with a cursor over
    # their (start-time-ordered) skyline; cursors only advance as the
    # start time grows.
    tracked: list[tuple[int, tuple[tuple[int, int], ...]]] = [
        (eid, skyline.windows_of(eid))
        for eid in range(skyline.num_edges)
        if skyline.windows_of(eid)
    ]
    cursors = [0] * len(tracked)
    seen: set[frozenset[int]] = set()
    stored_edges = 0
    span = ts_hi - ts_lo + 1

    for current_ts in range(ts_lo, ts_hi + 1):
        if deadline is not None and deadline.expired():
            result.completed = False
            break
        if max_stored_edges is not None and stored_edges > max_stored_edges:
            result.completed = False
            break
        buckets: list[list[int]] = [[] for _ in range(span)]
        for index, (eid, windows) in enumerate(tracked):
            cursor = cursors[index]
            # First window with start >= current_ts (Algorithm 3 line 5).
            while cursor < len(windows) and windows[cursor][0] < current_ts:
                cursor += 1
            cursors[index] = cursor
            if cursor < len(windows):
                buckets[windows[cursor][1] - ts_lo].append(eid)
        accumulated: list[int] = []
        min_t = ts_hi + 1
        max_t = ts_lo - 1
        edges = graph.edges
        for offset in range(current_ts - ts_lo, span):
            bucket = buckets[offset]
            if not bucket:
                continue
            accumulated.extend(bucket)
            for eid in bucket:
                t = edges[eid].t
                if t < min_t:
                    min_t = t
                if t > max_t:
                    max_t = t
            identity = frozenset(accumulated)
            if identity in seen:
                continue
            seen.add(identity)
            stored_edges += len(identity)
            if max_stored_edges is not None and stored_edges > max_stored_edges:
                result.completed = False
                return result
            # The TTI of the accumulated core is spanned by its edge times
            # (Definition 3), not by the probe window [current_ts, te].
            result.record(min_t, max_t, accumulated, collect)
    return result
