"""A reusable core index: build VCT + ECS once, answer many query ranges.

The paper computes the skyline per query.  In an index-serving deployment
(the PHC-index spirit of [13]) one wants to precompute over the whole
time span and answer arbitrary sub-ranges.  Minimal core windows are
intrinsic to the graph, so the skyline of a sub-range is a filter of the
whole-span skyline (``EdgeCoreSkyline.restricted_to``); activation times
are re-derived by the enumerator.  This module packages that pattern —
:class:`CoreIndex` for one ``(graph, k)``, :class:`CoreIndexRegistry`
for an LRU-bounded pool of them serving many graphs and ``k`` values.

Persistence lives in :mod:`repro.store`: the binary index store is the
primary path (mmap-able flat arrays, fingerprint staleness checks,
registry warm-up).  The text serialisation kept here (``dumps_vct`` /
``dump_skyline`` and the ``load_*`` parsers) is a human-readable debug
format only.
"""

from __future__ import annotations

import io
import os
import threading
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.coretime import CoreTimeResult, VertexCoreTimeIndex, compute_core_times
from repro.core.results import EnumerationResult
from repro.core.windows import EdgeCoreSkyline
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.obs.metrics import MetricsRegistry, get_registry, next_instance
from repro.obs.timing import Deadline, now
from repro.obs.trace import NULL_TRACE, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.parallel import WorkerPool
    from repro.serve.sinks import ResultSink
    from repro.store.index_store import IndexStore


def _build_seconds_histogram():
    """Per-``k`` Algorithm-2 build-time histogram on the process registry."""
    return get_registry().histogram(
        "repro_index_build_seconds",
        "Core-index (VCT+ECS) build time per Algorithm-2 run",
        ("k",),
    )


class CoreIndex:
    """Prebuilt VCT + ECS for one ``k`` over the graph's full span."""

    def __init__(self, graph: TemporalGraph, k: int):
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = k
        started = now()
        result: CoreTimeResult = compute_core_times(graph, k)
        self.build_seconds = now() - started
        _build_seconds_histogram().labels(str(k)).observe(self.build_seconds)
        assert result.ecs is not None
        self.vct: VertexCoreTimeIndex = result.vct
        self.ecs: EdgeCoreSkyline = result.ecs

    @classmethod
    def from_core_times(
        cls,
        graph: TemporalGraph,
        k: int,
        result: CoreTimeResult,
        *,
        build_seconds: float = 0.0,
    ) -> "CoreIndex":
        """Wrap an already-computed full-span result as an index.

        Used by the shared-scan multi-``k`` builder
        (:func:`repro.core.multik.build_core_indexes`) and the store
        codec, which produce VCT/ECS without going through this class's
        constructor.  The result must carry a skyline.  ``build_seconds``
        records what computing it cost (``0.0`` for store loads — an
        index that was cheap to obtain is cheap to drop), consulted by
        the registry's eviction spill policy.
        """
        if result.ecs is None:
            raise InvalidParameterError(
                "a CoreIndex needs the skyline; compute with with_skyline=True"
            )
        index = cls.__new__(cls)
        index.graph = graph
        index.k = k
        index.build_seconds = build_seconds
        index.vct = result.vct
        index.ecs = result.ecs
        return index

    def query(
        self,
        ts: int,
        te: int,
        *,
        collect: bool = True,
        sink: "ResultSink | None" = None,
        deadline: Deadline | None = None,
    ) -> EnumerationResult:
        """All distinct temporal k-cores of ``[ts, te]`` from the index.

        Equivalent to a fresh per-range run (validated by the test
        suite), but skips the core-time computation entirely: the query
        is planned as a single-request :class:`~repro.serve.planner
        .QueryPlan` pinned to this index, and the executor cuts the
        full-span skyline down to the range by two ``searchsorted``
        calls over a start-sorted permutation cached on the skyline —
        no restricted skyline is materialised and no per-edge scan
        runs.  ``sink`` optionally redirects delivery (NDJSON,
        counters, flat arrays — see :mod:`repro.serve.sinks`).
        """
        return self.query_batch(
            [(ts, te)], collect=collect, sinks=[sink], deadline=deadline
        )[0]

    def query_batch(
        self,
        ranges: "Iterable[tuple[int, int]]",
        *,
        collect: bool = False,
        sinks: "list[ResultSink | None] | None" = None,
        deadline: Deadline | None = None,
        merge_overlaps: bool = True,
        parallel: "WorkerPool | None" = None,
        trace: Trace | None = None,
    ) -> list[EnumerationResult]:
        """Answer many ranges from the shared index in one planned pass.

        The batch serving primitive behind
        :func:`repro.bench.batch.run_query_batch` /
        :func:`~repro.bench.batch.run_mixed_batch`: the ranges are
        planned against this index (identical ranges deduped,
        overlapping windows merged and enumerated once, each answer
        sliced out by TTI containment — ``merge_overlaps=False``
        disables the merging) and the executor locates every covering
        window's slice with a single ``searchsorted`` pair over the
        cached sorted skyline view.  Results come back in input order;
        ``collect`` defaults to ``False`` (count only), matching batch
        traffic.  ``sinks``, when given, carries one optional
        per-range delivery sink.  ``parallel`` hands the planned
        windows to a :class:`~repro.serve.parallel.WorkerPool`, which
        executes them across store-attached worker processes (this
        index is persisted into the pool store, so workers mmap the
        identical blob rather than rebuild).  ``trace``, when given,
        records a span tree for the batch — ``query_batch`` wrapping
        ``plan`` and ``execute`` (see :mod:`repro.obs.trace`).
        """
        from repro.serve.executor import execute_plan
        from repro.serve.planner import plan_for_index

        ranges = list(ranges)
        if not ranges:
            return []
        trace = trace if trace is not None else NULL_TRACE
        with trace.span("query_batch", requests=len(ranges), k=self.k):
            plan = plan_for_index(
                self,
                ranges,
                sinks=sinks,
                merge_overlaps=merge_overlaps,
                trace=trace,
            )
            return execute_plan(
                plan, collect=collect, deadline=deadline, parallel=parallel
            )

    def historical_core(self, ts: int, te: int) -> set[int]:
        """Single-window (historical) k-core members, index-only.

        One vectorised ``searchsorted`` sweep over the flat VCT arrays
        (:meth:`VertexCoreTimeIndex.core_members`) — no per-vertex loop.
        """
        self.graph.check_window(ts, te)
        return set(self.vct.core_members(ts, te).tolist())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dump_skyline(self, path: str | os.PathLike[str]) -> None:
        """Serialise the skyline as text: ``eid: t1,t2 t1,t2 ...``."""
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            self._write_skyline(handle)

    def dumps_skyline(self) -> str:
        buffer = io.StringIO()
        self._write_skyline(buffer)
        return buffer.getvalue()

    def _write_skyline(self, handle: io.TextIOBase) -> None:
        lo, hi = self.ecs.span
        handle.write(f"# ecs k={self.k} span={lo},{hi} edges={self.ecs.num_edges}\n")
        for eid in range(self.ecs.num_edges):
            windows = self.ecs.windows_of(eid)
            if not windows:
                continue
            rendered = " ".join(f"{t1},{t2}" for t1, t2 in windows)
            handle.write(f"{eid}: {rendered}\n")

    def dumps_vct(self) -> str:
        """Serialise the VCT index: ``vertex: start,ct start,ct ...``.

        Infinite core times are rendered as ``inf``.
        """
        lo, hi = self.vct.span
        buffer = io.StringIO()
        buffer.write(
            f"# vct k={self.k} span={lo},{hi} vertices={self.vct.num_vertices}\n"
        )
        for u in range(self.vct.num_vertices):
            entries = self.vct.entries_of(u)
            if not entries:
                continue
            rendered = " ".join(
                f"{start},{'inf' if ct is None else ct}" for start, ct in entries
            )
            buffer.write(f"{u}: {rendered}\n")
        return buffer.getvalue()


@dataclass(frozen=True)
class SpillPolicy:
    """When eviction should persist an index to the attached store.

    ``mode``:

    * ``"always"`` — every evicted, not-yet-persisted index is spilled
      (the pre-policy behaviour, and the default);
    * ``"never"`` — evictions simply drop;
    * ``"cost"`` — spill only when the index cost at least
      ``min_build_seconds`` of compute to produce: cheap builds are
      cheaper to redo than to write and keep on disk, while an index
      that took seconds of Algorithm 2 is worth a blob.  Store-loaded
      indexes record a build cost of ``0.0`` — they are already
      persisted and never re-spill regardless.

    :meth:`parse` accepts a ready policy, the mode strings, or a bare
    number (shorthand for ``cost`` with that threshold).
    """

    mode: str = "always"
    min_build_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("always", "never", "cost"):
            raise InvalidParameterError(
                f"unknown spill mode {self.mode!r}; "
                "choose 'always', 'never' or 'cost'"
            )
        if self.min_build_seconds < 0:
            raise InvalidParameterError(
                f"min_build_seconds must be >= 0, got {self.min_build_seconds}"
            )

    @classmethod
    def parse(cls, value: "SpillPolicy | str | float | int") -> "SpillPolicy":
        if isinstance(value, SpillPolicy):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(mode="cost", min_build_seconds=float(value))
        raise InvalidParameterError(
            f"cannot parse spill policy from {value!r}; pass a SpillPolicy, "
            "'always'/'never'/'cost', or a cost threshold in seconds"
        )

    def should_spill(self, index: "CoreIndex") -> bool:
        if self.mode == "always":
            return True
        if self.mode == "never":
            return False
        return getattr(index, "build_seconds", 0.0) >= self.min_build_seconds

    def __str__(self) -> str:
        if self.mode == "cost":
            return f"cost>={self.min_build_seconds:g}s"
        return self.mode


class CoreIndexRegistry:
    """An LRU cache of :class:`CoreIndex` instances keyed on ``(graph, k)``.

    The serving path of :class:`~repro.core.query.TimeRangeCoreQuery`
    (``engine="index"``) and the batch runner go through a registry so
    that repeated queries against the same graph and ``k`` build the
    index once and answer sub-ranges from it.  Graphs are keyed by
    identity (they are immutable but not hashable by value); each cache
    entry pins its graph, so an ``id()`` can never be observed for two
    different live graphs.

    When an :class:`~repro.store.index_store.IndexStore` is attached
    (constructor ``store=`` or per-call ``get(..., store=)``), a cache
    miss falls through to disk before computing: the store is probed by
    content fingerprint, and a hit opens the persisted flat arrays
    instead of running Algorithm 2.  :meth:`warm` preloads every stored
    entry (and, with ``ks=``, fills the gaps), the daemon-boot pattern.

    Mixed-``k`` traffic goes through :meth:`get_many`, which resolves a
    whole set of ``k`` values at once and computes everything still
    missing in **one** shared decremental scan rather than one
    Algorithm-2 run per ``k``.  :meth:`stats` exposes per-``k``
    ``store_hits_by_k`` / ``multik_builds_by_k`` counters so a warm
    deployment can assert it never recomputes.

    Invalidation: graphs are immutable, so cached indexes never go
    stale in-process — entries only leave by LRU eviction or
    :meth:`clear`.  Store entries are fingerprint-checked on load, so a
    store rebuilt against different data simply stops matching.

    Eviction spills: with a store attached, an LRU-evicted index whose
    ``(graph, k)`` is not yet persisted is saved to disk before being
    dropped (best effort — unpersistable graphs and I/O failures are
    swallowed), so capacity pressure downgrades an index from RAM to
    disk instead of discarding the build.  The constructor's
    ``spill_policy`` (:class:`SpillPolicy`: ``"always"`` default,
    ``"never"``, or a build-cost threshold in seconds) decides which
    evictions are worth persisting; ``evict_spills`` / ``evict_drops``
    in :meth:`stats` count the outcomes.

    Thread-safe: all cache operations hold an internal lock, so a
    warm-up thread plus serving threads is a supported pattern.  The
    lock is coarse — it is held across an index build — which keeps
    concurrent lookups of the same key from duplicating an expensive
    build at the cost of serialising distinct builds.
    """

    def __init__(
        self,
        capacity: int = 8,
        *,
        store: "IndexStore | None" = None,
        spill_policy: "SpillPolicy | str | float" = "always",
        metrics: "MetricsRegistry | None" = None,
    ):
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.store = store
        self.spill_policy = SpillPolicy.parse(spill_policy)
        # All bookkeeping lives in the metrics registry (the process
        # default unless ``metrics=`` isolates it); this instance's
        # series carry a unique ``registry`` label, and the legacy
        # ``hits``/``misses``/... attributes read back through it.
        self.metrics = metrics if metrics is not None else get_registry()
        self.instance = next_instance("registry")
        m, inst = self.metrics, self.instance
        self._c_hits = m.counter(
            "repro_registry_hits_total",
            "Index-registry cache hits",
            ("registry",),
        ).labels(inst)
        self._c_misses = m.counter(
            "repro_registry_misses_total",
            "Index-registry cache misses (store probe or build follows)",
            ("registry",),
        ).labels(inst)
        self._c_store_hits = m.counter(
            "repro_registry_store_hits_total",
            "Cache misses served from the attached index store",
            ("registry",),
        ).labels(inst)
        self._c_multik_builds = m.counter(
            "repro_registry_multik_builds_total",
            "Shared multi-k build invocations",
            ("registry",),
        ).labels(inst)
        self._store_hits_by_k_counter = m.counter(
            "repro_registry_store_hits_by_k_total",
            "Store-served misses broken down by k",
            ("registry", "k"),
        )
        self._multik_built_counter = m.counter(
            "repro_registry_multik_built_total",
            "Indexes produced by shared multi-k builds, by k",
            ("registry", "k"),
        )
        evictions = m.counter(
            "repro_registry_evictions_total",
            "LRU evictions by outcome (spill=persisted, drop=discarded)",
            ("registry", "action"),
        )
        self._c_evict_spills = evictions.labels(inst, "spill")
        self._c_evict_drops = evictions.labels(inst, "drop")
        self._g_size = m.gauge(
            "repro_registry_size",
            "Resident cached indexes",
            ("registry",),
        ).labels(inst)
        self._g_capacity = m.gauge(
            "repro_registry_capacity",
            "LRU capacity",
            ("registry",),
        ).labels(inst)
        self._g_capacity.set(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[int, int], CoreIndex] = OrderedDict()
        # Keys known to be persisted in the *attached* store (loaded from
        # it or spilled to it) — lets eviction skip the O(n + m)
        # fingerprint probe in the steady state.
        self._persisted: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- legacy counter attributes, now views over the metrics registry --

    @property
    def hits(self) -> int:
        return int(self._c_hits.value)

    @property
    def misses(self) -> int:
        return int(self._c_misses.value)

    @property
    def store_hits(self) -> int:
        return int(self._c_store_hits.value)

    @property
    def multik_builds(self) -> int:
        return int(self._c_multik_builds.value)

    @property
    def evict_spills(self) -> int:
        return int(self._c_evict_spills.value)

    @property
    def evict_drops(self) -> int:
        return int(self._c_evict_drops.value)

    def _by_k_view(self, counter) -> dict[int, int]:
        """This instance's children of a ``(registry, k)`` counter."""
        return {
            int(key[1]): int(child.value)
            for key, child in counter.items()
            if key[0] == self.instance
        }

    def _insert(self, key: tuple[int, int], index: CoreIndex) -> None:
        """Insert under the lock, evicting beyond capacity (LRU order).

        Evicted entries are offered to the attached store first (see
        :meth:`_spill`) so capacity pressure never discards an index the
        store does not already hold.
        """
        self._entries[key] = index
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            _evicted_key, evicted = self._entries.popitem(last=False)
            self._spill(evicted)
        self._g_size.set(len(self._entries))

    def _spill(self, index: CoreIndex) -> None:
        """Persist an evicted index to the attached store, best effort.

        Skips silently when no store is attached or the store already
        holds a fingerprint-matching entry for the ``(graph, k)`` —
        keys known persisted (loaded from or previously spilled to the
        attached store) skip even the manifest probe.  The configured
        :class:`SpillPolicy` then decides whether the build is worth
        persisting (vetoes are counted in ``evict_drops``); store
        failures (unpersistable labels, I/O errors) are swallowed —
        eviction must never raise.  Successful writes are counted in
        ``evict_spills``.
        """
        store = self.store
        if store is None:
            return
        key = (id(index.graph), index.k)
        if key in self._persisted:
            return
        if not self.spill_policy.should_spill(index):
            self._c_evict_drops.inc()
            return
        from repro.errors import StoreError

        try:
            if not store.has_index(index.graph, index.k):
                store.save_index(index)
                self._c_evict_spills.inc()
            self._persisted.add(key)
        except (StoreError, OSError):
            pass

    def peek(self, graph: TemporalGraph, k: int) -> "CoreIndex | None":
        """The cached index for ``(graph, k)``, or ``None`` — no side effects.

        Unlike :meth:`get`, a peek never loads, builds, bumps the LRU
        order or touches the hit/miss counters — it answers the
        planner's "is this already resident?" question
        (:func:`repro.serve.planner.plan_queries` engine ``auto``)
        without distorting cache behaviour.
        """
        key = (id(graph), k)
        with self._lock:
            index = self._entries.get(key)
            if index is not None and index.graph is graph:
                return index
        return None

    def get(
        self,
        graph: TemporalGraph,
        k: int,
        *,
        store: "IndexStore | None" = None,
    ) -> CoreIndex:
        """The cached index for ``(graph, k)``, loading or building on a miss.

        Miss resolution order: the attached/passed store (fingerprint
        match, counted in ``store_hits``), then a fresh Algorithm-2
        build.  Least-recently-used entries are evicted beyond
        ``capacity``.
        """
        if store is None:
            store = self.store
        key = (id(graph), k)
        with self._lock:
            index = self._entries.get(key)
            if index is not None and index.graph is graph:
                self._entries.move_to_end(key)
                self._c_hits.inc()
                return index
            self._c_misses.inc()
            if store is not None:
                index = store.load_index(graph, k)
                if index is not None:
                    self._c_store_hits.inc()
                    self._store_hits_by_k_counter.labels(
                        self.instance, str(k)
                    ).inc()
                    if store is self.store:
                        self._persisted.add(key)
                    self._insert(key, index)
                    return index
            index = CoreIndex(graph, k)
            self._insert(key, index)
            return index

    def get_many(
        self,
        graph: TemporalGraph,
        ks: "Iterable[int]",
        *,
        store: "IndexStore | None" = None,
    ) -> dict[int, CoreIndex]:
        """Indexes for every ``k`` in ``ks``, shared-building the misses.

        Per ``k``, resolution order matches :meth:`get` — cache, then
        store (fingerprint match), then compute — but every ``k`` that
        reaches the compute stage is built in **one** shared decremental
        scan (:func:`repro.core.multik.build_core_indexes`) instead of
        one Algorithm-2 run each.  Counters: each ``k`` contributes one
        hit or miss; store hits and shared-build products are also
        tallied per ``k`` (see :meth:`stats`).

        Entries are inserted in the order the ``k`` values were
        requested (deduplicated), so under ``capacity`` pressure the
        LRU deterministically keeps the *last* ``capacity`` of them —
        a single shared build never thrashes into repeated rebuilding.

        Thread-safe; holds the registry lock across the whole
        resolution, like :meth:`get`.
        """
        ordered: list[int] = []
        seen: set[int] = set()
        for k in ks:
            if k < 1:
                raise InvalidParameterError(f"k must be >= 1, got {k}")
            if k not in seen:
                seen.add(k)
                ordered.append(k)
        if not ordered:
            raise InvalidParameterError("ks must contain at least one k value")
        if store is None:
            store = self.store
        out: dict[int, CoreIndex] = {}
        with self._lock:
            missing: list[int] = []
            for k in ordered:
                key = (id(graph), k)
                index = self._entries.get(key)
                if index is not None and index.graph is graph:
                    self._entries.move_to_end(key)
                    self._c_hits.inc()
                    out[k] = index
                else:
                    self._c_misses.inc()
                    missing.append(k)
            to_build: list[int] = []
            for k in missing:
                index = store.load_index(graph, k) if store is not None else None
                if index is not None:
                    self._c_store_hits.inc()
                    self._store_hits_by_k_counter.labels(
                        self.instance, str(k)
                    ).inc()
                    if store is self.store:
                        self._persisted.add((id(graph), k))
                    self._insert((id(graph), k), index)
                    out[k] = index
                else:
                    to_build.append(k)
            if to_build:
                from repro.core.multik import build_core_indexes

                built = build_core_indexes(graph, to_build)
                self._c_multik_builds.inc()
                for k in to_build:
                    self._multik_built_counter.labels(
                        self.instance, str(k)
                    ).inc()
                    self._insert((id(graph), k), built[k])
                    out[k] = built[k]
        return out

    def warm(
        self,
        store: "IndexStore | None" = None,
        *,
        ks: "Iterable[int] | None" = None,
    ) -> int:
        """Preload every loadable stored index; returns how many.

        Uses the attached store when none is passed.  With ``ks``, every
        stored graph is additionally guaranteed an index for each listed
        ``k``: the ones missing from (or unreadable in) the store being
        warmed are resolved through :meth:`get_many` against that same
        store — one shared scan per graph for everything it cannot serve
        — and the return value counts only freshly resolved entries
        (stored loads plus gap-fills; registry cache hits are not
        re-counted).  Unreadable graphs or indexes are skipped silently
        — warm-up must never fail because one entry rotted on disk.

        Loaded graphs are pinned by their cache entries; entries beyond
        ``capacity`` evict in insertion order, so warm a registry sized
        for the store.
        """
        if store is None:
            store = self.store
        if store is None:
            raise InvalidParameterError("no store attached and none passed to warm()")
        ks = list(ks) if ks is not None else None
        loaded = 0
        for _key, graph, indexes in store.iter_graphs():
            for k in sorted(indexes):
                with self._lock:
                    self._insert((id(graph), k), indexes[k])
                loaded += 1
            if ks:
                extra = [k for k in ks if k not in indexes]
                if extra:
                    misses_before = self.misses
                    self.get_many(graph, extra, store=store)
                    # Only freshly resolved ks count as warmed; a k the
                    # registry already held is not new work.
                    loaded += self.misses - misses_before
        return loaded

    def clear(self) -> None:
        """Drop every cached index (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._g_size.set(0)

    def persist_all(self, store: "IndexStore | None" = None) -> int:
        """Persist every resident index the store lacks; returns how many.

        The graceful-shutdown counterpart of :meth:`warm`: a draining
        daemon calls this to land whatever it built (or gap-filled)
        during its lifetime before the process exits, so the next boot
        warms instead of recomputing.  Uses the attached store when none
        is passed.  Entries the store already holds (by fingerprint) are
        skipped; unpersistable entries (label types the store rejects,
        I/O errors) are skipped silently — shutdown must never fail
        because one entry cannot be written.
        """
        if store is None:
            store = self.store
        if store is None:
            raise InvalidParameterError(
                "no store attached and none passed to persist_all()"
            )
        with self._lock:
            resident = list(self._entries.values())
        from repro.errors import StoreError

        persisted = 0
        for index in resident:
            try:
                if not store.has_index(index.graph, index.k):
                    store.save_index(index)
                    persisted += 1
                self._persisted.add((id(index.graph), index.k))
            except (StoreError, OSError):
                pass
        return persisted

    def stats(self) -> dict:
        """Hit/miss/size counters for observability.

        Since PR 7 this dict is a *view* over the process metrics
        registry (series labelled with this instance's ``registry``
        label) — same shape as before, one source of truth.  Beyond the
        aggregate counters, ``store_hits_by_k`` and
        ``multik_builds_by_k`` break down, per ``k``, how many misses
        were served from disk versus computed by the shared multi-``k``
        build — a warm-serving deployment asserts the latter stays at
        zero.  ``multik_builds`` counts shared-build invocations;
        ``evict_spills`` counts LRU evictions persisted to the attached
        store before dropping, ``evict_drops`` the evictions the
        configured ``spill_policy`` declined to persist.
        """
        with self._lock:
            size = len(self._entries)
        return {
            "hits": self.hits,
            "misses": self.misses,
            "store_hits": self.store_hits,
            "multik_builds": self.multik_builds,
            "evict_spills": self.evict_spills,
            "evict_drops": self.evict_drops,
            "spill_policy": str(self.spill_policy),
            "store_hits_by_k": self._by_k_view(self._store_hits_by_k_counter),
            "multik_builds_by_k": self._by_k_view(self._multik_built_counter),
            "size": size,
            "capacity": self.capacity,
        }


#: Process-wide default registry used by ``engine="index"`` and the
#: sequential batch runner.
DEFAULT_REGISTRY = CoreIndexRegistry()


def get_core_index(
    graph: TemporalGraph,
    k: int,
    *,
    registry: CoreIndexRegistry | None = None,
    store: "IndexStore | None" = None,
) -> CoreIndex:
    """Fetch (or build) the shared index for ``(graph, k)``.

    Uses :data:`DEFAULT_REGISTRY` unless an explicit registry is given;
    a ``store`` makes cache misses fall through to disk before building.
    """
    target = registry if registry is not None else DEFAULT_REGISTRY
    return target.get(graph, k, store=store)


def _parse_text_header(
    lines: list[str], tag: str, count_field: str, what: str
) -> tuple[int, int, int, int]:
    """Parse ``# <tag> k=... span=lo,hi <count_field>=N`` → (k, lo, hi, N)."""
    prefix = f"# {tag} "
    if not lines or not lines[0].startswith(prefix):
        raise InvalidParameterError(f"not a serialised {what}")
    header = dict(
        field.split("=", 1) for field in lines[0][len(prefix):].split() if "=" in field
    )
    try:
        k = int(header["k"])
        lo, hi = (int(x) for x in header["span"].split(","))
        count = int(header[count_field])
    except (KeyError, ValueError) as exc:
        raise InvalidParameterError(f"{tag} header is malformed: {lines[0]!r}") from exc
    if k < 1 or count < 0 or lo > hi:
        raise InvalidParameterError(
            f"{tag} header values out of range: k={k} span=({lo},{hi}) "
            f"{count_field}={count}"
        )
    return k, lo, hi, count


def _payload_lines(lines: list[str]):
    """Yield ``(line_number, id_part, rest)`` for every payload line."""
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        id_part, sep, rest = line.partition(":")
        if not sep:
            raise InvalidParameterError(f"line {lineno}: missing ':' separator")
        yield lineno, id_part, rest


def load_vct(text: str) -> VertexCoreTimeIndex:
    """Parse a VCT index produced by :meth:`CoreIndex.dumps_vct`.

    The payload is validated against the header: vertex ids must lie
    within the declared vertex count, appear at most once, and every
    ``start,ct`` entry must fall inside the declared span.  Violations
    raise :class:`InvalidParameterError` naming the offending line.
    """
    lines = text.splitlines()
    k, lo, hi, num_vertices = _parse_text_header(
        lines, "vct", "vertices", "vertex core time index"
    )
    entries: list[list[tuple[int, int | None]]] = [[] for _ in range(num_vertices)]
    for lineno, vertex_part, rest in _payload_lines(lines):
        try:
            u = int(vertex_part)
        except ValueError:
            raise InvalidParameterError(
                f"line {lineno}: vertex id {vertex_part.strip()!r} is not an integer"
            ) from None
        if not 0 <= u < num_vertices:
            raise InvalidParameterError(
                f"line {lineno}: vertex {u} outside the {num_vertices} vertices "
                f"declared by the header"
            )
        if entries[u]:
            raise InvalidParameterError(f"line {lineno}: vertex {u} listed twice")
        for token in rest.split():
            try:
                start_str, ct_str = token.split(",")
                start = int(start_str)
                ct = None if ct_str == "inf" else int(ct_str)
            except ValueError:
                raise InvalidParameterError(
                    f"line {lineno}: malformed entry {token!r}"
                ) from None
            if not lo <= start <= hi:
                raise InvalidParameterError(
                    f"line {lineno}: start {start} outside span [{lo}, {hi}]"
                )
            if ct is not None and not start <= ct <= hi:
                raise InvalidParameterError(
                    f"line {lineno}: core time {ct} outside [{start}, {hi}]"
                )
            entries[u].append((start, ct))
    return VertexCoreTimeIndex(entries, k, (lo, hi))


def load_skyline(text: str) -> EdgeCoreSkyline:
    """Parse a skyline produced by :meth:`CoreIndex.dumps_skyline`.

    The payload is validated against the header: edge ids must lie
    within the declared edge count, appear at most once, and every
    window must fall inside the declared span with ``t1 <= t2``.
    Violations raise :class:`InvalidParameterError` naming the
    offending line.
    """
    lines = text.splitlines()
    k, lo, hi, num_edges = _parse_text_header(
        lines, "ecs", "edges", "edge core skyline"
    )
    windows: list[tuple[tuple[int, int], ...]] = [() for _ in range(num_edges)]
    for lineno, eid_part, rest in _payload_lines(lines):
        try:
            eid = int(eid_part)
        except ValueError:
            raise InvalidParameterError(
                f"line {lineno}: edge id {eid_part.strip()!r} is not an integer"
            ) from None
        if not 0 <= eid < num_edges:
            raise InvalidParameterError(
                f"line {lineno}: edge {eid} outside the {num_edges} edges "
                f"declared by the header"
            )
        if windows[eid]:
            raise InvalidParameterError(f"line {lineno}: edge {eid} listed twice")
        parsed = []
        for token in rest.split():
            try:
                t1, t2 = (int(x) for x in token.split(","))
            except ValueError:
                raise InvalidParameterError(
                    f"line {lineno}: malformed window {token!r}"
                ) from None
            if not (lo <= t1 <= t2 <= hi):
                raise InvalidParameterError(
                    f"line {lineno}: window ({t1}, {t2}) outside span [{lo}, {hi}]"
                )
            parsed.append((t1, t2))
        windows[eid] = tuple(parsed)
    return EdgeCoreSkyline(windows, k, (lo, hi))
