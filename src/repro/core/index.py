"""A reusable core index: build VCT + ECS once, answer many query ranges.

The paper computes the skyline per query.  In an index-serving deployment
(the PHC-index spirit of [13]) one wants to precompute over the whole
time span and answer arbitrary sub-ranges.  Minimal core windows are
intrinsic to the graph, so the skyline of a sub-range is a filter of the
whole-span skyline (``EdgeCoreSkyline.restricted_to``); activation times
are re-derived by the enumerator.  This module packages that pattern —
:class:`CoreIndex` for one ``(graph, k)``, :class:`CoreIndexRegistry`
for an LRU-bounded pool of them serving many graphs and ``k`` values —
plus a simple text serialisation for persistence.
"""

from __future__ import annotations

import io
import os
from collections import OrderedDict

from repro.core.coretime import CoreTimeResult, VertexCoreTimeIndex, compute_core_times
from repro.core.enumerate import enumerate_temporal_kcores
from repro.core.results import EnumerationResult
from repro.core.windows import EdgeCoreSkyline
from repro.errors import InvalidParameterError
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.timer import Deadline


class CoreIndex:
    """Prebuilt VCT + ECS for one ``k`` over the graph's full span."""

    def __init__(self, graph: TemporalGraph, k: int):
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = k
        result: CoreTimeResult = compute_core_times(graph, k)
        assert result.ecs is not None
        self.vct: VertexCoreTimeIndex = result.vct
        self.ecs: EdgeCoreSkyline = result.ecs

    def query(
        self,
        ts: int,
        te: int,
        *,
        collect: bool = True,
        deadline: Deadline | None = None,
    ) -> EnumerationResult:
        """All distinct temporal k-cores of ``[ts, te]`` from the index.

        Equivalent to a fresh per-range run (validated by the test
        suite), but skips the core-time computation entirely.
        """
        self.graph.check_window(ts, te)
        restricted = self.ecs.restricted_to(ts, te)
        return enumerate_temporal_kcores(
            self.graph,
            self.k,
            ts,
            te,
            skyline=restricted,
            collect=collect,
            deadline=deadline,
        )

    def historical_core(self, ts: int, te: int) -> set[int]:
        """Single-window (historical) k-core members, index-only."""
        self.graph.check_window(ts, te)
        return {
            u for u in range(self.graph.num_vertices) if self.vct.in_core(u, ts, te)
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dump_skyline(self, path: str | os.PathLike[str]) -> None:
        """Serialise the skyline as text: ``eid: t1,t2 t1,t2 ...``."""
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            self._write_skyline(handle)

    def dumps_skyline(self) -> str:
        buffer = io.StringIO()
        self._write_skyline(buffer)
        return buffer.getvalue()

    def _write_skyline(self, handle: io.TextIOBase) -> None:
        lo, hi = self.ecs.span
        handle.write(f"# ecs k={self.k} span={lo},{hi} edges={self.ecs.num_edges}\n")
        for eid in range(self.ecs.num_edges):
            windows = self.ecs.windows_of(eid)
            if not windows:
                continue
            rendered = " ".join(f"{t1},{t2}" for t1, t2 in windows)
            handle.write(f"{eid}: {rendered}\n")

    def dumps_vct(self) -> str:
        """Serialise the VCT index: ``vertex: start,ct start,ct ...``.

        Infinite core times are rendered as ``inf``.
        """
        lo, hi = self.vct.span
        buffer = io.StringIO()
        buffer.write(
            f"# vct k={self.k} span={lo},{hi} vertices={self.vct.num_vertices}\n"
        )
        for u in range(self.vct.num_vertices):
            entries = self.vct.entries_of(u)
            if not entries:
                continue
            rendered = " ".join(
                f"{start},{'inf' if ct is None else ct}" for start, ct in entries
            )
            buffer.write(f"{u}: {rendered}\n")
        return buffer.getvalue()


class CoreIndexRegistry:
    """An LRU cache of :class:`CoreIndex` instances keyed on ``(graph, k)``.

    The serving path of :class:`~repro.core.query.TimeRangeCoreQuery`
    (``engine="index"``) and the batch runner go through a registry so
    that repeated queries against the same graph and ``k`` build the
    index once and answer sub-ranges from it.  Graphs are keyed by
    identity (they are immutable but not hashable by value); each cache
    entry pins its graph, so an ``id()`` can never be observed for two
    different live graphs.

    Not thread-safe; use one registry per serving thread or guard
    externally.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple[int, int], CoreIndex] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, graph: TemporalGraph, k: int) -> CoreIndex:
        """The cached index for ``(graph, k)``, building it on a miss.

        Least-recently-used entries are evicted beyond ``capacity``.
        """
        key = (id(graph), k)
        index = self._entries.get(key)
        if index is not None and index.graph is graph:
            self._entries.move_to_end(key)
            self.hits += 1
            return index
        self.misses += 1
        index = CoreIndex(graph, k)
        self._entries[key] = index
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return index

    def clear(self) -> None:
        """Drop every cached index (counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters for observability."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
        }


#: Process-wide default registry used by ``engine="index"`` and the
#: sequential batch runner.
DEFAULT_REGISTRY = CoreIndexRegistry()


def get_core_index(
    graph: TemporalGraph, k: int, *, registry: CoreIndexRegistry | None = None
) -> CoreIndex:
    """Fetch (or build) the shared index for ``(graph, k)``.

    Uses :data:`DEFAULT_REGISTRY` unless an explicit registry is given.
    """
    return (registry if registry is not None else DEFAULT_REGISTRY).get(graph, k)


def load_vct(text: str) -> VertexCoreTimeIndex:
    """Parse a VCT index produced by :meth:`CoreIndex.dumps_vct`."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("# vct "):
        raise InvalidParameterError("not a serialised vertex core time index")
    header = dict(
        field.split("=", 1) for field in lines[0][len("# vct ") :].split() if "=" in field
    )
    k = int(header["k"])
    lo, hi = (int(x) for x in header["span"].split(","))
    num_vertices = int(header["vertices"])
    entries: list[list[tuple[int, int | None]]] = [[] for _ in range(num_vertices)]
    for line in lines[1:]:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        vertex_part, _, rest = line.partition(":")
        u = int(vertex_part)
        for token in rest.split():
            start_str, ct_str = token.split(",")
            ct = None if ct_str == "inf" else int(ct_str)
            entries[u].append((int(start_str), ct))
    return VertexCoreTimeIndex(entries, k, (lo, hi))


def load_skyline(text: str) -> EdgeCoreSkyline:
    """Parse a skyline produced by :meth:`CoreIndex.dumps_skyline`."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("# ecs "):
        raise InvalidParameterError("not a serialised edge core skyline")
    header = dict(
        field.split("=", 1) for field in lines[0][len("# ecs ") :].split() if "=" in field
    )
    k = int(header["k"])
    lo, hi = (int(x) for x in header["span"].split(","))
    num_edges = int(header["edges"])
    windows: list[tuple[tuple[int, int], ...]] = [() for _ in range(num_edges)]
    for line in lines[1:]:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        eid_part, _, rest = line.partition(":")
        eid = int(eid_part)
        parsed = []
        for token in rest.split():
            t1, t2 = (int(x) for x in token.split(","))
            parsed.append((t1, t2))
        windows[eid] = tuple(parsed)
    return EdgeCoreSkyline(windows, k, (lo, hi))
